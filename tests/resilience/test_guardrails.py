"""Query guardrails: timeout, buffered-row budget, cooperative cancel.

Each violation must surface as its own typed error (all subclasses of
ExecutionError under ReproError), so callers can tell a cancelled query
from a timed-out or over-budget one.
"""

import pytest

from repro.errors import (
    ExecutionError,
    QueryCancelled,
    QueryTimeout,
    ReproError,
    ResourceLimitExceeded,
)
from repro.resilience import CancelToken, QueryLimits, RetryPolicy

JOIN_SQL = (
    "SELECT o.order_id, d.year FROM orders_fk o, date_dim d "
    "WHERE o.date_id = d.date_id AND d.year = 2012"
)


# -- unit level -------------------------------------------------------------


def test_limits_inactive_by_default():
    limits = QueryLimits()
    assert not limits.active
    limits.start()
    limits.check()
    for _ in range(10):
        limits.tick()
    limits.charge_rows(10**9)  # no budget, no error


def test_timeout_raises_query_timeout():
    limits = QueryLimits(timeout_seconds=0.0)
    limits.start()
    with pytest.raises(QueryTimeout):
        limits.check()


def test_max_rows_raises_resource_limit():
    limits = QueryLimits(max_rows=10)
    limits.charge_rows(10)
    with pytest.raises(ResourceLimitExceeded):
        limits.charge_rows(1)
    assert limits.buffered_rows == 11


def test_cancel_token_raises_query_cancelled():
    token = CancelToken()
    limits = QueryLimits(cancel=token)
    limits.tick()
    token.cancel()
    with pytest.raises(QueryCancelled):
        limits.tick()


def test_cancel_after_checks_auto_fires():
    limits = QueryLimits(cancel=CancelToken(cancel_after_checks=3))
    limits.tick()
    limits.tick()
    with pytest.raises(QueryCancelled):
        limits.tick()


def test_invalid_limits_rejected():
    with pytest.raises(ValueError):
        QueryLimits(timeout_seconds=-1)
    with pytest.raises(ValueError):
        QueryLimits(max_rows=-1)


def test_guardrail_errors_are_typed():
    for cls in (QueryCancelled, QueryTimeout, ResourceLimitExceeded):
        assert issubclass(cls, ExecutionError)
        assert issubclass(cls, ReproError)
        assert cls("x").stage == "execution"


def test_retry_policy_backoff_is_exponential_and_capped():
    policy = RetryPolicy(
        max_retries=5, base_delay_seconds=0.01, max_delay_seconds=0.05
    )
    assert policy.delay_for(1) == pytest.approx(0.01)
    assert policy.delay_for(2) == pytest.approx(0.02)
    assert policy.delay_for(3) == pytest.approx(0.04)
    assert policy.delay_for(4) == pytest.approx(0.05)  # capped
    assert RetryPolicy(base_delay_seconds=0).delay_for(3) == 0.0
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)


# -- engine level ------------------------------------------------------------


def test_sql_timeout(orders_db):
    with pytest.raises(QueryTimeout):
        orders_db.sql(JOIN_SQL, timeout=0.0)


def test_sql_max_rows(orders_db):
    with pytest.raises(ResourceLimitExceeded):
        orders_db.sql(JOIN_SQL, max_rows=5)


def test_sql_cancel(orders_db):
    with pytest.raises(QueryCancelled):
        orders_db.sql(
            JOIN_SQL, cancel=CancelToken(cancel_after_checks=10)
        )


def test_generous_limits_do_not_interfere(orders_db):
    unrestricted = orders_db.sql(JOIN_SQL).rows
    guarded = orders_db.sql(
        JOIN_SQL, timeout=60.0, max_rows=10**7, cancel=CancelToken()
    ).rows
    assert sorted(guarded) == sorted(unrestricted)


def test_max_rows_counts_motion_buffers(orders_db):
    # Even a plain scan buffers its rows at the GatherMotion, so the
    # budget bounds what the coordinator materializes: 2400 rows pass a
    # 2400-row budget and fail a 2399-row one.
    result = orders_db.sql("SELECT order_id FROM orders", max_rows=2400)
    assert len(result.rows) == 2400
    with pytest.raises(ResourceLimitExceeded):
        orders_db.sql("SELECT order_id FROM orders", max_rows=2399)
