"""Query guardrails: timeout, buffered-row budget, cooperative cancel.

Each violation must surface as its own typed error (all subclasses of
ExecutionError under ReproError), so callers can tell a cancelled query
from a timed-out or over-budget one.
"""

import pytest

from repro.errors import (
    ExecutionError,
    QueryCancelled,
    QueryTimeout,
    ReproError,
    ResourceLimitExceeded,
)
from repro.resilience import CancelToken, QueryLimits, RetryPolicy

JOIN_SQL = (
    "SELECT o.order_id, d.year FROM orders_fk o, date_dim d "
    "WHERE o.date_id = d.date_id AND d.year = 2012"
)


# -- unit level -------------------------------------------------------------


def test_limits_inactive_by_default():
    limits = QueryLimits()
    assert not limits.active
    limits.start()
    limits.check()
    for _ in range(10):
        limits.tick()
    limits.charge_rows(10**9)  # no budget, no error


def test_timeout_raises_query_timeout():
    limits = QueryLimits(timeout_seconds=0.0)
    limits.start()
    with pytest.raises(QueryTimeout):
        limits.check()


def test_max_rows_raises_resource_limit():
    limits = QueryLimits(max_rows=10)
    limits.charge_rows(10)
    with pytest.raises(ResourceLimitExceeded):
        limits.charge_rows(1)
    assert limits.buffered_rows == 11


def test_cancel_token_raises_query_cancelled():
    token = CancelToken()
    limits = QueryLimits(cancel=token)
    limits.tick()
    token.cancel()
    with pytest.raises(QueryCancelled):
        limits.tick()


def test_cancel_after_checks_auto_fires():
    limits = QueryLimits(cancel=CancelToken(cancel_after_checks=3))
    limits.tick()
    limits.tick()
    with pytest.raises(QueryCancelled):
        limits.tick()


def test_invalid_limits_rejected():
    with pytest.raises(ValueError):
        QueryLimits(timeout_seconds=-1)
    with pytest.raises(ValueError):
        QueryLimits(max_rows=-1)


def test_guardrail_errors_are_typed():
    for cls in (QueryCancelled, QueryTimeout, ResourceLimitExceeded):
        assert issubclass(cls, ExecutionError)
        assert issubclass(cls, ReproError)
        assert cls("x").stage == "execution"


def test_retry_policy_backoff_is_exponential_and_capped():
    policy = RetryPolicy(
        max_retries=5, base_delay_seconds=0.01, max_delay_seconds=0.05
    )
    assert policy.delay_for(1) == pytest.approx(0.01)
    assert policy.delay_for(2) == pytest.approx(0.02)
    assert policy.delay_for(3) == pytest.approx(0.04)
    assert policy.delay_for(4) == pytest.approx(0.05)  # capped
    assert RetryPolicy(base_delay_seconds=0).delay_for(3) == 0.0
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)


# -- engine level ------------------------------------------------------------


def test_sql_timeout(orders_db):
    with pytest.raises(QueryTimeout):
        orders_db.sql(JOIN_SQL, timeout=0.0)


def test_sql_max_rows(orders_db):
    with pytest.raises(ResourceLimitExceeded):
        orders_db.sql(JOIN_SQL, max_rows=5)


def test_sql_cancel(orders_db):
    with pytest.raises(QueryCancelled):
        orders_db.sql(
            JOIN_SQL, cancel=CancelToken(cancel_after_checks=10)
        )


def test_generous_limits_do_not_interfere(orders_db):
    unrestricted = orders_db.sql(JOIN_SQL).rows
    guarded = orders_db.sql(
        JOIN_SQL, timeout=60.0, max_rows=10**7, cancel=CancelToken()
    ).rows
    assert sorted(guarded) == sorted(unrestricted)


def test_max_rows_counts_motion_buffers(orders_db):
    # Even a plain scan buffers its rows at the GatherMotion, so the
    # budget bounds what the coordinator materializes: 2400 rows pass a
    # 2400-row budget and fail a 2399-row one.
    result = orders_db.sql("SELECT order_id FROM orders", max_rows=2400)
    assert len(result.rows) == 2400
    with pytest.raises(ResourceLimitExceeded):
        orders_db.sql("SELECT order_id FROM orders", max_rows=2399)


def test_jittered_delay_stays_inside_the_envelope():
    """Decorrelated jitter: every draw is within [base, min(cap, 3*prev)]
    and never exceeds the policy's max delay."""
    policy = RetryPolicy(
        max_retries=5,
        base_delay_seconds=0.01,
        max_delay_seconds=0.08,
        seed=42,
    )
    previous = None
    for attempt in range(1, 50):
        delay = policy.jittered_delay(attempt, previous=previous)
        assert 0.01 <= delay <= 0.08
        anchor = previous if previous else 0.01
        assert delay <= max(0.01, min(0.08, 3.0 * anchor)) + 1e-12
        previous = delay


def test_jittered_delays_actually_vary():
    policy = RetryPolicy(base_delay_seconds=0.01, max_delay_seconds=1.0, seed=7)
    draws = {policy.jittered_delay(1, previous=0.3) for _ in range(20)}
    assert len(draws) > 1, "jitter produced a constant sequence"


def test_jitter_off_restores_deterministic_exponential():
    policy = RetryPolicy(
        base_delay_seconds=0.01, max_delay_seconds=0.08, jitter=False
    )
    for attempt in range(1, 6):
        assert policy.jittered_delay(attempt) == policy.delay_for(attempt)
        assert policy.jittered_delay(
            attempt, previous=0.5
        ) == policy.delay_for(attempt)


def test_jitter_seed_reproducibility():
    draws_a = [
        RetryPolicy(seed=123).jittered_delay(1, previous=None)
        for _ in range(1)
    ]
    draws_b = [
        RetryPolicy(seed=123).jittered_delay(1, previous=None)
        for _ in range(1)
    ]
    assert draws_a == draws_b


def test_zero_base_delay_never_sleeps():
    policy = RetryPolicy(base_delay_seconds=0.0)
    assert policy.jittered_delay(1) == 0.0
    assert policy.backoff(1) == 0.0
