"""Mirror failover end to end: injected primary failures must be invisible
in query results (the acceptance scenario for the resilience subsystem)."""

import datetime

import pytest

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    monthly_range_level,
)
from repro.errors import SegmentFailure
from repro.resilience import (
    ALWAYS,
    CHANNEL_CLOSE,
    FAIL_ONCE,
    MOTION_SEND,
    SCAN_ROW,
    SLICE_START,
)

SEGMENTS = 4
START = datetime.date(2013, 1, 1)

#: a multi-slice plan: partitioned fact joined to a dimension (the join
#: needs a Motion, so the fact scan runs in a non-root slice)
JOIN_SQL = (
    "SELECT count(*), sum(o.amount) FROM orders o, dim d "
    "WHERE o.id = d.id AND d.tag = 't3'"
)


@pytest.fixture(scope="module")
def fdb() -> Database:
    db = Database(num_segments=SEGMENTS)
    db.create_table(
        "orders",
        TableSchema.of(("id", t.INT), ("date", t.DATE), ("amount", t.FLOAT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [monthly_range_level("date", START, 12)]
        ),
    )
    db.create_table(
        "dim",
        TableSchema.of(("id", t.INT), ("tag", t.TEXT)),
        distribution=DistributionPolicy.hashed("id"),
    )
    db.insert(
        "orders",
        [
            (i, START + datetime.timedelta(days=i % 360), float(i))
            for i in range(800)
        ],
    )
    db.insert("dim", [(i, f"t{i % 7}") for i in range(800)])
    db.analyze()
    return db


@pytest.fixture(autouse=True)
def _clean_state(fdb):
    """Every test starts fault-free with all segments up."""
    fdb.faults.reset()
    fdb.health.recover_all()
    yield
    fdb.faults.reset()
    fdb.health.recover_all()


@pytest.mark.parametrize("workers", [1, 4])
def test_demo_single_primary_failure_is_transparent(fdb, workers):
    """The ISSUE acceptance scenario: a multi-slice join with one injected
    primary failure completes via mirror failover with identical rows, and
    the metrics record the failover and retry — serial and parallel alike."""
    baseline = fdb.sql(JOIN_SQL).rows

    fdb.faults.arm(SCAN_ROW, segment=2, mode=FAIL_ONCE)
    result = fdb.sql(JOIN_SQL, workers=workers)

    assert result.rows == baseline
    data = result.metrics.to_dict()
    assert data["schema_version"] == 9
    resilience = data["resilience"]
    assert resilience["failover_count"] >= 1
    assert resilience["retry_count"] >= 1
    assert resilience["failovers"][0]["segment"] == 2
    assert resilience["fault_points"][SCAN_ROW]["fired"] == 1
    assert 2 in resilience["segment_health"]["down_segments"]
    assert fdb.health.mirror_reads[2] > 0


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize(
    "point", [SLICE_START, MOTION_SEND, SCAN_ROW, CHANNEL_CLOSE]
)
def test_every_injection_point_fails_over_cleanly(fdb, point, workers):
    baseline = fdb.sql(JOIN_SQL).rows
    fdb.faults.arm(point, segment=1, mode=FAIL_ONCE)
    result = fdb.sql(JOIN_SQL, workers=workers)
    assert result.rows == baseline
    assert result.metrics.failover_count == 1
    assert not fdb.health.is_up(1)


@pytest.mark.parametrize("workers", [1, 4])
def test_transient_failure_retries_in_place(fdb, workers):
    """A transient fault retries the failed segment's instance without
    marking the primary down — no failover, segment stays up."""
    baseline = fdb.sql(JOIN_SQL).rows
    fdb.faults.arm(MOTION_SEND, segment=1, mode=FAIL_ONCE, transient=True)
    result = fdb.sql(JOIN_SQL, workers=workers)
    assert result.rows == baseline
    assert result.metrics.retry_count == 1
    assert result.metrics.failover_count == 0
    assert fdb.health.is_up(1)


@pytest.mark.parametrize("workers", [1, 4])
def test_persistent_failure_exhausts_retries(fdb, workers):
    """ALWAYS-mode faults outlast the retry budget and surface as the
    typed SegmentFailure, never a bare exception."""
    fdb.faults.arm(SLICE_START, segment=0, mode=ALWAYS, transient=True)
    with pytest.raises(SegmentFailure):
        fdb.sql(JOIN_SQL, workers=workers)


@pytest.mark.parametrize("workers", [1, 4])
def test_double_fault_is_unrecoverable(fdb, workers):
    """Primary fails and the mirror is also down: the typed error
    propagates instead of wrong results."""
    fdb.health.mark_mirror_down(2)
    fdb.faults.arm(SCAN_ROW, segment=2, mode=FAIL_ONCE)
    with pytest.raises(SegmentFailure):
        fdb.sql(JOIN_SQL, workers=workers)


def test_queries_keep_working_after_failover(fdb):
    """Once a segment is down, later queries read the mirror without any
    fault armed — and recovery restores the primary."""
    baseline = fdb.sql(JOIN_SQL).rows
    fdb.health.failover(3, reason="test")
    assert fdb.sql(JOIN_SQL).rows == baseline
    assert fdb.health.mirror_reads[3] > 0
    fdb.health.recover(3)
    assert fdb.sql(JOIN_SQL).rows == baseline
    assert fdb.health.is_up(3)


def test_writes_reach_both_copies(fdb):
    """Synchronous replication: rows inserted while all segments are up
    are readable after a failover (the mirror holds them too)."""
    db = Database(num_segments=SEGMENTS)
    db.create_table(
        "kv",
        TableSchema.of(("k", t.INT), ("v", t.INT)),
        distribution=DistributionPolicy.hashed("k"),
    )
    db.insert("kv", [(i, i * 10) for i in range(100)])
    before = db.sql("SELECT count(*), sum(v) FROM kv").rows
    for segment in range(SEGMENTS):
        db.health.failover(segment, reason="test")
    assert db.sql("SELECT count(*), sum(v) FROM kv").rows == before


def test_explain_analyze_shows_resilience_line(fdb):
    fdb.faults.arm(SCAN_ROW, segment=1, mode=FAIL_ONCE)
    text = fdb.explain_analyze(JOIN_SQL)
    assert "Resilience:" in text
    assert "failover" in text
