"""Property-based fault testing: any *single* injected segment failure
either yields results identical to the fault-free run (after failover /
retry) or raises a typed :class:`~repro.errors.ReproError` — never a bare
exception, never silently wrong rows.
"""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    monthly_range_level,
)
from repro.errors import ReproError
from repro.resilience import (
    ALWAYS,
    FAIL_N,
    FAIL_ONCE,
    INJECTION_POINTS,
)

SEGMENTS = 4
START = datetime.date(2013, 1, 1)

QUERIES = [
    # multi-slice join over the partitioned fact
    "SELECT count(*), sum(o.amount) FROM orders o, dim d "
    "WHERE o.id = d.id AND d.tag = 't2'",
    # static partition elimination + aggregate
    "SELECT count(*) FROM orders "
    "WHERE date BETWEEN '2013-03-01' AND '2013-05-31'",
    # grouped aggregation (hash agg buffers state)
    "SELECT d.tag, count(*) FROM orders o, dim d "
    "WHERE o.id = d.id GROUP BY d.tag",
]

# Module-level lazy singleton: building the database once keeps hypothesis
# example runtime flat, and every example resets faults/health explicitly.
_DB = None
_BASELINES = None


def _database():
    global _DB, _BASELINES
    if _DB is None:
        db = Database(num_segments=SEGMENTS)
        db.create_table(
            "orders",
            TableSchema.of(
                ("id", t.INT), ("date", t.DATE), ("amount", t.FLOAT)
            ),
            distribution=DistributionPolicy.hashed("id"),
            partition_scheme=PartitionScheme(
                [monthly_range_level("date", START, 12)]
            ),
        )
        db.create_table(
            "dim",
            TableSchema.of(("id", t.INT), ("tag", t.TEXT)),
            distribution=DistributionPolicy.hashed("id"),
        )
        db.insert(
            "orders",
            [
                (i, START + datetime.timedelta(days=i % 360), float(i))
                for i in range(600)
            ],
        )
        db.insert("dim", [(i, f"t{i % 5}") for i in range(600)])
        db.analyze()
        _DB = db
        _BASELINES = {sql: db.sql(sql).rows for sql in QUERIES}
    return _DB, _BASELINES


@given(
    query_index=st.integers(min_value=0, max_value=len(QUERIES) - 1),
    point=st.sampled_from(INJECTION_POINTS),
    segment=st.integers(min_value=0, max_value=SEGMENTS - 1),
    mode=st.sampled_from([FAIL_ONCE, FAIL_N, ALWAYS]),
    n=st.integers(min_value=1, max_value=3),
    skip=st.integers(min_value=0, max_value=5),
    transient=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_single_fault_never_corrupts_results(
    query_index, point, segment, mode, n, skip, transient
):
    db, baselines = _database()
    db.faults.reset()
    db.health.recover_all()
    sql = QUERIES[query_index]
    db.faults.arm(
        point, segment=segment, mode=mode, n=n, skip=skip, transient=transient
    )
    try:
        result = db.sql(sql)
    except ReproError:
        # Typed failure is an acceptable outcome (e.g. retries exhausted
        # under ALWAYS) — a bare exception would escape this clause and
        # fail the test.
        return
    finally:
        db.faults.reset()
        db.health.recover_all()
    assert sorted(result.rows) == sorted(baselines[sql]), (
        f"fault {point}@{segment} ({mode}, n={n}, skip={skip}, "
        f"transient={transient}) corrupted results of {sql!r}"
    )


@given(
    point=st.sampled_from(INJECTION_POINTS),
    segment=st.integers(min_value=0, max_value=SEGMENTS - 1),
)
@settings(max_examples=20, deadline=None)
def test_fail_once_always_recovers(point, segment):
    """The single-crash case specifically must *succeed* (not merely fail
    cleanly): one primary death is always survivable with mirrors up."""
    db, baselines = _database()
    db.faults.reset()
    db.health.recover_all()
    sql = QUERIES[0]
    db.faults.arm(point, segment=segment, mode=FAIL_ONCE)
    try:
        result = db.sql(sql)
    finally:
        db.faults.reset()
        db.health.recover_all()
    assert sorted(result.rows) == sorted(baselines[sql])
