"""FaultInjector unit behaviour: arming, triggers, determinism, counters."""

import pytest

from repro.errors import ExecutionError, SegmentFailure
from repro.resilience import (
    ALWAYS,
    FAIL_N,
    FAIL_ONCE,
    INJECTION_POINTS,
    SCAN_ROW,
    SLICE_START,
    FaultInjector,
)


def test_inactive_injector_is_a_noop():
    injector = FaultInjector()
    assert not injector.active
    injector.maybe_fire(SCAN_ROW, 0)  # nothing armed, nothing raised
    assert injector.snapshot() == {}


def test_fail_once_fires_exactly_once():
    injector = FaultInjector()
    spec = injector.arm(SCAN_ROW, segment=1, mode=FAIL_ONCE)
    injector.maybe_fire(SCAN_ROW, 0)  # wrong segment
    with pytest.raises(SegmentFailure) as excinfo:
        injector.maybe_fire(SCAN_ROW, 1)
    assert excinfo.value.segment == 1
    assert excinfo.value.point == SCAN_ROW
    assert not excinfo.value.transient
    # Exhausted: further evaluations pass.
    injector.maybe_fire(SCAN_ROW, 1)
    assert spec.fired == 1


def test_fail_n_fires_n_times():
    injector = FaultInjector()
    injector.arm(SLICE_START, mode=FAIL_N, n=3)
    for _ in range(3):
        with pytest.raises(SegmentFailure):
            injector.maybe_fire(SLICE_START, 2)
    injector.maybe_fire(SLICE_START, 2)  # exhausted


def test_always_never_exhausts():
    injector = FaultInjector()
    spec = injector.arm(SLICE_START, mode=ALWAYS)
    for _ in range(10):
        with pytest.raises(SegmentFailure):
            injector.maybe_fire(SLICE_START, 0)
    assert spec.fired == 10
    assert not spec.exhausted


def test_skip_delays_firing():
    injector = FaultInjector()
    injector.arm(SCAN_ROW, mode=FAIL_ONCE, skip=2)
    injector.maybe_fire(SCAN_ROW, 0)
    injector.maybe_fire(SCAN_ROW, 0)
    with pytest.raises(SegmentFailure):
        injector.maybe_fire(SCAN_ROW, 0)


def test_transient_flag_propagates():
    injector = FaultInjector()
    injector.arm(SCAN_ROW, transient=True)
    with pytest.raises(SegmentFailure) as excinfo:
        injector.maybe_fire(SCAN_ROW, 0)
    assert excinfo.value.transient


def test_probability_is_deterministic_per_seed():
    def fire_pattern(seed: int) -> list[int]:
        injector = FaultInjector(seed=seed)
        injector.arm(SCAN_ROW, mode=ALWAYS, probability=0.5)
        fired = []
        for i in range(50):
            try:
                injector.maybe_fire(SCAN_ROW, 0)
            except SegmentFailure:
                fired.append(i)
        return fired

    assert fire_pattern(7) == fire_pattern(7)
    assert fire_pattern(7) != fire_pattern(8)


def test_disarm_and_reset():
    injector = FaultInjector()
    injector.arm(SCAN_ROW)
    injector.arm(SLICE_START)
    assert injector.disarm(SCAN_ROW) == 1
    assert len(injector.specs()) == 1
    assert injector.disarm() == 1
    assert not injector.active
    injector.arm(SCAN_ROW)
    with pytest.raises(SegmentFailure):
        injector.maybe_fire(SCAN_ROW, 0)
    injector.reset()
    assert injector.snapshot() == {}


def test_snapshot_counts_hits_and_fired():
    injector = FaultInjector()
    injector.arm(SCAN_ROW, mode=FAIL_ONCE, skip=1)
    injector.maybe_fire(SCAN_ROW, 0)  # hit, skipped
    with pytest.raises(SegmentFailure):
        injector.maybe_fire(SCAN_ROW, 0)
    snap = injector.snapshot()
    assert snap[SCAN_ROW] == {"hits": 2, "fired": 1}


def test_arm_validates_inputs():
    injector = FaultInjector()
    with pytest.raises(ExecutionError):
        injector.arm("no_such_point")
    with pytest.raises(ExecutionError):
        injector.arm(SCAN_ROW, mode="sometimes")
    with pytest.raises(ExecutionError):
        injector.arm(SCAN_ROW, n=0)
    with pytest.raises(ExecutionError):
        injector.arm(SCAN_ROW, probability=0.0)


def test_all_points_are_armable():
    injector = FaultInjector()
    for point in INJECTION_POINTS:
        injector.arm(point)
    assert len(injector.specs()) == len(INJECTION_POINTS)
