"""Guardrails under the parallel scheduler: timeout/cancel must
terminate promptly at workers=4, including producers blocked on Motion
backpressure, and must never leak worker threads or parked producers."""

from __future__ import annotations

import datetime
import random
import threading
import time

import pytest

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    monthly_range_level,
)
from repro.errors import QueryCancelled, QueryTimeout
from repro.executor.queues import TupleQueue
from repro.resilience import CancelToken, QueryLimits

JOIN_QUERY = (
    "SELECT avg(amount) FROM orders WHERE date BETWEEN "
    "'01-01-2012' AND '12-31-2013'"
)


def _db() -> Database:
    db = Database(num_segments=4)
    db.create_table(
        "orders",
        TableSchema.of(
            ("order_id", t.INT), ("amount", t.FLOAT), ("date", t.DATE)
        ),
        distribution=DistributionPolicy.hashed("order_id"),
        partition_scheme=PartitionScheme(
            [monthly_range_level("date", datetime.date(2012, 1, 1), 24)]
        ),
    )
    rng = random.Random(11)
    start = datetime.date(2012, 1, 1)
    db.insert(
        "orders",
        [
            (
                i,
                round(rng.uniform(1, 100), 2),
                start + datetime.timedelta(days=rng.randrange(729)),
            )
            for i in range(2000)
        ],
    )
    db.analyze()
    return db


def _segment_threads() -> int:
    return sum(
        1
        for thread in threading.enumerate()
        if thread.name.startswith("repro-segment") and thread.is_alive()
    )


def test_timeout_fires_promptly_at_workers_4():
    db = _db()
    db.storage.io_latency_s = 0.002
    started = time.monotonic()
    with pytest.raises(QueryTimeout):
        db.sql(JOIN_QUERY, workers=4, timeout=0.0)
    # cooperative checkpoints must kill the run in well under a second
    # of wall clock even though four workers are mid-flight
    assert time.monotonic() - started < 5.0
    # the per-query pool was shut down (no leaked segment workers)
    assert _segment_threads() == 0
    # and the database still executes cleanly afterwards
    db.storage.io_latency_s = 0.0
    assert db.sql(JOIN_QUERY, workers=4).rows


def test_external_cancel_terminates_parallel_run():
    db = _db()
    db.storage.io_latency_s = 0.002
    token = CancelToken()
    outcome: dict = {}

    def run():
        try:
            outcome["rows"] = db.sql(JOIN_QUERY, workers=4, cancel=token).rows
        except QueryCancelled:
            outcome["cancelled"] = True

    thread = threading.Thread(target=run)
    thread.start()
    time.sleep(0.01)
    token.cancel()
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert outcome.get("cancelled") or "rows" in outcome
    assert _segment_threads() == 0


def test_deterministic_cancel_sweep_at_workers_4():
    """The cancel_after_checks hook fires inside worker threads too; no
    depth may hang the query or leak pool threads."""
    db = _db()
    for checks in (1, 5, 17, 65):
        token = CancelToken(cancel_after_checks=checks)
        started = time.monotonic()
        try:
            db.sql(JOIN_QUERY, workers=4, cancel=token)
        except QueryCancelled:
            pass
        assert time.monotonic() - started < 10.0
        assert _segment_threads() == 0


def test_blocked_producer_unblocks_on_cancel():
    """A producer parked on a full TupleQueue under backpressure must be
    released by cancellation — not wait out the stall timeout."""
    token = CancelToken()
    limits = QueryLimits(cancel=token)
    queue = TupleQueue(capacity=1, stall_timeout_s=30.0, limits=limits)
    errors: list = []
    taken: list = []

    # attach a streaming consumer that drains exactly one row and then
    # stalls forever, so put() blocks instead of failing fast
    stream = queue.stream()
    consumer = threading.Thread(target=lambda: taken.append(next(stream)))
    consumer.start()
    deadline = time.monotonic() + 2.0
    while queue._consumers == 0 and time.monotonic() < deadline:
        time.sleep(0.002)
    assert queue._consumers == 1

    def producer():
        try:
            queue.put((1,), producer=0)  # drained by the consumer
            queue.put((2,), producer=0)  # fills the queue
            queue.put((3,), producer=0)  # blocks: stalled consumer
        except QueryCancelled as exc:
            errors.append(exc)

    thread = threading.Thread(target=producer)
    thread.start()
    consumer.join(timeout=2.0)
    time.sleep(0.05)
    assert thread.is_alive(), "producer should be parked on backpressure"
    token.cancel()
    thread.join(timeout=5.0)
    assert not thread.is_alive(), "cancel did not release the producer"
    assert len(errors) == 1
    assert taken == [(1,)]
    stream.close()


def test_blocked_producer_unblocks_on_timeout():
    limits = QueryLimits(timeout_seconds=0.05)
    limits.start()
    queue = TupleQueue(capacity=1, stall_timeout_s=30.0, limits=limits)
    taken: list = []
    stream = queue.stream()
    consumer = threading.Thread(target=lambda: taken.append(next(stream)))
    consumer.start()
    deadline = time.monotonic() + 2.0
    while queue._consumers == 0 and time.monotonic() < deadline:
        time.sleep(0.002)
    queue.put((1,), producer=0)
    consumer.join(timeout=2.0)  # row 1 drained; consumer now stalls
    queue.put((2,), producer=0)  # fills the queue
    started = time.monotonic()
    with pytest.raises(QueryTimeout):
        queue.put((3,), producer=0)
    assert time.monotonic() - started < 5.0
    stream.close()


def test_timeout_with_motion_backpressure_leaves_no_parked_producers():
    """End to end: bounded motion queues + 4 workers + timeout.  The
    query dies promptly and every producer thread drains out."""
    db = _db()
    db.executor.motion_queue_capacity = 8
    db.storage.io_latency_s = 0.002
    before = threading.active_count()
    with pytest.raises((QueryTimeout, Exception)):
        db.sql(JOIN_QUERY, workers=4, timeout=0.0)
    deadline = time.monotonic() + 5.0
    while _segment_threads() > 0 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert _segment_threads() == 0
    # thread census returns to (at most) where it started
    assert threading.active_count() <= before
