"""The exception hierarchy: every engine error is catchable as ReproError."""

import pytest

from repro.errors import (
    BindError,
    CatalogError,
    ChannelError,
    ExecutionError,
    InvalidPlanError,
    OptimizerError,
    PartitionError,
    ReproError,
    SqlError,
)


def test_hierarchy():
    assert issubclass(CatalogError, ReproError)
    assert issubclass(PartitionError, CatalogError)
    assert issubclass(SqlError, ReproError)
    assert issubclass(BindError, ReproError)
    assert issubclass(OptimizerError, ReproError)
    assert issubclass(InvalidPlanError, ReproError)
    assert issubclass(ExecutionError, ReproError)
    assert issubclass(ChannelError, ExecutionError)


def test_sql_error_carries_position():
    error = SqlError("bad token", position=17)
    assert error.position == 17
    assert "bad token" in str(error)


def test_engine_failures_are_repro_errors():
    """One catch-all suffices for library users."""
    from repro import Database
    from repro import types as t
    from repro.catalog import TableSchema

    db = Database(num_segments=2)
    db.create_table("t", TableSchema.of(("a", t.INT)))
    failing = [
        "SELECT * FROM missing_table",
        "SELECT nope FROM t",
        "SELECT * FORM t",
        "UPDATE t SET zzz = 1",
    ]
    for sql in failing:
        with pytest.raises(ReproError):
            db.sql(sql)
