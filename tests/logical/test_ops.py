"""Logical operators: layouts, traversal, explain text."""

import pytest

from repro import types as t
from repro.catalog import (
    Catalog,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.expr.ast import AggCall, ColumnRef, Comparison, Literal
from repro.logical.ops import (
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalSelect,
    LogicalSort,
    LogicalUpdate,
    partitioned_gets,
)


@pytest.fixture(scope="module")
def tables():
    catalog = Catalog()
    part = catalog.create_table(
        "p",
        TableSchema.of(("k", t.INT), ("v", t.INT)),
        partition_scheme=PartitionScheme([uniform_int_level("k", 0, 10, 2)]),
    )
    plain = catalog.create_table(
        "q", TableSchema.of(("x", t.INT), ("y", t.TEXT))
    )
    return part, plain


def test_get_layout_is_alias_qualified(tables):
    part, _ = tables
    get = LogicalGet(part, "alias_p")
    layout = get.output_layout()
    assert layout.slots == (("alias_p", "k"), ("alias_p", "v"))


def test_select_and_sort_preserve_layout(tables):
    part, _ = tables
    get = LogicalGet(part, "p")
    select = LogicalSelect(get, Comparison("<", ColumnRef("k", "p"), Literal(3)))
    assert select.output_layout() == get.output_layout()
    sort = LogicalSort(select, [(ColumnRef("k", "p"), True)])
    assert sort.output_layout() == get.output_layout()


def test_project_layout(tables):
    part, _ = tables
    project = LogicalProject(
        LogicalGet(part, "p"), [(ColumnRef("k", "p"), "key_out")]
    )
    assert project.output_layout().slots == ((None, "key_out"),)


def test_join_layouts(tables):
    part, plain = tables
    left = LogicalGet(part, "p")
    right = LogicalGet(plain, "q")
    predicate = Comparison("=", ColumnRef("k", "p"), ColumnRef("x", "q"))
    inner = LogicalJoin("inner", left, right, predicate)
    assert len(inner.output_layout()) == 4
    semi = LogicalJoin("semi", left, right, predicate)
    assert semi.output_layout() == left.output_layout()
    with pytest.raises(ValueError):
        LogicalJoin("outer", left, right, predicate)


def test_group_by_layout(tables):
    part, _ = tables
    group = LogicalGroupBy(
        LogicalGet(part, "p"),
        [ColumnRef("k", "p")],
        [(AggCall("sum", ColumnRef("v", "p")), "total")],
    )
    assert group.output_layout().slots == (("p", "k"), (None, "total"))


def test_update_layout(tables):
    part, _ = tables
    update = LogicalUpdate(
        LogicalGet(part, "p"), part, "p", [("v", Literal(1))]
    )
    assert update.output_layout().slots == ((None, "updated"),)


def test_walk_and_partitioned_gets(tables):
    part, plain = tables
    tree = LogicalLimit(
        LogicalJoin(
            "inner",
            LogicalGet(part, "p"),
            LogicalGet(plain, "q"),
            Comparison("=", ColumnRef("k", "p"), ColumnRef("x", "q")),
        ),
        5,
    )
    assert len(list(tree.walk())) == 4
    gets = partitioned_gets(tree)
    assert [g.alias for g in gets] == ["p"]


def test_explain_mentions_operators(tables):
    part, _ = tables
    tree = LogicalSelect(
        LogicalGet(part, "p"), Comparison("<", ColumnRef("k", "p"), Literal(3))
    )
    text = tree.explain()
    assert "Select" in text and "Get" in text and "2 parts" in text


def test_with_children_shallow_copy(tables):
    part, plain = tables
    join = LogicalJoin(
        "inner",
        LogicalGet(part, "p"),
        LogicalGet(plain, "q"),
        None,
    )
    swapped = join.with_children((join.right, join.left))
    assert swapped.left is join.right
    assert join.left is not swapped.left  # original untouched
