"""Workload generators: schema shapes, data validity, query bindability."""

import pytest

from repro.workloads import synthetic, tpcds, tpch


class TestTpch:
    def test_scheme_partition_counts_match_table2(self):
        for parts in tpch.TABLE2_SCENARIOS:
            scheme = tpch.lineitem_scheme(parts)
            assert scheme.num_leaves == parts

    def test_rows_route_into_partitions(self):
        db = tpch.build_lineitem_database(42, row_count=300, num_segments=2)
        table = db.catalog.table("lineitem")
        stats = db.statistics.get(table)
        assert stats.row_count == 300
        assert sum(stats.leaf_rows.values()) == 300

    def test_unpartitioned_baseline(self):
        db = tpch.build_lineitem_database(None, row_count=50, num_segments=2)
        assert not db.catalog.table("lineitem").is_partitioned
        assert db.sql("SELECT count(*) FROM lineitem").rows == [(50,)]

    def test_shipdate_fraction_bounds(self):
        assert tpch.shipdate_for_fraction(0.0) == tpch.SHIPDATE_START
        assert tpch.shipdate_for_fraction(1.0) == tpch.SHIPDATE_END

    def test_generated_rows_are_deterministic(self):
        a = list(tpch.generate_lineitem(20, seed=5))
        b = list(tpch.generate_lineitem(20, seed=5))
        assert a == b
        c = list(tpch.generate_lineitem(20, seed=6))
        assert a != c


class TestTpcds:
    @pytest.fixture(scope="class")
    def db(self):
        return tpcds.build_database(fact_rows=300, num_segments=2)

    def test_all_fact_tables_partitioned(self, db):
        for name in tpcds.FACT_TABLES:
            table = db.catalog.table(name)
            assert table.is_partitioned
            assert table.num_leaves == tpcds.FACT_PARTITIONS

    def test_date_dim_covers_span(self, db):
        result = db.sql("SELECT count(*), min(d_year), max(d_year) FROM date_dim")
        count, lo, hi = result.rows[0]
        assert count == tpcds.NUM_DAYS
        assert lo == 1998 and hi == 2002

    def test_workload_queries_all_plan_and_run(self, db):
        queries = tpcds.workload_queries()
        assert len(queries) >= 30
        kinds = {q.kind for q in queries}
        assert kinds == {"static", "dynamic", "none"}
        for query in queries:
            result = db.sql(query.sql)
            assert result is not None, query.name

    def test_fact_table_of(self):
        queries = tpcds.workload_queries()
        for query in queries:
            assert tpcds.fact_table_of(query) in tpcds.FACT_TABLES

    def test_dynamic_queries_eliminate_with_orca_only(self, db):
        """Spot-check of the Table 3 signal on one dynamic query."""
        query = next(
            q for q in tpcds.workload_queries() if q.kind == "dynamic"
        )
        table = tpcds.fact_table_of(query)
        orca = db.sql(query.sql)
        planner = db.sql(query.sql, optimizer="planner")
        assert orca.partitions_scanned(table) < planner.partitions_scanned(
            table
        )

    def test_static_queries_eliminate_equally(self, db):
        query = next(
            q for q in tpcds.workload_queries() if q.kind == "static"
        )
        table = tpcds.fact_table_of(query)
        orca = db.sql(query.sql)
        planner = db.sql(query.sql, optimizer="planner")
        assert orca.partitions_scanned(table) == planner.partitions_scanned(
            table
        )
        assert orca.partitions_scanned(table) < tpcds.FACT_PARTITIONS


class TestSynthetic:
    def test_rs_database_shape(self):
        db = synthetic.build_rs_database(num_parts=5, rows_per_table=100)
        for name in ("r", "s"):
            table = db.catalog.table(name)
            assert table.num_leaves == 5
            assert db.statistics.get(table).row_count == 100

    def test_join_and_update_queries_run(self):
        db = synthetic.build_rs_database(num_parts=5, rows_per_table=100)
        join = db.sql(synthetic.JOIN_QUERY)
        assert all(row[1] == row[3] for row in join.rows)  # r.b == s.b
        update = db.sql(synthetic.UPDATE_QUERY)
        assert update.rows[0][0] == 100
