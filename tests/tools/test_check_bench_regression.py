"""The CI bench-regression gate: deterministic counters gate hard,
wall clocks only warn."""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

TOOL = (
    pathlib.Path(__file__).resolve().parents[2]
    / "tools"
    / "check_bench_regression.py"
)

FIG16 = {
    "tables": {
        "store_sales": {"orca": 108, "planner": 276},
        "web_returns": {"orca": 74, "planner": 132},
    }
}
FIG18A = {
    "fractions": [0.01, 0.25, 0.5, 0.75, 1.0],
    "planner_bytes": [910, 5950, 11522, 17094, 22652],
    "orca_bytes": [1630] * 5,
}
FIG19 = {
    "segments": 4,
    "measurements": [
        {"workers": 1, "seconds": 0.120, "speedup": 1.0},
        {"workers": 4, "seconds": 0.033, "speedup": 3.6},
    ],
}


def _write_results(directory: pathlib.Path, **overrides) -> None:
    payloads = {
        "fig16_partitions_scanned.json": FIG16,
        "fig18a_static_plan_size.json": FIG18A,
        "fig19_parallel_speedup.json": FIG19,
    }
    payloads.update(overrides)
    directory.mkdir(parents=True, exist_ok=True)
    for name, payload in payloads.items():
        (directory / name).write_text(json.dumps(payload))


def _run(baseline: pathlib.Path, current: pathlib.Path):
    return subprocess.run(
        [sys.executable, str(TOOL), str(baseline), str(current)],
        capture_output=True,
        text=True,
    )


def test_identical_results_pass(tmp_path):
    _write_results(tmp_path / "baseline")
    _write_results(tmp_path / "current")
    proc = _run(tmp_path / "baseline", tmp_path / "current")
    assert proc.returncode == 0, proc.stdout
    assert "bench gate: OK" in proc.stdout


def test_perturbed_fig16_counter_fails(tmp_path):
    """The acceptance check: a partitions-scanned regression must turn the
    gate red."""
    _write_results(tmp_path / "baseline")
    worse = json.loads(json.dumps(FIG16))
    worse["tables"]["store_sales"]["orca"] = 276  # elimination broke
    _write_results(
        tmp_path / "current", **{"fig16_partitions_scanned.json": worse}
    )
    proc = _run(tmp_path / "baseline", tmp_path / "current")
    assert proc.returncode == 1, proc.stdout
    assert "FAIL" in proc.stdout and "tables" in proc.stdout


def test_plan_size_regression_fails(tmp_path):
    _write_results(tmp_path / "baseline")
    bloated = dict(FIG18A, orca_bytes=[1630, 1630, 1630, 1630, 22652])
    _write_results(
        tmp_path / "current", **{"fig18a_static_plan_size.json": bloated}
    )
    proc = _run(tmp_path / "baseline", tmp_path / "current")
    assert proc.returncode == 1
    assert "orca_bytes" in proc.stdout


def test_wall_clock_slowdown_only_warns(tmp_path):
    _write_results(tmp_path / "baseline")
    slow = json.loads(json.dumps(FIG19))
    slow["measurements"][1]["seconds"] = 0.099  # 3x slower than baseline
    _write_results(
        tmp_path / "current", **{"fig19_parallel_speedup.json": slow}
    )
    proc = _run(tmp_path / "baseline", tmp_path / "current")
    assert proc.returncode == 0, proc.stdout
    assert "WARN" in proc.stdout and "report-only" in proc.stdout


def test_missing_gated_file_in_current_fails(tmp_path):
    _write_results(tmp_path / "baseline")
    _write_results(tmp_path / "current")
    (tmp_path / "current" / "fig16_partitions_scanned.json").unlink()
    proc = _run(tmp_path / "baseline", tmp_path / "current")
    assert proc.returncode == 1
    assert "missing from current" in proc.stdout


def test_missing_baseline_file_only_warns(tmp_path):
    """First run on a branch: no baseline yet is not a failure."""
    _write_results(tmp_path / "baseline")
    (tmp_path / "baseline" / "fig16_partitions_scanned.json").unlink()
    _write_results(tmp_path / "current")
    proc = _run(tmp_path / "baseline", tmp_path / "current")
    assert proc.returncode == 0, proc.stdout
    assert "no baseline to compare against" in proc.stdout


def test_repo_baselines_match_committed_format():
    """The committed baselines parse and carry every hard-gated counter."""
    baselines = TOOL.parent.parent / "benchmarks" / "baselines"
    fig16 = json.loads(
        (baselines / "fig16_partitions_scanned.json").read_text()
    )
    assert fig16["tables"], "fig16 baseline has per-table counters"
    for name in (
        "fig18a_static_plan_size.json",
        "fig18b_join_plan_size.json",
        "fig18c_dml_plan_size.json",
    ):
        payload = json.loads((baselines / name).read_text())
        assert payload["planner_bytes"] and payload["orca_bytes"]
