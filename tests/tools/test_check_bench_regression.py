"""The CI bench-regression gate: deterministic counters gate hard,
wall clocks only warn, and a per-metric delta table lands in
``$GITHUB_STEP_SUMMARY`` when that variable is set."""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

TOOL = (
    pathlib.Path(__file__).resolve().parents[2]
    / "tools"
    / "check_bench_regression.py"
)

FIG16 = {
    "tables": {
        "store_sales": {"orca": 108, "planner": 276},
        "web_returns": {"orca": 74, "planner": 132},
    }
}
FIG18A = {
    "fractions": [0.01, 0.25, 0.5, 0.75, 1.0],
    "planner_bytes": [910, 5950, 11522, 17094, 22652],
    "orca_bytes": [1630] * 5,
}
FIG19 = {
    "segments": 4,
    "measurements": [
        {"workers": 1, "seconds": 0.120, "speedup": 1.0},
        {"workers": 4, "seconds": 0.033, "speedup": 3.6},
    ],
}


def _write_results(directory: pathlib.Path, **overrides) -> None:
    payloads = {
        "fig16_partitions_scanned.json": FIG16,
        "fig18a_static_plan_size.json": FIG18A,
        "fig19_parallel_speedup.json": FIG19,
    }
    payloads.update(overrides)
    directory.mkdir(parents=True, exist_ok=True)
    for name, payload in payloads.items():
        (directory / name).write_text(json.dumps(payload))


def _run(baseline: pathlib.Path, current: pathlib.Path, env=None):
    merged = dict(os.environ)
    if env:
        merged.update(env)
    return subprocess.run(
        [sys.executable, str(TOOL), str(baseline), str(current)],
        capture_output=True,
        text=True,
        env=merged,
    )


def test_identical_results_pass(tmp_path):
    _write_results(tmp_path / "baseline")
    _write_results(tmp_path / "current")
    proc = _run(tmp_path / "baseline", tmp_path / "current")
    assert proc.returncode == 0, proc.stdout
    assert "bench gate: OK" in proc.stdout


def test_perturbed_fig16_counter_fails(tmp_path):
    """The acceptance check: a partitions-scanned regression must turn the
    gate red."""
    _write_results(tmp_path / "baseline")
    worse = json.loads(json.dumps(FIG16))
    worse["tables"]["store_sales"]["orca"] = 276  # elimination broke
    _write_results(
        tmp_path / "current", **{"fig16_partitions_scanned.json": worse}
    )
    proc = _run(tmp_path / "baseline", tmp_path / "current")
    assert proc.returncode == 1, proc.stdout
    assert "FAIL" in proc.stdout and "tables" in proc.stdout


def test_plan_size_regression_fails(tmp_path):
    _write_results(tmp_path / "baseline")
    bloated = dict(FIG18A, orca_bytes=[1630, 1630, 1630, 1630, 22652])
    _write_results(
        tmp_path / "current", **{"fig18a_static_plan_size.json": bloated}
    )
    proc = _run(tmp_path / "baseline", tmp_path / "current")
    assert proc.returncode == 1
    assert "orca_bytes" in proc.stdout


def test_wall_clock_slowdown_only_warns(tmp_path):
    _write_results(tmp_path / "baseline")
    slow = json.loads(json.dumps(FIG19))
    slow["measurements"][1]["seconds"] = 0.099  # 3x slower than baseline
    _write_results(
        tmp_path / "current", **{"fig19_parallel_speedup.json": slow}
    )
    proc = _run(tmp_path / "baseline", tmp_path / "current")
    assert proc.returncode == 0, proc.stdout
    assert "WARN" in proc.stdout and "report-only" in proc.stdout


def test_missing_gated_file_in_current_fails(tmp_path):
    _write_results(tmp_path / "baseline")
    _write_results(tmp_path / "current")
    (tmp_path / "current" / "fig16_partitions_scanned.json").unlink()
    proc = _run(tmp_path / "baseline", tmp_path / "current")
    assert proc.returncode == 1
    assert "missing from current" in proc.stdout


def test_missing_baseline_file_only_warns(tmp_path):
    """First run on a branch: no baseline yet is not a failure."""
    _write_results(tmp_path / "baseline")
    (tmp_path / "baseline" / "fig16_partitions_scanned.json").unlink()
    _write_results(tmp_path / "current")
    proc = _run(tmp_path / "baseline", tmp_path / "current")
    assert proc.returncode == 0, proc.stdout
    assert "no baseline to compare against" in proc.stdout


FIG23 = {
    "fact_rows": 24000,
    "batch_sizes": [1, 1024],
    "counters": {
        "scan+filter": {
            "1": {"result_rows": 11988, "rows_scanned": 24000},
            "1024": {"result_rows": 11988, "rows_scanned": 24000},
        }
    },
    "measurements": [
        {"workload": "scan+filter", "batch_size": 1, "seconds": 0.084},
        {"workload": "scan+filter", "batch_size": 1024, "seconds": 0.036},
    ],
}


def test_fig23_counter_regression_fails(tmp_path):
    """A batch-width counter divergence (vectorization changed what the
    query measured) turns the gate red."""
    _write_results(
        tmp_path / "baseline", **{"fig23_batch_throughput.json": FIG23}
    )
    diverged = json.loads(json.dumps(FIG23))
    diverged["counters"]["scan+filter"]["1024"]["result_rows"] = 11989
    _write_results(
        tmp_path / "current", **{"fig23_batch_throughput.json": diverged}
    )
    proc = _run(tmp_path / "baseline", tmp_path / "current")
    assert proc.returncode == 1, proc.stdout
    assert "counters" in proc.stdout


def test_step_summary_written_when_env_set(tmp_path):
    """With GITHUB_STEP_SUMMARY set, the gate appends a markdown delta
    table covering gated counters and report-only wall clocks."""
    _write_results(
        tmp_path / "baseline", **{"fig23_batch_throughput.json": FIG23}
    )
    slower = json.loads(json.dumps(FIG23))
    slower["measurements"][1]["seconds"] = 0.072  # 2x slowdown
    _write_results(
        tmp_path / "current", **{"fig23_batch_throughput.json": slower}
    )
    summary_file = tmp_path / "summary.md"
    proc = _run(
        tmp_path / "baseline",
        tmp_path / "current",
        env={"GITHUB_STEP_SUMMARY": str(summary_file)},
    )
    assert proc.returncode == 0, proc.stdout
    text = summary_file.read_text()
    assert "## Benchmark regression gate" in text
    assert "**OK**" in text
    assert "| file | metric | kind | baseline | current | delta |" in text
    # a gated counter row, unchanged
    assert "`counters.scan+filter.1024.result_rows`" in text
    assert "gated" in text
    # the slowed wall clock, report-only, with a signed delta
    assert "report-only" in text
    assert "+100.0%" in text


def test_step_summary_marks_failures(tmp_path):
    _write_results(tmp_path / "baseline")
    worse = json.loads(json.dumps(FIG16))
    worse["tables"]["store_sales"]["orca"] = 276
    _write_results(
        tmp_path / "current", **{"fig16_partitions_scanned.json": worse}
    )
    summary_file = tmp_path / "summary.md"
    proc = _run(
        tmp_path / "baseline",
        tmp_path / "current",
        env={"GITHUB_STEP_SUMMARY": str(summary_file)},
    )
    assert proc.returncode == 1
    text = summary_file.read_text()
    assert "**FAIL**" in text
    assert "`tables.store_sales.orca`" in text
    assert "+155.6%" in text


def test_no_summary_file_without_env(tmp_path):
    _write_results(tmp_path / "baseline")
    _write_results(tmp_path / "current")
    proc = _run(
        tmp_path / "baseline",
        tmp_path / "current",
        env={"GITHUB_STEP_SUMMARY": ""},
    )
    assert proc.returncode == 0
    assert not (tmp_path / "summary.md").exists()


def test_repo_baselines_match_committed_format():
    """The committed baselines parse and carry every hard-gated counter."""
    baselines = TOOL.parent.parent / "benchmarks" / "baselines"
    fig16 = json.loads(
        (baselines / "fig16_partitions_scanned.json").read_text()
    )
    assert fig16["tables"], "fig16 baseline has per-table counters"
    fig23 = json.loads(
        (baselines / "fig23_batch_throughput.json").read_text()
    )
    assert fig23["counters"], "fig23 baseline has batch-width counters"
    for workload in fig23["counters"].values():
        widths = list(workload.values())
        assert widths and all(w == widths[0] for w in widths), (
            "fig23 baseline counters must agree across batch widths"
        )
    for name in (
        "fig18a_static_plan_size.json",
        "fig18b_join_plan_size.json",
        "fig18c_dml_plan_size.json",
    ):
        payload = json.loads((baselines / name).read_text())
        assert payload["planner_bytes"] and payload["orca_bytes"]
