"""Tier-1 tests for the observability layer (Fig 16 / Table 2 as
assertions): per-DynamicScan partition counters match static-pruning
expectations under both optimizers, Motion rows-moved counters agree
across Gather/Broadcast/Redistribute shapes, and the JSON export is
stable and self-consistent."""

from __future__ import annotations

import json

import pytest

from repro.expr.ast import ColumnRef
from repro.physical.ops import (
    BroadcastMotion,
    GatherMotion,
    RedistributeMotion,
    Scan,
)
from repro.physical.plan import Plan
from repro.storage.distribution import segment_for

DIM_ROWS = 730  # date_dim rows in the orders_db fixture
SEGMENTS = 4


# ---------------------------------------------------------------------------
# Per-DynamicScan partition counters (Fig 16 as assertions)
# ---------------------------------------------------------------------------

PRUNING_CASES = [
    # (sql, table, expected partitions scanned)
    (
        "SELECT count(*) FROM orders WHERE date = '05-15-2013'",
        "orders",
        1,
    ),
    (
        "SELECT count(*) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013'",
        "orders",
        3,
    ),
    # orders_fk: uniform_int_level("date_id", 0, 730, 24); 5 -> slot 0,
    # 700 -> slot 23.
    (
        "SELECT count(*) FROM orders_fk WHERE date_id IN (5, 700)",
        "orders_fk",
        2,
    ),
]


@pytest.mark.parametrize("optimizer", ["orca", "planner"])
@pytest.mark.parametrize("sql, table, expected", PRUNING_CASES)
def test_static_pruning_counters(orders_db, optimizer, sql, table, expected):
    result = orders_db.sql(sql, optimizer=optimizer, analyze=True)
    total = orders_db.catalog.table(table).num_leaves
    assert result.metrics.partitions_scanned(table) == expected
    stats = result.metrics.table_stats()[table]
    assert stats["partitions_scanned"] == expected
    assert stats["partitions_total"] == total
    # The per-node counters agree with the aggregate: exactly the scan
    # nodes of `table` carry the partitions, nothing else.
    scan_parts = set()
    for node in result.metrics.nodes:
        if node.table_name == table:
            for per_segment in node.partitions:
                scan_parts |= per_segment
    assert len(scan_parts) == expected


def test_orca_selector_counters_and_mode(orders_db):
    sql = (
        "SELECT count(*) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013'"
    )
    result = orders_db.sql(sql, analyze=True)
    summaries = [
        result.metrics.selector_summary(scan_id)
        for scan_id in result.metrics.selectors
    ]
    assert len(summaries) == 1
    (summary,) = summaries
    assert summary["mode"] == "static"
    assert summary["partitions_selected"] == 3
    assert summary["partitions_total"] == 24
    # Static selection pushes the selected OIDs once per segment.
    assert summary["oids_pushed"] == 3 * SEGMENTS


def test_join_dpe_selector_is_dynamic(orders_db):
    sql = (
        "SELECT count(*) FROM orders_fk o, date_dim d "
        "WHERE o.date_id = d.date_id AND d.year = 2012"
    )
    result = orders_db.sql(sql, analyze=True)
    modes = {
        result.metrics.selector_summary(scan_id)["mode"]
        for scan_id in result.metrics.selectors
    }
    assert "dynamic" in modes
    # 2012 covers date ids 0..365 of 730 -> at most half the partitions
    # (+1 slot of slack for the boundary partition).
    assert result.metrics.partitions_scanned("orders_fk") <= 13


# ---------------------------------------------------------------------------
# Motion counters: Gather / Broadcast / Redistribute agreement
# ---------------------------------------------------------------------------


def _motion_node(result):
    data = json.loads(result.metrics.to_json())
    root = data["nodes"][0]
    assert "motion" in root
    return root["motion"], data


def test_gather_motion_rows_moved(orders_db):
    table = orders_db.catalog.table("date_dim")
    plan = Plan(GatherMotion(Scan(table, "date_dim")))
    result = orders_db.execute_plan(plan)
    motion, _ = _motion_node(result)
    assert motion["kind"] == "gather"
    assert motion["rows_moved"] == DIM_ROWS == len(result.rows)
    # Everything lands on the coordinator (segment 0).
    assert motion["rows_by_target"] == [DIM_ROWS, 0, 0, 0]
    assert motion["bytes_moved"] > 0


def test_broadcast_motion_rows_moved(orders_db):
    table = orders_db.catalog.table("date_dim")
    plan = Plan(BroadcastMotion(Scan(table, "date_dim")))
    result = orders_db.execute_plan(plan)
    motion, _ = _motion_node(result)
    assert motion["kind"] == "broadcast"
    # One copy per segment; reading the buffer on every segment returns
    # num_segments * N rows.
    assert motion["rows_moved"] == DIM_ROWS * SEGMENTS == len(result.rows)
    assert motion["rows_by_target"] == [DIM_ROWS] * SEGMENTS


def test_redistribute_motion_rows_moved(orders_db):
    table = orders_db.catalog.table("date_dim")
    plan = Plan(
        RedistributeMotion(
            Scan(table, "date_dim"), [ColumnRef("year", "date_dim")]
        )
    )
    result = orders_db.execute_plan(plan)
    motion, _ = _motion_node(result)
    assert motion["kind"] == "redistribute"
    # Redistribution conserves rows and routes by the stable hash.
    assert motion["rows_moved"] == DIM_ROWS == len(result.rows)
    expected = [0] * SEGMENTS
    for _, year, _, _ in result.rows:
        expected[segment_for(year, SEGMENTS)] += 1
    assert motion["rows_by_target"] == expected


def test_motion_shapes_agree(orders_db):
    """The three shapes' counters are mutually consistent over the same
    input: gather == redistribute == broadcast / num_segments."""
    table = orders_db.catalog.table("date_dim")
    moved = {}
    for kind, root in (
        ("gather", GatherMotion(Scan(table, "d"))),
        ("broadcast", BroadcastMotion(Scan(table, "d"))),
        (
            "redistribute",
            RedistributeMotion(Scan(table, "d"), [ColumnRef("date_id", "d")]),
        ),
    ):
        result = orders_db.execute_plan(Plan(root))
        motion, _ = _motion_node(result)
        assert motion["kind"] == kind
        moved[kind] = motion["rows_moved"]
    assert moved["gather"] == moved["redistribute"]
    assert moved["broadcast"] == moved["gather"] * SEGMENTS


# ---------------------------------------------------------------------------
# JSON export, EXPLAIN ANALYZE, and the deprecated aliases
# ---------------------------------------------------------------------------


def test_metrics_json_round_trip(orders_db):
    sql = (
        "SELECT count(*) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013'"
    )
    result = orders_db.sql(sql, analyze=True)
    data = json.loads(result.metrics.to_json())
    assert data["schema_version"] == 9
    assert data["num_segments"] == SEGMENTS
    assert data["timing_collected"] is True
    # Every v1/v2 field survives in v3, plus the additive trace and
    # optimizer sections (null unless the statement ran with trace=True).
    for key in (
        "nodes",
        "partition_selectors",
        "slices",
        "tables",
        "totals",
        "resilience",
        "trace",
        "optimizer",
        "cache",
        "serving",
    ):
        assert key in data
    assert data["serving"] is None  # not a serving-session execution
    assert data["trace"] is None
    assert data["optimizer"] is None
    # A fault-free run records no retries or failovers.
    assert data["resilience"]["retry_count"] == 0
    assert data["resilience"]["failover_count"] == 0
    assert data["resilience"]["segment_health"]["down_segments"] == []
    # Node list is a pre-order tree: ids sequential, parents precede
    # children, the root has no parent.
    assert [node["id"] for node in data["nodes"]] == list(
        range(len(data["nodes"]))
    )
    assert data["nodes"][0]["parent"] is None
    for node in data["nodes"][1:]:
        assert node["parent"] is not None and node["parent"] < node["id"]
    assert data["nodes"][0]["actual_rows"] == len(result.rows)
    assert all(node["time_ms"] is not None for node in data["nodes"])
    assert data["totals"]["rows_scanned"] == result.rows_scanned
    assert data["slices"], "slice wall times recorded"


def test_timing_off_by_default(orders_db):
    result = orders_db.sql("SELECT count(*) FROM date_dim")
    data = json.loads(result.metrics.to_json())
    assert data["timing_collected"] is False
    assert all(node["time_ms"] is None for node in data["nodes"])
    # Row counters stay on regardless.
    assert data["nodes"][0]["actual_rows"] == 1


def test_explain_analyze_rendering(orders_db):
    text = orders_db.explain_analyze(
        "SELECT avg(amount) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013'"
    )
    assert "actual rows=" in text
    assert "partitions: 3/24" in text
    assert "moved" in text  # Motion annotation
    assert "PartitionSelector 1: static, selected 3/24 partitions" in text
    assert "Slice 0 (root):" in text


def test_tracker_alias_removed(orders_db):
    import warnings

    result = orders_db.sql(
        "SELECT * FROM orders WHERE date = '05-15-2013'"
    )
    # The deprecated result.tracker alias is gone; the per-node metrics
    # views are the interface, and they carry no warning.
    assert not hasattr(result, "tracker")
    assert result.metrics.tracker.partitions_scanned("orders") == 1
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert result.rows_scanned == result.metrics.total_rows_scanned
        assert result.partitions_scanned("orders") == 1
