"""Operator iterators: joins, aggregation, sorting, selector semantics —
exercised directly against hand-built plan fragments."""

import pytest

from repro import types as t
from repro.catalog import (
    Catalog,
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.errors import ChannelError
from repro.executor.context import ExecContext
from repro.executor.iterators import build_iterator
from repro.expr.ast import (
    AggCall,
    ColumnRef,
    Comparison,
    Literal,
    Parameter,
)
from repro.physical.ops import (
    Append,
    DynamicScan,
    Filter,
    HashAgg,
    HashJoin,
    LeafScan,
    Limit,
    NLJoin,
    PartitionSelector,
    Project,
    Scan,
    Sequence,
    Sort,
)
from repro.physical.properties import PartSelectorSpec

SEGMENTS = 2


@pytest.fixture()
def env():
    catalog = Catalog()
    from repro.storage import StorageManager

    storage = StorageManager(catalog, SEGMENTS)

    part = catalog.create_table(
        "part",
        TableSchema.of(("k", t.INT), ("v", t.INT)),
        distribution=DistributionPolicy.replicated(),
        partition_scheme=PartitionScheme([uniform_int_level("k", 0, 100, 4)]),
    )
    storage.register(part)
    storage.store(part.oid).insert_many([(k, k * 10) for k in range(0, 100, 5)])

    plain = catalog.create_table(
        "plain",
        TableSchema.of(("a", t.INT), ("b", t.TEXT)),
        distribution=DistributionPolicy.replicated(),
    )
    storage.register(plain)
    storage.store(plain.oid).insert_many(
        [(1, "x"), (2, "y"), (3, None), (None, "z")]
    )
    return catalog, storage, part, plain


def _run(op, catalog, storage, params=None) -> list[tuple]:
    """Run an iterator on one segment (tables above are replicated)."""
    ctx = ExecContext(catalog, storage, SEGMENTS, params)
    return list(build_iterator(op, 0, ctx))


def test_scan_and_filter(env):
    catalog, storage, _, plain = env
    scan = Scan(plain, "p")
    rows = _run(scan, catalog, storage)
    assert len(rows) == 4
    filtered = Filter(scan, Comparison(">", ColumnRef("a", "p"), Literal(1)))
    rows = _run(filtered, catalog, storage)
    assert sorted(r[0] for r in rows) == [2, 3]  # NULL fails the predicate


def test_project(env):
    catalog, storage, _, plain = env
    project = Project(
        Scan(plain, "p"),
        [(ColumnRef("b", "p"), "name"), (Literal(1), "one")],
    )
    rows = _run(project, catalog, storage)
    assert ("x", 1) in rows


def test_sequence_runs_children_in_order(env):
    catalog, storage, part, _ = env
    spec = PartSelectorSpec.for_table(1, part, "t")
    seq = Sequence([PartitionSelector(spec), DynamicScan(part, "t", 1)])
    rows = _run(seq, catalog, storage)
    assert len(rows) == 20  # full scan through the selector


def test_dynamic_scan_without_producer_fails(env):
    catalog, storage, part, _ = env
    with pytest.raises(ChannelError):
        _run(DynamicScan(part, "t", 1), catalog, storage)


def test_static_selector_prunes(env):
    catalog, storage, part, _ = env
    key = ColumnRef("k", "t")
    spec = PartSelectorSpec(
        1, part, [key], [Comparison("<", key, Literal(25))]
    )
    plan = PartitionSelector(spec, DynamicScan(part, "t", 1))
    ctx = ExecContext(catalog, storage, SEGMENTS)
    rows = list(build_iterator(plan, 0, ctx))
    assert sorted(r[0] for r in rows) == [0, 5, 10, 15, 20]
    assert ctx.tracker.partitions_scanned("part") == 1


def test_parameter_selector_prunes_at_runtime(env):
    """Prepared-statement case: the parameter value drives selection."""
    catalog, storage, part, _ = env
    key = ColumnRef("k", "t")
    spec = PartSelectorSpec(
        1, part, [key], [Comparison("=", key, Parameter(1))]
    )
    plan = PartitionSelector(spec, DynamicScan(part, "t", 1))
    ctx = ExecContext(catalog, storage, SEGMENTS, params=[30])
    rows = list(build_iterator(plan, 0, ctx))
    assert all(25 <= r[0] < 50 for r in rows)
    assert ctx.tracker.partitions_scanned("part") == 1


def test_streaming_selector_selects_per_tuple(env):
    """Join-form selection: each streamed tuple contributes its OIDs."""
    catalog, storage, part, plain = env
    key = ColumnRef("k", "t")
    join_pred = Comparison("=", key, ColumnRef("a", "p"))
    spec = PartSelectorSpec(1, part, [key], [join_pred])
    selector = PartitionSelector(spec, Scan(plain, "p"))
    join = NLJoin(
        "inner",
        selector,
        DynamicScan(part, "t", 1),
        Comparison("=", ColumnRef("a", "p"), ColumnRef("k", "t")),
    )
    ctx = ExecContext(catalog, storage, SEGMENTS)
    list(build_iterator(join, 0, ctx))
    # values 1,2,3 (and NULL) all fall in the first partition only
    assert ctx.tracker.partitions_scanned("part") == 1


def test_hash_join_inner_and_null_keys(env):
    catalog, storage, _, plain = env
    left = Scan(plain, "l")
    right = Scan(plain, "r")
    join = HashJoin(
        "inner",
        left,
        right,
        [ColumnRef("a", "l")],
        [ColumnRef("a", "r")],
    )
    rows = _run(join, catalog, storage)
    # NULL keys never join: 3 matching pairs (1,2,3), not 4
    assert len(rows) == 3
    assert all(r[0] == r[2] for r in rows)


def test_hash_join_semi(env):
    catalog, storage, _, plain = env
    join = HashJoin(
        "semi",
        Scan(plain, "l"),
        Scan(plain, "r"),
        [ColumnRef("a", "l")],
        [ColumnRef("a", "r")],
    )
    rows = _run(join, catalog, storage)
    assert len(rows) == 3
    assert all(len(r) == 2 for r in rows)  # probe rows only


def test_hash_join_residual(env):
    catalog, storage, _, plain = env
    join = HashJoin(
        "inner",
        Scan(plain, "l"),
        Scan(plain, "r"),
        [ColumnRef("a", "l")],
        [ColumnRef("a", "r")],
        residual=Comparison(">", ColumnRef("a", "l"), Literal(1)),
    )
    rows = _run(join, catalog, storage)
    assert sorted(r[0] for r in rows) == [2, 3]


def test_nl_join_semi(env):
    catalog, storage, _, plain = env
    join = NLJoin(
        "semi",
        Scan(plain, "l"),
        Scan(plain, "r"),
        Comparison("<", ColumnRef("a", "l"), ColumnRef("a", "r")),
    )
    rows = _run(join, catalog, storage)
    assert sorted(r[0] for r in rows) == [1, 2]


def test_hash_agg_grouped(env):
    catalog, storage, part, _ = env
    spec = PartSelectorSpec.for_table(1, part, "t")
    scan = Sequence([PartitionSelector(spec), DynamicScan(part, "t", 1)])
    agg = HashAgg(
        scan,
        [ColumnRef("k", "t")],
        [(AggCall("count", None), "cnt")],
    )
    rows = _run(agg, catalog, storage)
    assert len(rows) == 20
    assert all(r[1] == 1 for r in rows)


def test_scalar_agg_functions(env):
    catalog, storage, _, plain = env
    agg = HashAgg(
        Scan(plain, "p"),
        [],
        [
            (AggCall("count", None), "star"),
            (AggCall("count", ColumnRef("a", "p")), "non_null"),
            (AggCall("sum", ColumnRef("a", "p")), "total"),
            (AggCall("avg", ColumnRef("a", "p")), "mean"),
            (AggCall("min", ColumnRef("a", "p")), "lo"),
            (AggCall("max", ColumnRef("a", "p")), "hi"),
        ],
    )
    rows = _run(agg, catalog, storage)
    assert rows == [(4, 3, 6, 2.0, 1, 3)]


def test_scalar_agg_empty_input_on_coordinator(env):
    catalog, storage, _, plain = env
    empty = Filter(Scan(plain, "p"), Literal(False))
    agg = HashAgg(
        empty,
        [],
        [
            (AggCall("count", None), "star"),
            (AggCall("sum", ColumnRef("a", "p")), "total"),
        ],
    )
    # coordinator (segment 0) emits the empty-group row...
    assert _run(agg, catalog, storage) == [(0, None)]
    # ...other segments stay silent
    ctx = ExecContext(catalog, storage, SEGMENTS)
    assert list(build_iterator(agg, 1, ctx)) == []


def test_sort_null_placement(env):
    catalog, storage, _, plain = env
    ascending = Sort(Scan(plain, "p"), [(ColumnRef("a", "p"), True)])
    rows = _run(ascending, catalog, storage)
    assert [r[0] for r in rows] == [1, 2, 3, None]
    descending = Sort(Scan(plain, "p"), [(ColumnRef("a", "p"), False)])
    rows = _run(descending, catalog, storage)
    assert [r[0] for r in rows] == [None, 3, 2, 1]


def test_limit(env):
    catalog, storage, _, plain = env
    rows = _run(Limit(Scan(plain, "p"), 2), catalog, storage)
    assert len(rows) == 2
    assert _run(Limit(Scan(plain, "p"), 0), catalog, storage) == []


def test_append_and_guarded_leaf_scan(env):
    catalog, storage, part, _ = env
    oids = part.all_leaf_oids()
    append = Append(
        [LeafScan(part, "t", oid, guard_scan_id=9) for oid in oids]
    )
    ctx = ExecContext(catalog, storage, SEGMENTS)
    channel = ctx.channel(9, 0)
    channel.push(oids[1])
    channel.close()
    rows = list(build_iterator(append, 0, ctx))
    assert all(25 <= r[0] < 50 for r in rows)
    assert ctx.tracker.partitions_scanned("part") == 1
