"""Property-based batch/row equivalence.

For random partition predicates, any batch width, and any worker count,
the vectorized pipeline must return exactly the row-at-a-time rows, scan
exactly the same partition set, and read the same number of rows —
vectorization may never change what partition elimination selects or
what the query answers.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)

ROWS = 400
DOMAIN = 1000
PARTS = 8


def _build_db() -> Database:
    db = Database(num_segments=4)
    db.create_table(
        "facts",
        TableSchema.of(("id", t.INT), ("key", t.INT), ("val", t.INT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [uniform_int_level("key", 0, DOMAIN, PARTS)]
        ),
    )
    db.create_table(
        "dim",
        TableSchema.of(("key", t.INT), ("grp", t.INT)),
        distribution=DistributionPolicy.hashed("key"),
    )
    rng = random.Random(4321)
    db.insert(
        "facts",
        [(i, rng.randrange(DOMAIN), rng.randrange(50)) for i in range(ROWS)],
    )
    db.insert("dim", [(k, k % 10) for k in range(0, DOMAIN, 7)])
    db.analyze()
    return db


DB = _build_db()

bounds = st.integers(min_value=-50, max_value=DOMAIN + 50)
batch_sizes = st.sampled_from([1, 7, 1024])
workers_counts = st.sampled_from([1, 4])


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(lo=bounds, hi=bounds, batch_size=batch_sizes, workers=workers_counts)
def test_scan_filter_is_batch_invariant(lo, hi, batch_size, workers):
    """Random range predicate on the partition key: identical rows, an
    identical scanned-partition set, and identical scan-row totals at
    every (batch width, worker count)."""
    sql = f"SELECT id, key, val FROM facts WHERE key >= {lo} AND key <= {hi}"
    reference = DB.sql(sql, analyze=True, batch_size=1)
    batched = DB.sql(
        sql, analyze=True, batch_size=batch_size, workers=workers
    )
    assert sorted(batched.rows) == sorted(reference.rows)
    assert (
        batched.metrics.partitions_scanned()
        == reference.metrics.partitions_scanned()
    )
    assert (
        batched.metrics.total_rows_scanned
        == reference.metrics.total_rows_scanned
    )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    grp=st.integers(min_value=0, max_value=9),
    batch_size=batch_sizes,
    workers=workers_counts,
)
def test_join_elimination_is_batch_invariant(grp, batch_size, workers):
    """Random dimension filter driving join-based partition elimination:
    the multi-slice plan (Motions included) is batch-invariant."""
    sql = (
        "SELECT count(*), sum(f.val) FROM facts f, dim d "
        f"WHERE f.key = d.key AND d.grp = {grp}"
    )
    reference = DB.sql(sql, analyze=True, batch_size=1)
    batched = DB.sql(
        sql, analyze=True, batch_size=batch_size, workers=workers
    )
    assert batched.rows == reference.rows
    assert (
        batched.metrics.partitions_scanned()
        == reference.metrics.partitions_scanned()
    )
    assert (
        batched.metrics.total_rows_scanned
        == reference.metrics.total_rows_scanned
    )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(cut=bounds, batch_size=batch_sizes, workers=workers_counts)
def test_group_by_is_batch_invariant(cut, batch_size, workers):
    """Two-phase aggregation (partial on segments, final after the
    redistribute) produces identical groups at every batch width."""
    sql = (
        f"SELECT val, count(*), sum(id) FROM facts WHERE key < {cut} "
        "GROUP BY val"
    )
    reference = DB.sql(sql, batch_size=1)
    batched = DB.sql(sql, batch_size=batch_size, workers=workers)
    assert sorted(batched.rows) == sorted(reference.rows)
