"""The Table 1 built-in partition selection functions."""

import pytest

from repro import types as t
from repro.catalog import (
    Catalog,
    PartitionScheme,
    TableSchema,
    list_level,
    uniform_int_level,
)
from repro.errors import ChannelError, PartitionError
from repro.executor.context import ExecContext
from repro.executor.runtime_funcs import (
    partition_constraints,
    partition_expansion,
    partition_propagation,
    partition_selection,
)
from repro.storage import StorageManager


@pytest.fixture(scope="module")
def env():
    catalog = Catalog()
    single = catalog.create_table(
        "single",
        TableSchema.of(("k", t.INT), ("v", t.INT)),
        partition_scheme=PartitionScheme([uniform_int_level("k", 0, 100, 4)]),
    )
    multi = catalog.create_table(
        "multi",
        TableSchema.of(("k", t.INT), ("region", t.TEXT)),
        partition_scheme=PartitionScheme(
            [
                uniform_int_level("k", 0, 100, 4),
                list_level("region", [("r1", ["R1"]), ("r2", ["R2"])]),
            ]
        ),
    )
    plain = catalog.create_table(
        "plain", TableSchema.of(("a", t.INT))
    )
    return catalog, single, multi, plain


def test_partition_expansion(env):
    catalog, single, multi, plain = env
    assert partition_expansion(catalog, single.oid) == single.all_leaf_oids()
    assert len(partition_expansion(catalog, multi.oid)) == 8
    with pytest.raises(PartitionError):
        partition_expansion(catalog, plain.oid)


def test_partition_selection_single_level(env):
    catalog, single, _, _ = env
    assert partition_selection(catalog, single.oid, 0) == single.leaf_oid((0,))
    assert partition_selection(catalog, single.oid, 99) == single.leaf_oid((3,))
    assert partition_selection(catalog, single.oid, 100) is None  # ⊥
    assert partition_selection(catalog, single.oid, None) is None


def test_partition_selection_multi_level(env):
    catalog, _, multi, _ = env
    oid = partition_selection(catalog, multi.oid, [30, "R2"])
    assert oid == multi.leaf_oid((1, 1))
    with pytest.raises(PartitionError):
        partition_selection(catalog, multi.oid, 30)  # missing level value


def test_partition_constraints(env):
    catalog, single, _, _ = env
    rows = partition_constraints(catalog, single.oid)
    assert len(rows) == 4
    first = rows[0]
    assert first.min_values == (0,)
    assert first.max_values == (25,)
    assert first.min_inclusive == (True,)
    assert first.max_inclusive == (False,)
    # constraints tile the domain
    assert rows[1].min_values == (25,)


def test_partition_constraints_multi_level(env):
    catalog, _, multi, _ = env
    rows = partition_constraints(catalog, multi.oid)
    assert len(rows) == 8
    assert len(rows[0].min_values) == 2


def test_partition_propagation(env):
    catalog, single, _, _ = env
    storage = StorageManager(catalog, 2)
    ctx = ExecContext(catalog, storage, num_segments=2)
    target = single.all_leaf_oids()[0]
    partition_propagation(ctx, 7, 1, target)
    channel = ctx.channel(7, 1)
    channel.close()
    assert channel.consume() == [target]
    # other segment's channel is unaffected
    other = ctx.channel(7, 0)
    with pytest.raises(ChannelError):
        other.consume()
