"""OID channel protocol: producer-before-consumer enforcement."""

import pytest

from repro.errors import ChannelError
from repro.executor.channels import ChannelRegistry, OidChannel


def test_push_consume_roundtrip():
    channel = OidChannel(1, 0)
    channel.push(30)
    channel.push(10)
    channel.push(30)  # duplicates collapse
    channel.close()
    assert channel.consume() == [10, 30]


def test_consume_before_close_raises():
    channel = OidChannel(1, 0)
    channel.push(10)
    with pytest.raises(ChannelError, match="before its PartitionSelector"):
        channel.consume()


def test_push_after_close_raises():
    channel = OidChannel(1, 0)
    channel.close()
    with pytest.raises(ChannelError, match="closed"):
        channel.push(10)


def test_empty_selection_is_valid():
    channel = OidChannel(1, 0)
    channel.close()
    assert channel.consume() == []


def test_registry_keys_by_scan_and_segment():
    registry = ChannelRegistry()
    a = registry.channel(1, 0)
    b = registry.channel(1, 1)
    c = registry.channel(2, 0)
    assert a is registry.channel(1, 0)
    assert a is not b and a is not c
    assert len(registry.channels()) == 3


# ---------------------------------------------------------------------------
# Misuse hardening: the protocol rejects double transitions loudly
# ---------------------------------------------------------------------------


def test_double_close_raises():
    channel = OidChannel(1, 0)
    channel.push(10)
    channel.close()
    with pytest.raises(ChannelError, match="double close"):
        channel.close()


def test_double_consume_raises():
    channel = OidChannel(1, 0)
    channel.push(10)
    channel.close()
    assert channel.consume() == [10]
    with pytest.raises(ChannelError, match="consumed twice"):
        channel.consume()


def test_peek_is_non_destructive():
    channel = OidChannel(1, 0)
    channel.push(10)
    channel.push(20)
    channel.close()
    assert channel.peek() == [10, 20]
    assert channel.peek() == [10, 20]  # repeatable, unlike consume()
    assert channel.consume() == [10, 20]


def test_peek_before_close_raises():
    channel = OidChannel(1, 0)
    channel.push(10)
    with pytest.raises(ChannelError, match="before its producer"):
        channel.peek()


def test_registry_discard_drops_all_segments():
    registry = ChannelRegistry()
    registry.channel(1, 0)
    registry.channel(1, 1)
    registry.channel(2, 0)
    removed = registry.discard([1])
    assert removed == 2
    assert len(registry.channels()) == 1
    # A fresh channel replaces the discarded one (retry path).
    fresh = registry.channel(1, 0)
    fresh.push(5)
    fresh.close()
    assert fresh.consume() == [5]


def test_registry_discard_scoped_to_one_segment():
    """Instance retry discards only the failed segment's channels: the
    healthy segments' filled-and-closed channels must survive."""
    registry = ChannelRegistry()
    survivor = registry.channel(1, 0)
    survivor.push(7)
    survivor.close()
    registry.channel(1, 2)
    registry.channel(2, 2)
    removed = registry.discard([1, 2], segment=2)
    assert removed == 2
    assert registry.channels() == [survivor]
    # The untouched channel is still drainable by its consumer.
    assert survivor.consume() == [7]
