"""OID channel protocol: producer-before-consumer enforcement."""

import pytest

from repro.errors import ChannelError
from repro.executor.channels import ChannelRegistry, OidChannel


def test_push_consume_roundtrip():
    channel = OidChannel(1, 0)
    channel.push(30)
    channel.push(10)
    channel.push(30)  # duplicates collapse
    channel.close()
    assert channel.consume() == [10, 30]


def test_consume_before_close_raises():
    channel = OidChannel(1, 0)
    channel.push(10)
    with pytest.raises(ChannelError, match="before its PartitionSelector"):
        channel.consume()


def test_push_after_close_raises():
    channel = OidChannel(1, 0)
    channel.close()
    with pytest.raises(ChannelError, match="closed"):
        channel.push(10)


def test_empty_selection_is_valid():
    channel = OidChannel(1, 0)
    channel.close()
    assert channel.consume() == []


def test_registry_keys_by_scan_and_segment():
    registry = ChannelRegistry()
    a = registry.channel(1, 0)
    b = registry.channel(1, 1)
    c = registry.channel(2, 0)
    assert a is registry.channel(1, 0)
    assert a is not b and a is not c
    assert len(registry.channels()) == 3
