"""Parallel segment execution: the thread-pool scheduler, bounded Motion
queues, and serial/parallel result equivalence.

The acceptance contract: ``db.sql(query, workers=N)`` must return rows
byte-identical to the serial run, with identical partition-elimination
and Motion counters, for any worker count — parallelism is an execution
strategy, never a semantics change.
"""

from __future__ import annotations

import datetime
import threading

import pytest

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    monthly_range_level,
)
from repro.errors import ChannelError
from repro.executor.queues import MotionBuffer, TupleQueue
from repro.executor.scheduler import SegmentScheduler
from repro.resilience import FAIL_ONCE, MOTION_SEND, SCAN_ROW

SEGMENTS = 4
START = datetime.date(2013, 1, 1)

#: multi-slice: the join forces a Redistribute/Broadcast Motion, and the
#: WHERE on the partition key exercises static elimination alongside it.
JOIN_SQL = (
    "SELECT count(*), sum(o.amount) FROM orders o, dim d "
    "WHERE o.id = d.id AND d.tag = 't3'"
)
SCAN_SQL = (
    "SELECT count(*) FROM orders "
    "WHERE date BETWEEN '03-01-2013' AND '08-31-2013'"
)


@pytest.fixture(scope="module")
def pdb() -> Database:
    db = Database(num_segments=SEGMENTS)
    db.create_table(
        "orders",
        TableSchema.of(("id", t.INT), ("date", t.DATE), ("amount", t.FLOAT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [monthly_range_level("date", START, 12)]
        ),
    )
    db.create_table(
        "dim",
        TableSchema.of(("id", t.INT), ("tag", t.TEXT)),
        distribution=DistributionPolicy.hashed("id"),
    )
    db.insert(
        "orders",
        [
            (i, START + datetime.timedelta(days=i % 360), float(i))
            for i in range(800)
        ],
    )
    db.insert("dim", [(i, f"t{i % 7}") for i in range(800)])
    db.analyze()
    return db


@pytest.fixture(autouse=True)
def _clean_state(pdb):
    pdb.faults.reset()
    pdb.health.recover_all()
    yield
    pdb.faults.reset()
    pdb.health.recover_all()


# ---------------------------------------------------------------------------
# TupleQueue contract
# ---------------------------------------------------------------------------


def test_queue_merges_runs_in_producer_order():
    queue = TupleQueue()
    # pushes interleaved across producers, as worker threads would
    queue.put(("b", 1), producer=2)
    queue.put(("a", 1), producer=0)
    queue.put(("b", 2), producer=2)
    queue.put(("a", 2), producer=0)
    queue.put(("c", 1), producer=3)
    queue.close()
    assert queue.rows() == [
        ("a", 1), ("a", 2), ("b", 1), ("b", 2), ("c", 1)
    ]
    # non-destructive: a retried consumer re-reads the same rows
    assert queue.rows() == queue.rows()


def test_queue_drain_before_close_raises():
    queue = TupleQueue()
    queue.put((1,))
    with pytest.raises(ChannelError, match="before its producers closed"):
        queue.rows()


def test_queue_put_after_close_raises():
    queue = TupleQueue()
    queue.close()
    with pytest.raises(ChannelError, match="closed motion queue"):
        queue.put((1,))


def test_queue_double_close_raises():
    queue = TupleQueue()
    queue.close()
    with pytest.raises(ChannelError, match="double close"):
        queue.close()


def test_queue_full_with_no_consumer_fails_fast():
    """A bounded queue with nobody draining it must raise, not deadlock."""
    queue = TupleQueue(capacity=2)
    queue.put((1,))
    queue.put((2,))
    with pytest.raises(ChannelError, match="no consumer attached"):
        queue.put((3,))


def test_queue_backpressure_with_streaming_consumer():
    """With a live stream() consumer, bounded put() blocks until the
    consumer frees a slot — and every row still arrives exactly once."""
    queue = TupleQueue(capacity=2)
    produced = list(range(50))
    received: list[tuple] = []

    def producer():
        for i in produced:
            queue.put((i,))
        queue.close()

    consumer_ready = threading.Event()

    def consumer():
        stream = queue.stream()
        consumer_ready.set()
        for row in stream:
            received.append(row)

    consumer_thread = threading.Thread(target=consumer)
    consumer_thread.start()
    consumer_ready.wait()
    producer_thread = threading.Thread(target=producer)
    producer_thread.start()
    producer_thread.join(timeout=10)
    consumer_thread.join(timeout=10)
    assert not producer_thread.is_alive() and not consumer_thread.is_alive()
    assert received == [(i,) for i in produced]


def test_queue_discard_producer_drops_only_that_run():
    queue = TupleQueue()
    queue.put((1,), producer=0)
    queue.put((2,), producer=1)
    queue.put((3,), producer=1)
    assert queue.discard_producer(1) == 2
    assert queue.discard_producer(1) == 0  # already gone
    queue.close()
    assert queue.rows() == [(1,)]


def test_motion_buffer_routes_and_discards_per_target():
    buffer = MotionBuffer(num_segments=2)
    buffer.send(0, ("x",), producer=1)
    buffer.send(1, ("y",), producer=1)
    buffer.send(1, ("z",), producer=0)
    assert buffer.discard_producer(1) == 2
    buffer.close()
    assert buffer.rows(0) == []
    assert buffer.rows(1) == [("z",)]
    assert buffer.closed


# ---------------------------------------------------------------------------
# SegmentScheduler
# ---------------------------------------------------------------------------


def test_scheduler_serial_runs_inline_in_order():
    scheduler = SegmentScheduler(workers=1)
    assert not scheduler.parallel
    order: list[int] = []
    results = scheduler.run_slice(
        [lambda i=i: (order.append(i), i)[1] for i in range(4)]
    )
    assert results == [0, 1, 2, 3]
    assert order == [0, 1, 2, 3]


def test_scheduler_parallel_returns_segment_order():
    with SegmentScheduler(workers=4) as scheduler:
        assert scheduler.parallel
        results = scheduler.run_slice([lambda i=i: i * 10 for i in range(8)])
    assert results == [i * 10 for i in range(8)]


def test_scheduler_parallel_raises_lowest_segment_failure():
    def boom(i):
        raise RuntimeError(f"segment {i}")

    with SegmentScheduler(workers=4) as scheduler:
        with pytest.raises(RuntimeError, match="segment 1"):
            scheduler.run_slice(
                [
                    lambda: 0,
                    lambda: boom(1),
                    lambda: 2,
                    lambda: boom(3),
                ]
            )


def test_scheduler_rejects_zero_workers():
    with pytest.raises(ValueError):
        SegmentScheduler(workers=0)


# ---------------------------------------------------------------------------
# End-to-end equivalence and metrics
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sql", [JOIN_SQL, SCAN_SQL])
@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_rows_and_counters_match_serial(pdb, sql, workers):
    serial = pdb.sql(sql, analyze=True)
    parallel = pdb.sql(sql, analyze=True, workers=workers)
    assert parallel.rows == serial.rows
    assert (
        parallel.metrics.partitions_scanned()
        == serial.metrics.partitions_scanned()
    )
    serial_motion = [
        (n.op, n.rows_moved) for n in serial.metrics.nodes if n.is_motion
    ]
    parallel_motion = [
        (n.op, n.rows_moved) for n in parallel.metrics.nodes if n.is_motion
    ]
    assert parallel_motion == serial_motion


def test_default_execution_stays_serial(pdb):
    result = pdb.sql(JOIN_SQL, analyze=True)
    data = result.metrics.to_dict()
    assert data["parallel"]["workers"] == 1
    assert data["parallel"]["mode"] == "serial"
    assert data["parallel"]["overlap"] is None


def test_parallel_metrics_section_shape(pdb):
    result = pdb.sql(JOIN_SQL, analyze=True, workers=4)
    data = result.metrics.to_dict()
    assert data["schema_version"] == 9
    section = data["parallel"]
    assert section["workers"] == 4
    assert section["mode"] == "parallel"
    instances = section["instances"]
    assert instances, "per-(slice, segment) instance walls recorded"
    # every instance is attributed, in deterministic (slice, segment) order
    keys = [(e["slice_id"], e["segment"]) for e in instances]
    assert keys == sorted(keys)
    assert all(e["seconds"] >= 0.0 for e in instances)
    # every slice ran one instance per segment
    slices = {e["slice_id"] for e in instances}
    for slice_id in slices:
        segs = [e["segment"] for e in instances if e["slice_id"] == slice_id]
        assert segs == list(range(SEGMENTS))
    assert section["instance_busy_seconds"] == pytest.approx(
        sum(e["seconds"] for e in instances)
    )


def test_parallel_trace_has_segment_spans(pdb):
    result = pdb.sql(JOIN_SQL, trace=True, workers=4)
    tracer = result.trace
    slices = [s for s in tracer.spans if s.name.startswith("slice:")]
    assert slices
    for slice_span in slices:
        children = [
            s for s in tracer.spans if s.parent_id == slice_span.span_id
        ]
        seg_names = sorted(
            s.name for s in children if s.name.startswith("segment:")
        )
        assert seg_names == [f"segment:{i}" for i in range(SEGMENTS)]
    # serial traces stay exactly as before: no per-segment spans
    serial = pdb.sql(JOIN_SQL, trace=True)
    assert not any(
        s.name.startswith("segment:") for s in serial.trace.spans
    )


def test_explain_analyze_parallel_line(pdb):
    text = pdb.explain_analyze(JOIN_SQL, workers=4)
    assert "Parallel: 4 workers" in text
    serial_text = pdb.explain_analyze(JOIN_SQL)
    assert "Parallel:" not in serial_text


def test_workers_validation(pdb):
    with pytest.raises(ValueError):
        pdb.sql(JOIN_SQL, workers=0)


def test_database_level_workers_default():
    db = Database(num_segments=2, workers=2)
    db.create_table(
        "kv",
        TableSchema.of(("k", t.INT), ("v", t.INT)),
        distribution=DistributionPolicy.hashed("k"),
    )
    db.insert("kv", [(i, i) for i in range(20)])
    result = db.sql("SELECT count(*) FROM kv", analyze=True)
    assert result.rows == [(20,)]
    assert result.metrics.to_dict()["parallel"]["workers"] == 2


# ---------------------------------------------------------------------------
# Parallel execution under fault injection
# ---------------------------------------------------------------------------


def test_parallel_failover_retries_only_failed_instance(pdb):
    baseline = pdb.sql(JOIN_SQL).rows
    pdb.faults.arm(SCAN_ROW, segment=2, mode=FAIL_ONCE)
    result = pdb.sql(JOIN_SQL, analyze=True, workers=4)
    assert result.rows == baseline
    metrics = result.metrics
    assert metrics.failover_count == 1
    assert metrics.retry_count == 1
    assert metrics.retries[0]["segment"] == 2
    # only the failed segment's instance re-ran: it alone appears twice
    # in the per-instance wall log for its slice
    data = metrics.to_dict()
    counts: dict[tuple[int, int], int] = {}
    for entry in data["parallel"]["instances"]:
        key = (entry["slice_id"], entry["segment"])
        counts[key] = counts.get(key, 0) + 1
    assert all(count == 1 for count in counts.values()), (
        "retry happens inside one instance attempt window, other "
        "instances never re-run"
    )


def test_parallel_transient_retry_matches_serial_counters(pdb):
    baseline = pdb.sql(JOIN_SQL).rows
    pdb.faults.arm(MOTION_SEND, segment=1, mode=FAIL_ONCE, transient=True)
    result = pdb.sql(JOIN_SQL, workers=4)
    assert result.rows == baseline
    assert result.metrics.retry_count == 1
    assert result.metrics.failover_count == 0
    assert pdb.health.is_up(1)
