"""Section 3.2 lowering: PartitionSelectors realised through the Table 1
built-ins must behave exactly like the native operator (Figure 15)."""


from repro.executor.lowering import (
    ConstraintsFunctionScan,
    PropagatingProject,
    lower_partition_selectors,
)
from repro.physical.ops import PartitionSelector


def _assert_equivalent(db, sql, table_name):
    native_plan = db.plan(sql)
    lowered_plan = lower_partition_selectors(native_plan)
    native = db.execute_plan(native_plan)
    lowered = db.execute_plan(lowered_plan)
    assert sorted(native.rows, key=repr) == sorted(lowered.rows, key=repr)
    assert native.partitions_scanned(table_name) == lowered.partitions_scanned(
        table_name
    )
    return native_plan, lowered_plan


def test_static_range_lowering_figure_15b(orders_db):
    sql = (
        "SELECT count(*) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013'"
    )
    native, lowered = _assert_equivalent(orders_db, sql, "orders")
    assert any(
        isinstance(op, ConstraintsFunctionScan) for op in lowered.walk()
    )
    projector = next(
        op for op in lowered.walk() if isinstance(op, PropagatingProject)
    )
    assert projector.mode == "oids"
    assert not any(isinstance(op, PartitionSelector) for op in lowered.walk())


def test_full_scan_lowering(orders_db):
    native, lowered = _assert_equivalent(
        orders_db, "SELECT count(*) FROM orders", "orders"
    )
    # Φ predicate: no Filter needed, all constraints propagate
    projector = next(
        op for op in lowered.walk() if isinstance(op, PropagatingProject)
    )
    assert projector.mode == "oids"


def test_equality_join_lowering_figure_15a(orders_db):
    sql = (
        "SELECT count(*) FROM orders_fk o, date_dim d "
        "WHERE o.date_id = d.date_id AND d.year = 2013 AND d.month = 11"
    )
    native, lowered = _assert_equivalent(orders_db, sql, "orders_fk")
    projector = next(
        op for op in lowered.walk() if isinstance(op, PropagatingProject)
    )
    assert projector.mode == "selection"
    assert projector.key_expr is not None


def test_boundary_exactness(rs_db):
    """Half-open partition bounds: the lowered overlap filter must not
    select the neighbouring partition for a boundary predicate."""
    # partitions are [0,1000), [1000,2000), ...; b < 1000 hits only one
    sql = "SELECT count(*) FROM r WHERE b < 1000"
    native_plan = rs_db.plan(sql)
    lowered_plan = lower_partition_selectors(native_plan)
    native = rs_db.execute_plan(native_plan)
    lowered = rs_db.execute_plan(lowered_plan)
    assert native.partitions_scanned("r") == 1
    assert lowered.partitions_scanned("r") == 1
    # >= 1000 must NOT include the first partition
    sql = "SELECT count(*) FROM r WHERE b >= 1000"
    lowered = rs_db.execute_plan(
        lower_partition_selectors(rs_db.plan(sql))
    )
    assert lowered.partitions_scanned("r") == 9


def test_multilevel_selector_not_lowered(multilevel_db):
    """Unsupported shapes fall back to the native PartitionSelector."""
    plan = multilevel_db.plan(
        "SELECT count(*) FROM orders2 WHERE date_id < 50"
    )
    lowered = lower_partition_selectors(plan)
    assert any(isinstance(op, PartitionSelector) for op in lowered.walk())
    native = multilevel_db.execute_plan(plan)
    relowered = multilevel_db.execute_plan(lowered)
    assert native.rows == relowered.rows


def test_lowered_plans_validate(orders_db):
    plan = orders_db.plan("SELECT count(*) FROM orders WHERE date < '01-01-2013'")
    lowered = lower_partition_selectors(plan)
    lowered.validate()
    assert "partition_constraints" in lowered.explain()
