"""MPP execution: motion routing, segment semantics, end-to-end runs."""

import pytest

from repro import types as t
from repro.catalog import DistributionPolicy, TableSchema
from repro.engine import Database
from repro.executor.context import COORDINATOR_SEGMENT, ExecContext
from repro.executor.iterators import build_iterator
from repro.expr.ast import ColumnRef
from repro.physical.ops import (
    BroadcastMotion,
    GatherMotion,
    RedistributeMotion,
    Scan,
)
from repro.physical.plan import Plan


@pytest.fixture()
def db() -> Database:
    database = Database(num_segments=3)
    database.create_table(
        "t",
        TableSchema.of(("a", t.INT), ("b", t.INT)),
        distribution=DistributionPolicy.hashed("a"),
    )
    database.insert("t", [(i, i % 5) for i in range(30)])
    database.analyze()
    return database


def _buffered_rows(db, motion):
    plan = Plan(motion)
    ctx = ExecContext(db.catalog, db.storage, db.num_segments)
    db.executor._run_motion(motion, ctx)
    return [
        list(build_iterator(motion, segment, ctx))
        for segment in range(db.num_segments)
    ]


def test_gather_routes_to_coordinator(db):
    table = db.catalog.table("t")
    per_segment = _buffered_rows(db, GatherMotion(Scan(table, "t")))
    assert len(per_segment[COORDINATOR_SEGMENT]) == 30
    assert all(not rows for rows in per_segment[1:])


def test_broadcast_copies_everywhere(db):
    table = db.catalog.table("t")
    per_segment = _buffered_rows(db, BroadcastMotion(Scan(table, "t")))
    assert all(len(rows) == 30 for rows in per_segment)


def test_redistribute_partitions_by_hash(db):
    from repro.storage.distribution import segment_for

    table = db.catalog.table("t")
    motion = RedistributeMotion(Scan(table, "t"), [ColumnRef("b", "t")])
    per_segment = _buffered_rows(db, motion)
    assert sum(len(rows) for rows in per_segment) == 30
    for segment, rows in enumerate(per_segment):
        for row in rows:
            assert segment_for(row[1], db.num_segments) == segment


def test_execution_result_metadata(db):
    result = db.sql("SELECT * FROM t WHERE b = 1")
    assert result.column_names == ["a", "b"]
    assert result.rows_scanned == 30  # full scan feeds the filter
    assert len(result) == 6
    assert result.elapsed_seconds >= 0


def test_update_moves_rows_between_segments(db):
    """Updating the distribution key must re-route rows."""
    before = {
        segment: db.storage.store_by_name("t").segment_row_count(segment)
        for segment in range(3)
    }
    result = db.sql("UPDATE t SET a = a + 1000 WHERE b = 0")
    assert result.rows == [(6,)]
    store = db.storage.store_by_name("t")
    assert store.row_count() == 30
    from repro.storage.distribution import segment_for

    for segment in range(3):
        for row in store.scan_segment(segment):
            assert segment_for(row[0], 3) == segment
    rows = dict(store.scan_all())
    assert all(a >= 1000 for a, b in store.scan_all() if b == 0)


def test_update_moves_rows_between_partitions(rs_db):
    """Updating the partition key re-routes through f_T."""
    store = rs_db.storage.store_by_name("r")
    table = rs_db.catalog.table("r")
    first_leaf = table.all_leaf_oids()[0]
    before = store.leaf_row_count(first_leaf)
    rs_db.sql("UPDATE r SET b = 0 WHERE b >= 9000")
    after = store.leaf_row_count(first_leaf)
    assert after > before
    last_leaf = table.all_leaf_oids()[-1]
    assert store.leaf_row_count(last_leaf) == 0
    # restore for other fixtures sharing the module-scoped db
    rs_db.analyze("r")


def test_invalid_plan_rejected_before_execution(db):
    from repro.errors import InvalidPlanError
    from repro.physical.ops import DynamicScan

    # a DynamicScan with no producer must be rejected up front
    from repro.catalog import PartitionScheme, uniform_int_level

    part = db.create_table(
        "p",
        TableSchema.of(("k", t.INT),),
        partition_scheme=PartitionScheme([uniform_int_level("k", 0, 10, 2)]),
    )
    bad = Plan(DynamicScan(part, "p", 1))
    with pytest.raises(InvalidPlanError):
        db.execute_plan(bad)


def test_results_identical_across_segment_counts():
    """Segment count is an execution detail: results must not change."""
    sql = "SELECT b, count(*) AS cnt FROM t WHERE a < 20 GROUP BY b"
    results = []
    for segments in (1, 2, 5):
        database = Database(num_segments=segments)
        database.create_table(
            "t",
            TableSchema.of(("a", t.INT), ("b", t.INT)),
            distribution=DistributionPolicy.hashed("a"),
        )
        database.insert("t", [(i, i % 5) for i in range(30)])
        database.analyze()
        results.append(sorted(database.sql(sql).rows))
    assert results[0] == results[1] == results[2]


def test_in_list_of_date_strings_prunes_and_counts(orders_db):
    """Regression: IN over date-shaped string literals used to crash in
    interval intersection ('str' vs 'date').  It must now execute, return
    the same count as the equivalent OR of equalities, and statically
    prune down to the two partitions holding those months."""
    in_sql = (
        "SELECT count(*) FROM orders "
        "WHERE date IN ('2013-05-15', '2013-06-01')"
    )
    or_sql = (
        "SELECT count(*) FROM orders "
        "WHERE date = '2013-05-15' OR date = '2013-06-01'"
    )
    in_result = orders_db.sql(in_sql)
    assert in_result.rows == orders_db.sql(or_sql).rows
    assert in_result.partitions_scanned("orders") == 2
    # Both optimizers handle it, and a mixed list degrades gracefully:
    # the untranslatable predicate falls back to scanning all partitions
    # (sound) instead of crashing, and the filter still applies.
    assert (
        orders_db.sql(in_sql, optimizer="planner").rows == in_result.rows
    )
    mixed = orders_db.sql(
        "SELECT count(*) FROM orders "
        "WHERE date IN ('2013-05-15', 'not-a-date')"
    )
    only_date = orders_db.sql(
        "SELECT count(*) FROM orders WHERE date = '2013-05-15'"
    )
    assert mixed.rows == only_date.rows
