"""Property-based serial/parallel equivalence.

For random partition predicates and any worker count, a parallel run must
return exactly the serial rows *and* scan exactly the serial partition set
— parallelism may never change what partition elimination selects or what
the query answers.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)

ROWS = 400
DOMAIN = 1000
PARTS = 8


def _build_db() -> Database:
    db = Database(num_segments=4)
    db.create_table(
        "facts",
        TableSchema.of(("id", t.INT), ("key", t.INT), ("val", t.INT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [uniform_int_level("key", 0, DOMAIN, PARTS)]
        ),
    )
    db.create_table(
        "dim",
        TableSchema.of(("key", t.INT), ("grp", t.INT)),
        distribution=DistributionPolicy.hashed("key"),
    )
    rng = random.Random(1234)
    db.insert(
        "facts",
        [(i, rng.randrange(DOMAIN), rng.randrange(50)) for i in range(ROWS)],
    )
    db.insert("dim", [(k, k % 10) for k in range(0, DOMAIN, 7)])
    db.analyze()
    return db


DB = _build_db()

bounds = st.integers(min_value=-50, max_value=DOMAIN + 50)
workers_counts = st.sampled_from([1, 2, 4])


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(lo=bounds, hi=bounds, workers=workers_counts)
def test_static_elimination_is_worker_invariant(lo, hi, workers):
    """Random range predicate on the partition key: identical rows and an
    identical scanned-partition count at every worker setting."""
    sql = f"SELECT id, key, val FROM facts WHERE key >= {lo} AND key <= {hi}"
    serial = DB.sql(sql, analyze=True)
    parallel = DB.sql(sql, analyze=True, workers=workers)
    assert sorted(parallel.rows) == sorted(serial.rows)
    assert (
        parallel.metrics.partitions_scanned()
        == serial.metrics.partitions_scanned()
    )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(grp=st.integers(min_value=0, max_value=9), workers=workers_counts)
def test_join_elimination_is_worker_invariant(grp, workers):
    """Random dimension filter driving join-based partition elimination:
    the multi-slice plan (Motions included) is worker-invariant."""
    sql = (
        "SELECT count(*), sum(f.val) FROM facts f, dim d "
        f"WHERE f.key = d.key AND d.grp = {grp}"
    )
    serial = DB.sql(sql, analyze=True)
    parallel = DB.sql(sql, analyze=True, workers=workers)
    assert parallel.rows == serial.rows
    assert (
        parallel.metrics.partitions_scanned()
        == serial.metrics.partitions_scanned()
    )
