"""Vectorized batch execution: exact equivalence with the row path.

The executor's batch pipeline (``batch_size > 1``) must be externally
indistinguishable from row-at-a-time execution — same rows, same
guardrail firing points (max_rows budget, cooperative cancel, timeout),
same LIMIT semantics — at every batch width.  These tests pin the exact
accounting rules:

* ``tick_rows(n)`` enforces exactly what ``n`` sequential ``tick()``
  calls would (cancel-after-checks thresholds, amortized deadline reads);
* ``charge_rows_batch(n)`` stops at the first crossing charge, so
  ``buffered_rows`` and the typed error message match the row path;
* ``TupleQueue.put_batch`` degrades to per-row puts on bounded queues so
  backpressure errors fire on the same row.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro import types as t
from repro.catalog import DistributionPolicy, PartitionScheme, TableSchema, uniform_int_level
from repro.errors import (
    ChannelError,
    QueryCancelled,
    QueryTimeout,
    ResourceLimitExceeded,
)
from repro.executor.queues import TupleQueue
from repro.resilience import CancelToken, QueryLimits

BATCH_SIZES = [1, 7, 1024]

JOIN_SQL = (
    "SELECT o.order_id, d.year FROM orders_fk o, date_dim d "
    "WHERE o.date_id = d.date_id AND d.year = 2012"
)

QUERIES = [
    "SELECT order_id, amount FROM orders WHERE amount > 50.0",
    JOIN_SQL,
    "SELECT count(*), sum(amount) FROM orders",
    (
        "SELECT d.month, count(*) FROM orders_fk o, date_dim d "
        "WHERE o.date_id = d.date_id GROUP BY d.month"
    ),
    "SELECT order_id FROM orders ORDER BY order_id DESC LIMIT 17",
    "SELECT order_id FROM orders LIMIT 5",
]


# -- guardrail unit level ----------------------------------------------------


def test_tick_rows_matches_sequential_ticks_for_cancel():
    # The threshold checkpoint lands mid-batch: the batch call must fire.
    limits = QueryLimits(cancel=CancelToken(cancel_after_checks=10))
    limits.tick_rows(9)
    with pytest.raises(QueryCancelled):
        limits.tick_rows(4)


def test_tick_rows_zero_and_inactive_are_noops():
    limits = QueryLimits()
    limits.tick_rows(0)
    limits.tick_rows(10**6)  # no guardrail configured: never raises


def test_tick_rows_crosses_deadline_boundary():
    limits = QueryLimits(timeout_seconds=0.0, check_interval=128)
    limits.start()
    # 100 ticks: no boundary crossed yet, so the amortized clock read is
    # skipped exactly as 100 sequential tick() calls would skip it.
    limits.tick_rows(100)
    with pytest.raises(QueryTimeout):
        limits.tick_rows(100)  # crosses tick 128


def test_charge_rows_batch_matches_sequential_buffered_rows():
    sequential = QueryLimits(max_rows=10)
    with pytest.raises(ResourceLimitExceeded) as seq_err:
        for _ in range(15):
            sequential.charge_rows(1)
    batched = QueryLimits(max_rows=10)
    with pytest.raises(ResourceLimitExceeded) as batch_err:
        batched.charge_rows_batch(15)
    assert batched.buffered_rows == sequential.buffered_rows == 11
    assert str(batch_err.value) == str(seq_err.value)


def test_charge_rows_batch_per_row_matches_broadcast_charges():
    # Broadcast charges num_segments per row; the crossing charge is
    # included whole, exactly like the sequential loop.
    sequential = QueryLimits(max_rows=10)
    with pytest.raises(ResourceLimitExceeded):
        for _ in range(5):
            sequential.charge_rows(4)
    batched = QueryLimits(max_rows=10)
    with pytest.raises(ResourceLimitExceeded):
        batched.charge_rows_batch(5, per_row=4)
    assert batched.buffered_rows == sequential.buffered_rows == 12


def test_charge_rows_batch_under_budget_accumulates_exactly():
    limits = QueryLimits(max_rows=100)
    limits.charge_rows_batch(40)
    limits.charge_rows_batch(60)
    assert limits.buffered_rows == 100
    with pytest.raises(ResourceLimitExceeded):
        limits.charge_rows_batch(1)
    assert limits.buffered_rows == 101


# -- queue unit level --------------------------------------------------------


def test_put_batch_drains_identically_to_per_row_puts():
    rows = [(i,) for i in range(10)]
    per_row = TupleQueue()
    for row in rows:
        per_row.put(row, producer=1)
    per_row.close()
    batched = TupleQueue()
    batched.put_batch(rows[:4], producer=1)
    batched.put_batch(rows[4:], producer=1)
    batched.put_batch([], producer=1)
    batched.close()
    assert batched.rows() == per_row.rows()


def test_put_batch_interleaves_producers_like_per_row_puts():
    per_row = TupleQueue()
    batched = TupleQueue()
    for producer in (2, 0, 1):
        run = [(producer, i) for i in range(3)]
        for row in run:
            per_row.put(row, producer=producer)
        batched.put_batch(run, producer=producer)
    per_row.close()
    batched.close()
    # the deterministic drain merges runs in producer-segment order
    assert batched.rows() == per_row.rows()


def test_put_batch_bounded_raises_on_the_same_row():
    bounded = TupleQueue(capacity=3)
    with pytest.raises(ChannelError):
        bounded.put_batch([(i,) for i in range(5)])
    assert len(bounded) == 3  # rows before the overflowing one were kept


def test_put_batch_to_closed_queue_raises():
    queue = TupleQueue()
    queue.close()
    with pytest.raises(ChannelError):
        queue.put_batch([(1,)])


# -- engine level: result equivalence ---------------------------------------


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("sql", QUERIES)
def test_batch_results_match_row_path(orders_db, sql, batch_size):
    reference = orders_db.sql(sql, batch_size=1)
    batched = orders_db.sql(sql, batch_size=batch_size)
    assert sorted(batched.rows, key=repr) == sorted(reference.rows, key=repr)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batch_partition_elimination_is_batch_invariant(orders_db, batch_size):
    sql = JOIN_SQL
    reference = orders_db.sql(sql, analyze=True, batch_size=1)
    batched = orders_db.sql(sql, analyze=True, batch_size=batch_size)
    assert (
        batched.metrics.partitions_scanned()
        == reference.metrics.partitions_scanned()
    )
    assert (
        batched.metrics.total_rows_scanned
        == reference.metrics.total_rows_scanned
    )


def test_metrics_record_the_batch_size(orders_db):
    result = orders_db.sql(
        "SELECT order_id FROM orders", analyze=True, batch_size=64
    )
    assert result.metrics.parallel_stats()["batch_size"] == 64


# -- engine level: guardrails fire identically -------------------------------


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_max_rows_fires_identically_at_any_batch_size(orders_db, batch_size):
    with pytest.raises(ResourceLimitExceeded) as row_err:
        orders_db.sql(JOIN_SQL, max_rows=5, batch_size=1)
    with pytest.raises(ResourceLimitExceeded) as batch_err:
        orders_db.sql(JOIN_SQL, max_rows=5, batch_size=batch_size)
    assert str(batch_err.value) == str(row_err.value)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_cancel_fires_at_any_batch_size(orders_db, batch_size):
    with pytest.raises(QueryCancelled):
        orders_db.sql(
            JOIN_SQL,
            batch_size=batch_size,
            cancel=CancelToken(cancel_after_checks=10),
        )


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_timeout_fires_at_any_batch_size(orders_db, batch_size):
    with pytest.raises(QueryTimeout):
        orders_db.sql(JOIN_SQL, timeout=0.0, batch_size=batch_size)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_max_rows_budget_boundary_is_batch_invariant(orders_db, batch_size):
    # 2400 rows buffered at the gather: passes a 2400-row budget, fails
    # 2399, at every batch width (see test_max_rows_counts_motion_buffers).
    result = orders_db.sql(
        "SELECT order_id FROM orders", max_rows=2400, batch_size=batch_size
    )
    assert len(result.rows) == 2400
    with pytest.raises(ResourceLimitExceeded):
        orders_db.sql(
            "SELECT order_id FROM orders", max_rows=2399, batch_size=batch_size
        )


# -- configuration surface ---------------------------------------------------


def test_invalid_batch_size_rejected():
    with pytest.raises(ValueError):
        Database(num_segments=2, batch_size=0)
    db = Database(num_segments=2)
    db.create_table("t", TableSchema.of(("a", t.INT)))
    db.insert("t", [(1,)])
    with pytest.raises(ValueError):
        db.sql("SELECT a FROM t", batch_size=0)


def test_database_batch_size_default_is_overridable():
    db = Database(num_segments=2, batch_size=1)
    db.create_table(
        "t",
        TableSchema.of(("a", t.INT), ("k", t.INT)),
        distribution=DistributionPolicy.hashed("a"),
        partition_scheme=PartitionScheme([uniform_int_level("k", 0, 100, 4)]),
    )
    db.insert("t", [(i, i % 100) for i in range(300)])
    row_mode = db.sql("SELECT a FROM t WHERE k < 50", analyze=True)
    assert row_mode.metrics.parallel_stats()["batch_size"] == 1
    batched = db.sql("SELECT a FROM t WHERE k < 50", batch_size=32)
    assert sorted(batched.rows) == sorted(row_mode.rows)


# -- storage batch scans -----------------------------------------------------


def test_scan_segment_batches_matches_scan_segment(orders_db):
    storage = orders_db.storage
    root = orders_db.catalog.table("orders").oid
    for segment in range(orders_db.num_segments):
        rows = list(storage.scan_table(segment, root))
        batches = list(
            storage.scan_table_batches(segment, root, batch_size=64)
        )
        flat = [row for batch in batches for row in batch]
        assert flat == rows
        assert all(len(batch) <= 64 for batch in batches)
        assert all(batch for batch in batches)  # never yields empties
