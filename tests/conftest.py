"""Shared fixtures: small, deterministic databases used across suites."""

from __future__ import annotations

import datetime
import random

import pytest

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    list_level,
    monthly_range_level,
    uniform_int_level,
)

ORDERS_START = datetime.date(2012, 1, 1)


def approx_rows(left, right, rel=1e-9):
    """Order-insensitive row-set comparison with float tolerance.

    Distributed execution sums floats in a different order than a serial
    reference, so exact equality is too strict for aggregates.
    """
    left_sorted = sorted(left, key=repr)
    right_sorted = sorted(right, key=repr)
    if len(left_sorted) != len(right_sorted):
        return False
    for a, b in zip(left_sorted, right_sorted):
        if len(a) != len(b):
            return False
        for x, y in zip(a, b):
            if isinstance(x, float) and isinstance(y, float):
                if x != pytest.approx(y, rel=rel, abs=1e-9):
                    return False
            elif x != y:
                return False
    return True


@pytest.fixture(scope="module")
def orders_db() -> Database:
    """The paper's Figure 1 scenario: ``orders`` with 24 monthly partitions
    plus a ``date_dim`` star-schema variant (Figure 3)."""
    db = Database(num_segments=4)
    db.create_table(
        "orders",
        TableSchema.of(
            ("order_id", t.INT), ("amount", t.FLOAT), ("date", t.DATE)
        ),
        distribution=DistributionPolicy.hashed("order_id"),
        partition_scheme=PartitionScheme(
            [monthly_range_level("date", ORDERS_START, 24)]
        ),
    )
    db.create_table(
        "date_dim",
        TableSchema.of(
            ("date_id", t.INT),
            ("year", t.INT),
            ("month", t.INT),
            ("day_of_week", t.INT),
        ),
        distribution=DistributionPolicy.hashed("date_id"),
    )
    db.create_table(
        "orders_fk",
        TableSchema.of(
            ("order_id", t.INT), ("amount", t.FLOAT), ("date_id", t.INT)
        ),
        distribution=DistributionPolicy.hashed("order_id"),
        partition_scheme=PartitionScheme(
            [uniform_int_level("date_id", 0, 730, 24)]
        ),
    )
    rng = random.Random(42)
    rows = []
    fk_rows = []
    for i in range(2400):
        offset = rng.randrange(729)
        rows.append(
            (i, round(rng.uniform(1, 100), 2), ORDERS_START + datetime.timedelta(days=offset))
        )
        fk_rows.append((i, round(rng.uniform(1, 100), 2), offset))
    db.insert("orders", rows)
    db.insert("orders_fk", fk_rows)
    dim = []
    for offset in range(730):
        day = ORDERS_START + datetime.timedelta(days=offset)
        dim.append((offset, day.year, day.month, day.isoweekday()))
    db.insert("date_dim", dim)
    db.analyze()
    return db


@pytest.fixture(scope="module")
def multilevel_db() -> Database:
    """Figure 9: two-level partitioning by date range and region."""
    db = Database(num_segments=2)
    db.create_table(
        "orders2",
        TableSchema.of(
            ("order_id", t.INT),
            ("amount", t.FLOAT),
            ("date_id", t.INT),
            ("region", t.TEXT),
        ),
        distribution=DistributionPolicy.hashed("order_id"),
        partition_scheme=PartitionScheme(
            [
                uniform_int_level("date_id", 0, 240, 24),
                list_level(
                    "region",
                    [("r1", ["Region 1"]), ("r2", ["Region 2"])],
                ),
            ]
        ),
    )
    rng = random.Random(7)
    db.insert(
        "orders2",
        [
            (
                i,
                round(rng.uniform(1, 50), 2),
                rng.randrange(240),
                f"Region {rng.randrange(1, 3)}",
            )
            for i in range(1200)
        ],
    )
    db.analyze()
    return db


@pytest.fixture(scope="module")
def rs_db() -> Database:
    """Section 4.4.2's synthetic R/S pair, 10 partitions each."""
    from repro.workloads.synthetic import build_rs_database

    return build_rs_database(num_parts=10, rows_per_table=600)
