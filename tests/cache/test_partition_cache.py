"""The partition-selection cache: entries, LRU/byte bounds, invalidation,
and the engine-level selector bypass."""

from __future__ import annotations

from repro import Database
from repro import types as t
from repro.cache import (
    PartitionSelectionCache,
    SelectionEntry,
    statement_key,
)
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)


def _key(i: int):
    return statement_key(f"SELECT * FROM t WHERE a = {i}")


def _entry(i: int, oids=(101, 102), scoped_oid=50, volatile=()):
    return SelectionEntry(
        _key(i),
        selections={7: {0: tuple(oids), 1: tuple(oids)}},
        scoped={scoped_oid: frozenset(oids)},
        volatile=frozenset(volatile),
    )


# ---------------------------------------------------------------------------
# SelectionEntry semantics
# ---------------------------------------------------------------------------


def test_entry_replays_per_selector_instance():
    entry = _entry(1, oids=(101, 103))
    assert entry.oids(7, 0) == (101, 103)
    assert entry.oids(7, 1) == (101, 103)
    assert entry.oids(7, 2) is None  # unknown segment: evaluate normally
    assert entry.oids(9, 0) is None  # unknown selector: evaluate normally
    assert entry.tables() == frozenset({50})


def test_scoped_invalidation_is_partition_intersecting():
    entry = _entry(1, oids=(101, 102), scoped_oid=50)
    # DML into a cached partition stales the entry...
    assert entry.stale_after(50, frozenset({102}))
    # ...DML into an unselected partition of the same table does not...
    assert not entry.stale_after(50, frozenset({104}))
    # ...whole-table events (truncate, drop) always stale it...
    assert entry.stale_after(50, None)
    # ...and other tables never do.
    assert not entry.stale_after(60, frozenset({102}))


def test_volatile_tables_stale_unconditionally():
    entry = _entry(1, volatile=(60,))
    assert entry.stale_after(60, frozenset({999}))
    assert entry.stale_after(60, None)


def test_entry_size_counts_oids():
    small = _entry(1, oids=(101,))
    big = _entry(2, oids=tuple(range(100, 164)))
    assert big.size_bytes > small.size_bytes


# ---------------------------------------------------------------------------
# LRU + byte bounds
# ---------------------------------------------------------------------------


def test_lru_entry_bound_evicts_oldest():
    cache = PartitionSelectionCache(max_entries=2, max_bytes=1 << 20)
    cache.store(_entry(1))
    cache.store(_entry(2))
    cache.store(_entry(3))
    assert len(cache) == 2
    assert cache.peek(_key(1)) is None  # oldest evicted
    assert cache.peek(_key(3)) is not None
    assert cache.stats.evictions == 1


def test_lru_get_refreshes_recency():
    cache = PartitionSelectionCache(max_entries=2, max_bytes=1 << 20)
    cache.store(_entry(1))
    cache.store(_entry(2))
    assert cache.get(_key(1)) is not None  # 1 becomes the young entry
    cache.store(_entry(3))
    assert cache.peek(_key(1)) is not None
    assert cache.peek(_key(2)) is None  # 2 was the LRU victim


def test_byte_bound_evicts_until_it_fits():
    one = _entry(1)
    cache = PartitionSelectionCache(
        max_entries=100, max_bytes=one.size_bytes * 2 + 1
    )
    cache.store(_entry(1))
    cache.store(_entry(2))
    cache.store(_entry(3))
    assert len(cache) == 2
    assert cache.bytes_used <= cache.max_bytes


def test_oversized_entry_does_not_wedge_the_cache():
    tiny = PartitionSelectionCache(max_entries=100, max_bytes=64)
    tiny.store(_entry(1, oids=tuple(range(100, 200))))
    assert len(tiny) == 0  # refused by eviction, not stored forever
    assert tiny.bytes_used == 0


def test_restore_same_key_replaces_without_leaking_bytes():
    cache = PartitionSelectionCache(max_entries=4, max_bytes=1 << 20)
    cache.store(_entry(1, oids=tuple(range(100, 150))))
    cache.store(_entry(1, oids=(101,)))
    assert len(cache) == 1
    assert cache.bytes_used == _entry(1, oids=(101,)).size_bytes


def test_invalidate_drops_only_matching_entries():
    cache = PartitionSelectionCache(max_entries=10, max_bytes=1 << 20)
    cache.store(_entry(1, oids=(101,), scoped_oid=50))
    cache.store(_entry(2, oids=(102,), scoped_oid=50))
    cache.store(_entry(3, oids=(101,), scoped_oid=60))
    dropped = cache.invalidate(50, frozenset({101}))
    assert dropped == 1
    assert cache.peek(_key(1)) is None
    assert cache.peek(_key(2)) is not None
    assert cache.peek(_key(3)) is not None
    assert cache.stats.invalidations == 1


def test_hit_miss_counters():
    cache = PartitionSelectionCache(max_entries=4, max_bytes=1 << 20)
    cache.store(_entry(1))
    assert cache.get(_key(1)) is not None
    assert cache.get(_key(2)) is None
    snap = cache.to_dict()
    assert snap["hits"] == 1 and snap["misses"] == 1
    assert snap["hit_rate"] == 0.5
    assert snap["stores"] == 1


# ---------------------------------------------------------------------------
# engine-level: the selector bypass end to end
# ---------------------------------------------------------------------------

DOMAIN, PARTS = 100, 4


def _build_db() -> Database:
    db = Database(num_segments=2, cache="partitions")
    db.create_table(
        "facts",
        TableSchema.of(("id", t.INT), ("key", t.INT), ("val", t.INT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [uniform_int_level("key", 0, DOMAIN, PARTS)]
        ),
    )
    db.create_table(
        "dim",
        TableSchema.of(("key", t.INT), ("grp", t.INT)),
        distribution=DistributionPolicy.hashed("key"),
    )
    db.insert("facts", [(i, i % DOMAIN, i) for i in range(200)])
    db.insert("dim", [(k, k % 5) for k in range(DOMAIN)])
    db.analyze()
    return db


HOT = "SELECT count(*), sum(val) FROM facts WHERE key >= 0 AND key <= 20"


def test_repeat_query_replays_selection():
    db = _build_db()
    first = db.sql(HOT, analyze=True)
    second = db.sql(HOT, analyze=True)
    assert first.metrics.cache_summary["selection"] == "miss"
    assert first.metrics.cache_summary["stored"] is True
    assert second.metrics.cache_summary["selection"] == "hit"
    assert second.metrics.cache_summary["selectors_served"] > 0
    assert second.metrics.cache_summary["selectors_evaluated"] == 0
    # the replayed selection answers identically and scans the same leaves
    assert second.rows == first.rows
    assert (
        second.metrics.partitions_scanned()
        == first.metrics.partitions_scanned()
    )


def test_dml_into_selected_partition_invalidates():
    db = _build_db()
    db.sql(HOT)
    assert db.sql(HOT).metrics.cache_summary["selection"] == "hit"
    db.insert("facts", [(9001, 10, 5)])  # key=10 is inside the cached range
    after = db.sql(HOT)
    assert after.metrics.cache_summary["selection"] == "miss"
    # the re-run sees the inserted row: keys 0..20 appear twice in the
    # seed data (i and i+100), plus the one just inserted
    assert after.rows[0][0] == 21 * 2 + 1


def test_dml_outside_selection_preserves_entry():
    db = _build_db()
    baseline = db.sql(HOT)
    db.insert("facts", [(9002, 90, 5)])  # partition outside [0, 20]
    after = db.sql(HOT)
    assert after.metrics.cache_summary["selection"] == "hit"
    assert after.rows == baseline.rows


def test_dml_on_volatile_join_side_invalidates():
    db = _build_db()
    sql = (
        "SELECT count(*) FROM facts f, dim d "
        "WHERE f.key = d.key AND d.grp = 3"
    )
    db.sql(sql)
    assert db.sql(sql).metrics.cache_summary["selection"] == "hit"
    # dim's rows drive the dynamic selection: any dim DML drops the entry
    db.insert("dim", [(1000, 3)])
    assert db.sql(sql).metrics.cache_summary["selection"] == "miss"


def test_lowered_plans_are_never_cached():
    db = _build_db()
    first = db.sql(HOT, lower_selectors=True)
    second = db.sql(HOT, lower_selectors=True)
    assert first.metrics.cache_summary["stored"] is False
    assert second.metrics.cache_summary["selection"] == "miss"
    # and the lowered key never collides with the normal-path entry
    db.sql(HOT)
    assert db.sql(HOT, lower_selectors=True).metrics.cache_summary[
        "selection"
    ] == "miss"


def test_different_literals_get_distinct_entries():
    db = _build_db()
    a = "SELECT count(*) FROM facts WHERE key >= 0 AND key <= 20"
    b = "SELECT count(*) FROM facts WHERE key >= 80 AND key <= 99"
    db.sql(a)
    db.sql(b)
    assert len(db.cache.partitions) == 2
    ra, rb = db.sql(a), db.sql(b)
    assert ra.metrics.cache_summary["selection"] == "hit"
    assert rb.metrics.cache_summary["selection"] == "hit"
    assert ra.rows != rb.rows


def test_cache_off_mode_bypasses_everything():
    db = _build_db()
    result = db.sql(HOT, cache="off")
    assert result.metrics.cache_summary is None
    assert len(db.cache.partitions) == 0


def test_explain_analyze_shows_cache_line():
    db = _build_db()
    db.sql(HOT)
    text = db.sql(HOT, analyze=True).explain_analyze()
    assert "Cache: mode=partitions, selection hit" in text
