"""The result cache: footprint rules and engine-level ``cache='results'``
behaviour (hits skip execution entirely; DML drops exactly the entries it
could have changed)."""

from __future__ import annotations

from repro import Database
from repro import types as t
from repro.cache import ResultCache, ResultEntry, statement_key
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)


def _key(i: int):
    return statement_key(f"SELECT * FROM t WHERE a = {i}")


def _entry(i: int, footprint):
    return ResultEntry(
        _key(i), [(1, "a"), (2, "b")], ["n", "s"], footprint
    )


# ---------------------------------------------------------------------------
# ResultEntry footprint semantics
# ---------------------------------------------------------------------------


def test_rows_are_frozen():
    entry = _entry(1, {50: frozenset({101})})
    assert entry.rows == ((1, "a"), (2, "b"))
    assert isinstance(entry.rows, tuple)
    assert all(isinstance(row, tuple) for row in entry.rows)
    assert entry.column_names == ("n", "s")


def test_partitioned_footprint_intersects():
    entry = _entry(1, {50: frozenset({101, 102})})
    assert entry.stale_after(50, frozenset({102}))
    assert not entry.stale_after(50, frozenset({103}))
    assert entry.stale_after(50, None)  # truncate/drop
    assert not entry.stale_after(60, frozenset({102}))  # other table


def test_whole_table_footprint_is_always_sensitive():
    entry = _entry(1, {50: None})
    assert entry.stale_after(50, frozenset({999}))
    assert entry.stale_after(50, None)


def test_multi_table_footprint():
    entry = _entry(1, {50: frozenset({101}), 60: None})
    assert entry.stale_after(60, frozenset({7}))
    assert not entry.stale_after(50, frozenset({7}))


def test_result_cache_invalidate_counts():
    cache = ResultCache(max_entries=10, max_bytes=1 << 20)
    cache.store(_entry(1, {50: frozenset({101})}))
    cache.store(_entry(2, {50: frozenset({102})}))
    assert cache.invalidate(50, frozenset({101})) == 1
    assert len(cache) == 1
    assert cache.peek(_key(2)) is not None


# ---------------------------------------------------------------------------
# engine-level behaviour
# ---------------------------------------------------------------------------

DOMAIN, PARTS = 100, 4


def _build_db() -> Database:
    db = Database(num_segments=2, cache="results")
    db.create_table(
        "facts",
        TableSchema.of(("id", t.INT), ("key", t.INT), ("val", t.INT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [uniform_int_level("key", 0, DOMAIN, PARTS)]
        ),
    )
    db.create_table(
        "dim",
        TableSchema.of(("key", t.INT), ("grp", t.INT)),
        distribution=DistributionPolicy.hashed("key"),
    )
    db.insert("facts", [(i, i % DOMAIN, i) for i in range(200)])
    db.insert("dim", [(k, k % 5) for k in range(DOMAIN)])
    db.analyze()
    return db


HOT = "SELECT count(*), sum(val) FROM facts WHERE key >= 0 AND key <= 20"


def test_result_hit_serves_identical_rows_without_executing():
    db = _build_db()
    first = db.sql(HOT)
    assert first.metrics.cache_summary["result"] == "miss"
    assert first.metrics.cache_summary["stored"] is True
    second = db.sql(HOT)
    assert second.metrics.cache_summary["result"] == "hit"
    assert second.rows == first.rows
    assert second.column_names == first.column_names
    # a hit never executes: no elapsed time, no partitions opened
    assert second.elapsed_seconds == 0.0
    assert second.metrics.partitions_scanned() == 0


def test_dml_into_footprint_invalidates_result():
    db = _build_db()
    first = db.sql(HOT)
    db.insert("facts", [(9001, 10, 7)])  # inside the scanned range
    after = db.sql(HOT)
    assert after.metrics.cache_summary["result"] == "miss"
    assert after.rows[0][0] == first.rows[0][0] + 1
    # and the refreshed entry serves the new answer
    assert db.sql(HOT).rows == after.rows


def test_dml_outside_footprint_preserves_result():
    db = _build_db()
    db.sql(HOT)
    db.insert("facts", [(9002, 90, 7)])  # partition outside [0, 20]
    assert db.sql(HOT).metrics.cache_summary["result"] == "hit"


def test_unpartitioned_scan_is_whole_table_sensitive():
    db = _build_db()
    sql = "SELECT count(*) FROM dim"
    db.sql(sql)
    assert db.sql(sql).metrics.cache_summary["result"] == "hit"
    db.insert("dim", [(5000, 1)])
    after = db.sql(sql)
    assert after.metrics.cache_summary["result"] == "miss"
    assert after.rows[0][0] == DOMAIN + 1


def test_join_footprint_covers_both_sides():
    db = _build_db()
    sql = (
        "SELECT count(*) FROM facts f, dim d "
        "WHERE f.key = d.key AND d.grp = 3"
    )
    db.sql(sql)
    assert db.sql(sql).metrics.cache_summary["result"] == "hit"
    db.insert("dim", [(1001, 3)])  # dim side: whole-table sensitivity
    assert db.sql(sql).metrics.cache_summary["result"] == "miss"


def test_dml_statements_are_never_result_cached():
    db = _build_db()
    before = len(db.cache.results)
    db.sql("INSERT INTO facts SELECT id, key, val FROM facts WHERE key = 5")
    assert len(db.cache.results) == before


def test_served_rows_are_fresh_copies():
    db = _build_db()
    db.sql(HOT)
    served = db.sql(HOT)
    served.rows.append(("tampered",))
    again = db.sql(HOT)
    assert again.metrics.cache_summary["result"] == "hit"
    assert ("tampered",) not in again.rows


def test_results_mode_also_populates_selection_cache():
    """'results' is a superset of 'partitions': after a result entry is
    invalidated, the surviving selection entry still short-circuits the
    selectors on the recomputation."""
    db = _build_db()
    db.sql(HOT)
    db.insert("facts", [(9003, 90, 7)])  # outside both footprints
    db.cache.results.clear()  # force a result miss, keep selections
    recompute = db.sql(HOT)
    assert recompute.metrics.cache_summary["result"] == "miss"
    assert recompute.metrics.cache_summary["selection"] == "hit"
