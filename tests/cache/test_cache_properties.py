"""Property-based cached/uncached equivalence.

The cache may never change an answer.  For random partition predicates,
random DML interleavings, and any worker count, a cached run must return
byte-identical rows to a cache-off run at the same data state — and a
selection-cache run must scan the identical partition set (replaying OIDs
must not widen or narrow elimination).

Extends the serial/parallel suite in
``tests/executor/test_parallel_properties.py``: same schema, same idiom,
with the cache (and its DML invalidation) as the variable under test.
Module state is shared across examples on purpose — entries persist,
invalidations accumulate — which is exactly the regime a long-lived cache
lives in.
"""

from __future__ import annotations

import itertools
import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)

ROWS = 400
DOMAIN = 1000
PARTS = 8


def _build_db() -> Database:
    db = Database(num_segments=4)
    db.create_table(
        "facts",
        TableSchema.of(("id", t.INT), ("key", t.INT), ("val", t.INT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [uniform_int_level("key", 0, DOMAIN, PARTS)]
        ),
    )
    db.create_table(
        "dim",
        TableSchema.of(("key", t.INT), ("grp", t.INT)),
        distribution=DistributionPolicy.hashed("key"),
    )
    rng = random.Random(1234)
    db.insert(
        "facts",
        [(i, rng.randrange(DOMAIN), rng.randrange(50)) for i in range(ROWS)],
    )
    db.insert("dim", [(k, k % 10) for k in range(0, DOMAIN, 7)])
    db.analyze()
    return db


DB = _build_db()
_IDS = itertools.count(10_000)  # fresh ids for interleaved inserts

bounds = st.integers(min_value=-50, max_value=DOMAIN + 50)
keys = st.integers(min_value=0, max_value=DOMAIN - 1)
workers_counts = st.sampled_from([1, 2, 4])
modes = st.sampled_from(["partitions", "results"])


def _assert_equivalent(sql: str, mode: str, workers: int) -> None:
    """Cached run ≡ cache-off run at the current data state: identical
    rows, and (when the cached run actually executed) identical
    partitions_scanned."""
    cached = DB.sql(sql, analyze=True, cache=mode, workers=workers)
    plain = DB.sql(sql, analyze=True, cache="off")
    assert cached.rows == plain.rows
    summary = cached.metrics.cache_summary
    assert summary is not None and summary["mode"] == mode
    if summary.get("result") != "hit":
        # replayed selections must scan exactly what evaluation scans
        assert (
            cached.metrics.partitions_scanned()
            == plain.metrics.partitions_scanned()
        )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(lo=bounds, hi=bounds, workers=workers_counts, mode=modes)
def test_random_range_predicates_are_cache_invariant(lo, hi, workers, mode):
    """Random range predicate on the partition key: warm then repeat —
    both the storing run and the replaying run answer exactly like
    cache-off, at every worker setting."""
    sql = (
        "SELECT id, key, val FROM facts "
        f"WHERE key >= {lo} AND key <= {hi}"
    )
    _assert_equivalent(sql, mode, workers)  # cold (stores)
    _assert_equivalent(sql, mode, workers)  # warm (replays)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    in_keys=st.lists(keys, min_size=1, max_size=6, unique=True),
    dml_key=keys,
    workers=workers_counts,
    mode=modes,
)
def test_dml_interleaving_is_cache_invariant(in_keys, dml_key, workers, mode):
    """Warm the cache, mutate a random partition (which may or may not
    intersect the cached OID set), and re-compare: the cached run must
    reflect the post-DML state exactly — invalidation can be a hit or a
    miss, but never a stale answer."""
    in_list = ", ".join(str(k) for k in sorted(in_keys))
    sql = (
        "SELECT count(*), sum(val), min(id), max(id) FROM facts "
        f"WHERE key IN ({in_list})"
    )
    _assert_equivalent(sql, mode, workers)  # warm at the current state
    DB.insert("facts", [(next(_IDS), dml_key, 7)])
    _assert_equivalent(sql, mode, workers)  # post-DML: no stale replay
    _assert_equivalent(sql, mode, workers)  # and the refreshed entry holds


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    grp=st.integers(min_value=0, max_value=9),
    dim_key=keys,
    workers=workers_counts,
)
def test_join_elimination_with_dim_dml_is_cache_invariant(
    grp, dim_key, workers
):
    """Join-driven (dynamic) partition elimination: the dimension side's
    rows decide the selection, so dim DML must drop the entry — replaying
    a pre-DML OID set would scan the wrong partitions."""
    sql = (
        "SELECT count(*), sum(f.val) FROM facts f, dim d "
        f"WHERE f.key = d.key AND d.grp = {grp}"
    )
    _assert_equivalent(sql, "partitions", workers)
    DB.insert("dim", [(dim_key, grp)])
    _assert_equivalent(sql, "partitions", workers)
