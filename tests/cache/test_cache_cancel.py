"""Cache-harvest safety under cancellation and timeout.

A query killed mid-execution (QueryCancelled / QueryTimeout) has
partially-filled partition-OID channels; harvesting them into the
selection cache would poison later replays with incomplete OID sets.
The executor aborts the cache session on *any* exception, and the
session's abort flag makes harvest/commit structural no-ops — these
tests interleave cancellation at every checkpoint depth to prove no
partial state is ever stored.
"""

from __future__ import annotations

import datetime
import random

import pytest

from repro import Database
from repro import types as t
from repro.cache.manager import CacheManager, CacheSession
from repro.cache.keys import statement_key
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    monthly_range_level,
)
from repro.errors import QueryCancelled, QueryTimeout
from repro.resilience import CancelToken

QUERY = (
    "SELECT avg(amount) FROM orders "
    "WHERE date BETWEEN '03-01-2012' AND '08-31-2012'"
)


def _db() -> Database:
    db = Database(num_segments=4)
    db.create_table(
        "orders",
        TableSchema.of(
            ("order_id", t.INT), ("amount", t.FLOAT), ("date", t.DATE)
        ),
        distribution=DistributionPolicy.hashed("order_id"),
        partition_scheme=PartitionScheme(
            [monthly_range_level("date", datetime.date(2012, 1, 1), 12)]
        ),
    )
    rng = random.Random(5)
    start = datetime.date(2012, 1, 1)
    db.insert(
        "orders",
        [
            (
                i,
                round(rng.uniform(1, 100), 2),
                start + datetime.timedelta(days=rng.randrange(365)),
            )
            for i in range(800)
        ],
    )
    db.analyze()
    return db


def _cache_totals(db: Database) -> dict:
    snapshot = db.cache.stats_dict()
    return {
        "entries": (
            snapshot["partitions"]["entries"] + snapshot["results"]["entries"]
        ),
        "stores": (
            snapshot["partitions"]["stores"] + snapshot["results"]["stores"]
        ),
    }


def test_cancel_at_every_checkpoint_depth_never_stores_partial_state():
    """Sweep the deterministic cancel hook across checkpoint depths: no
    matter where mid-execution the query dies, the selection cache stays
    empty."""
    db = _db()
    cancelled = 0
    for checks in range(1, 40, 2):
        token = CancelToken(cancel_after_checks=checks)
        try:
            db.sql(QUERY, cache="partitions", cancel=token)
        except QueryCancelled:
            cancelled += 1
        totals = _cache_totals(db)
        assert totals["entries"] == 0, (
            f"cancel after {checks} checks leaked a cache entry"
        )
        assert totals["stores"] == 0
    assert cancelled > 0, "the sweep never actually cancelled a query"
    # sanity: without a cancel the same query does get harvested
    db.sql(QUERY, cache="partitions")
    assert _cache_totals(db)["stores"] == 1


def test_timeout_mid_execution_never_stores_partial_state():
    db = _db()
    db.storage.io_latency_s = 0.002
    with pytest.raises(QueryTimeout):
        db.sql(QUERY, cache="partitions", timeout=0.0)
    totals = _cache_totals(db)
    assert totals["entries"] == 0
    assert totals["stores"] == 0


def test_cancelled_result_mode_query_never_stores_rows():
    db = _db()
    with pytest.raises(QueryCancelled):
        db.sql(
            QUERY, cache="results", cancel=CancelToken(cancel_after_checks=3)
        )
    totals = _cache_totals(db)
    assert totals["entries"] == 0
    assert totals["stores"] == 0
    # a clean run afterwards serves and stores normally
    first = db.sql(QUERY, cache="results")
    second = db.sql(QUERY, cache="results")
    assert first.rows == second.rows
    assert second.metrics.to_dict()["cache"]["result"] == "hit"


def test_aborted_session_refuses_harvest_and_commit_unit():
    manager = CacheManager()
    session = CacheSession(
        manager, statement_key("SELECT 1"), mode="results"
    )
    session.abort()
    assert session.aborted
    # structural no-ops after abort, whatever the arguments
    assert session.harvest(None, {}) is False
    assert session.commit_result([], [], {1: None}) is False
    snapshot = manager.stats_dict()
    assert snapshot["partitions"]["stores"] == 0
    assert snapshot["results"]["stores"] == 0


def test_abort_is_idempotent_and_sticky():
    manager = CacheManager()
    session = CacheSession(
        manager, statement_key("SELECT 2"), mode="partitions"
    )
    session.abort()
    session.abort()
    assert session.aborted
    assert session.harvest(None, {}) is False
