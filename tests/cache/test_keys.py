"""The cache-key contract: fingerprint + normalized literal vector.

``fingerprint()`` deliberately erases literal values so statement *shapes*
aggregate in ``\\stats``.  A cache reusing OID sets across different
constants would be unsound (the PR 2 seed-bug shape: same IN-list shape,
different dates, different partitions).  These tests pin the contract that
:class:`~repro.cache.StatementKey` adds back everything the fingerprint
erased — literal values, parameter values, and the plan-shaping options.
"""

from __future__ import annotations

from repro.cache import StatementKey, normalized_literals, statement_key
from repro.obs import fingerprint


# ---------------------------------------------------------------------------
# sharing: formatting never splits a key
# ---------------------------------------------------------------------------


def test_same_statement_same_key():
    q = "SELECT count(*) FROM orders WHERE date = '05-15-2013'"
    assert statement_key(q) == statement_key(q)


def test_whitespace_and_case_do_not_split_keys():
    a = statement_key("SELECT * FROM t WHERE a = 42")
    b = statement_key("select *   from T\nwhere A=42")
    assert a == b


# ---------------------------------------------------------------------------
# distinctness: anything that can change the answer splits the key
# ---------------------------------------------------------------------------


def test_number_literal_value_splits_key():
    a = statement_key("SELECT * FROM t WHERE a = 42")
    b = statement_key("SELECT * FROM t WHERE a = 99")
    assert a.fingerprint == b.fingerprint  # same shape for \stats...
    assert a != b  # ...but never the same cache entry


def test_date_literal_in_list_splits_key():
    """The PR 2 seed-bug shape: identical IN-list fingerprints whose date
    values select different partition OID sets."""
    a = "SELECT count(*) FROM orders WHERE date IN ('05-15-2013', '06-15-2013')"
    b = "SELECT count(*) FROM orders WHERE date IN ('01-01-2012', '02-01-2012')"
    assert fingerprint(a) == fingerprint(b)
    assert statement_key(a) != statement_key(b)


def test_in_list_arity_splits_key():
    a = "SELECT 1 FROM orders WHERE date IN ('05-15-2013')"
    b = "SELECT 1 FROM orders WHERE date IN ('05-15-2013', '06-15-2013')"
    assert statement_key(a) != statement_key(b)


def test_param_values_split_key():
    q = "SELECT * FROM t WHERE a = $1"
    assert statement_key(q, params=[1]) != statement_key(q, params=[2])


def test_param_types_split_key():
    """``1`` (int), ``1.0`` (float) and ``'1'`` (str) never collide."""
    q = "SELECT * FROM t WHERE a = $1"
    keys = {
        statement_key(q, params=[1]),
        statement_key(q, params=[1.0]),
        statement_key(q, params=["1"]),
    }
    assert len(keys) == 3


def test_string_vs_number_literal_never_collide():
    a = statement_key("SELECT * FROM t WHERE a = '42'")
    b = statement_key("SELECT * FROM t WHERE a = 42")
    assert a != b


def test_plan_shaping_options_split_key():
    q = "SELECT count(*) FROM orders WHERE date = '05-15-2013'"
    base = statement_key(q)
    assert statement_key(q, optimizer="planner") != base
    assert statement_key(q, lowered=True) != base


# ---------------------------------------------------------------------------
# the literal vector itself
# ---------------------------------------------------------------------------


def test_normalized_literals_in_token_order():
    lits = normalized_literals(
        "SELECT 7 FROM t WHERE a = 'x' AND b IN (1, 2)"
    )
    assert len(lits) == 4
    assert lits[0].startswith("NUMBER:")
    assert lits[1].startswith("STRING:")
    assert lits[2].startswith("NUMBER:") and lits[3].startswith("NUMBER:")


def test_identifiers_and_params_are_not_literals():
    assert normalized_literals("SELECT a, b FROM t WHERE a = $1") == ()


def test_unlexable_statement_falls_back_to_raw_text():
    lits = normalized_literals("NOT \x00 SQL  AT\tALL")
    assert lits == ("RAW:NOT \x00 SQL AT ALL",)
    # two different unlexable statements never share a key
    assert statement_key("garbage \x00 one") != statement_key(
        "garbage \x00 two"
    )
    # ...but the same unlexable statement still caches consistently
    assert statement_key("garbage \x00 one") == statement_key(
        "garbage  \x00   one"
    )


def test_key_is_hashable_and_describe_is_short():
    key = statement_key(
        "SELECT count(*) FROM orders WHERE date IN "
        "('05-15-2013', '06-15-2013', '07-15-2013') AND region = $1",
        params=["emea"],
    )
    assert isinstance(key, StatementKey)
    assert hash(key) == hash(key)
    text = key.describe()
    assert "3 literal(s)" in text
    assert "1 param(s)" in text
    # fingerprint part is truncated for the \cache view
    assert len(text.split(" [")[0]) <= 48
