"""Concurrency stress: hot cached queries racing invalidating DML.

The no-stale-read contract under threads: once an ``insert()`` call has
*returned*, every query that starts afterwards must observe its rows —
whether it is answered by fresh execution, a replayed selection, or a
cached result.  The writer publishes the row count after each insert
returns; readers snapshot the published floor before issuing each query
and assert the answer never falls below it.  A stale cache entry serving
a pre-DML answer after the DML completed would fail the floor check.

Runs in the CI x20 concurrency-stress step alongside the parallel
scheduler's stress suite.
"""

from __future__ import annotations

import threading

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)

DOMAIN, PARTS = 1000, 8
SEED_ROWS = 200
HOT_LO, HOT_HI = 0, 499  # the hot half of the key space
INSERTS = 60
READERS = 4
JOIN_TIMEOUT = 120.0  # generous; a deadlock fails fast and loud

HOT_SQL = (
    "SELECT count(*) FROM facts "
    f"WHERE key >= {HOT_LO} AND key <= {HOT_HI}"
)


def _build_db() -> Database:
    db = Database(num_segments=4, cache="partitions")
    db.create_table(
        "facts",
        TableSchema.of(("id", t.INT), ("key", t.INT), ("val", t.INT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [uniform_int_level("key", 0, DOMAIN, PARTS)]
        ),
    )
    # seed every row inside the hot range so the baseline count is known
    db.insert(
        "facts",
        [(i, (i * 7) % (HOT_HI + 1), i) for i in range(SEED_ROWS)],
    )
    db.analyze()
    return db


def _stress(db: Database, reader_modes: list[str], workers: int | None):
    published = {"count": SEED_ROWS}
    publish_lock = threading.Lock()
    stop = threading.Event()
    errors: list[BaseException] = []

    def writer():
        try:
            for n in range(INSERTS):
                # every insert lands in the hot range: each one both
                # changes the hot answer and invalidates cached entries
                db.insert(
                    "facts", [(100_000 + n, (n * 13) % (HOT_HI + 1), 1)]
                )
                with publish_lock:
                    published["count"] += 1
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            stop.set()

    def reader(mode: str):
        try:
            while True:
                last_lap = stop.is_set()  # one more read after the writer
                with publish_lock:
                    floor = published["count"]
                rows = db.sql(HOT_SQL, cache=mode, workers=workers).rows
                count = rows[0][0]
                assert count >= floor, (
                    f"stale read: saw {count} rows after {floor} inserts "
                    f"were published (mode={mode})"
                )
                if last_lap:
                    break
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer)]
    threads += [
        threading.Thread(target=reader, args=(mode,))
        for mode in reader_modes
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    hung = [t for t in threads if t.is_alive()]
    assert not hung, f"deadlock: {len(hung)} thread(s) never finished"
    assert not errors, errors[0]

    # final state is exact: every insert is visible, cache agrees with
    # a cache-off run
    final = db.sql(HOT_SQL, cache="results")
    assert final.rows[0][0] == SEED_ROWS + INSERTS
    assert final.rows == db.sql(HOT_SQL, cache="off").rows


def test_hot_query_vs_invalidating_dml_serial_readers():
    db = _build_db()
    _stress(
        db,
        reader_modes=["partitions", "partitions", "results", "results"][
            :READERS
        ],
        workers=None,
    )


def test_hot_query_vs_invalidating_dml_parallel_readers():
    """Same race with every query on the workers=2 segment scheduler:
    the selector bypass and harvest must stay sound when each query is
    itself multi-threaded."""
    db = _build_db()
    _stress(
        db,
        reader_modes=["partitions", "results"],
        workers=2,
    )


def test_concurrent_misses_on_distinct_statements():
    """Many threads storing distinct entries at once: bounded cache, no
    lost updates on the counters, every entry replayable afterwards."""
    db = _build_db()
    errors: list[BaseException] = []

    def worker(lo: int):
        try:
            sql = (
                "SELECT count(*) FROM facts "
                f"WHERE key >= {lo} AND key <= {lo + 50}"
            )
            first = db.sql(sql, cache="partitions").rows
            assert db.sql(sql, cache="partitions").rows == first
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(lo,))
        for lo in range(0, 800, 100)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    assert not any(t.is_alive() for t in threads)
    assert not errors, errors[0]
    snap = db.cache.partitions.to_dict()
    assert snap["entries"] == 8
    assert snap["stores"] >= 8
    # replays answer identically to evaluation for every stored entry
    for lo in range(0, 800, 100):
        sql = (
            "SELECT count(*) FROM facts "
            f"WHERE key >= {lo} AND key <= {lo + 50}"
        )
        assert (
            db.sql(sql, cache="partitions").rows
            == db.sql(sql, cache="off").rows
        )
