"""NetServer smoke: framed line protocol, concurrent isolated clients."""

from __future__ import annotations

import socket
import threading

from repro.serving import EOT, NetServer


class Client:
    """Tiny framed client over the newline/EOT protocol."""

    def __init__(self, host: str, port: int):
        self._conn = socket.create_connection((host, port), timeout=10)
        self._stream = self._conn.makefile("rwb")

    def rpc(self, line: str) -> str:
        self._stream.write(line.encode() + b"\n")
        self._stream.flush()
        out = []
        while True:
            raw = self._stream.readline()
            if not raw or raw == EOT:
                break
            out.append(raw.decode().rstrip("\n"))
        return "\n".join(out)

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


def test_netserver_single_client_roundtrip(fresh_db):
    with NetServer(fresh_db) as net:
        client = Client(net.host, net.port)
        assert "count" in client.rpc("SELECT count(order_id) FROM orders;")
        out = client.rpc("\\sessions")
        assert "serving:" in out
        assert client.rpc("\\q") == "bye"
        client.close()
    net.server.close()


def test_netserver_concurrent_clients_are_isolated(fresh_db):
    reference = fresh_db.sql("SELECT avg(amount) FROM orders").rows[0][0]
    expected = f"{reference:.4f}".rstrip("0").rstrip(".")
    with NetServer(fresh_db) as net:
        clients = [Client(net.host, net.port) for _ in range(3)]
        # distinct per-connection settings must not bleed across clients
        clients[0].rpc("SET workers 2;")
        clients[1].rpc("SET timeout_seconds 30;")
        outputs: dict[int, str] = {}

        def drive(index: int):
            outputs[index] = clients[index].rpc(
                "SELECT avg(amount) FROM orders;"
            )

        threads = [
            threading.Thread(target=drive, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
            assert not thread.is_alive()
        for index in range(3):
            assert expected in outputs[index], outputs[index]
        # each connection holds its own serving session
        listing = clients[0].rpc("\\sessions")
        assert listing.count("session-") >= 3
        for client in clients:
            client.close()
    net.server.close()
