"""The QueryServer submit path: concurrent correctness, overload
behaviour, degradation, metrics and lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ReproError, ServerOverloaded
from repro.serving import ServingConfig

QUERY = "SELECT avg(amount) FROM orders"
COUNT = "SELECT count(order_id) FROM orders"


def test_concurrent_sessions_return_identical_results(fresh_db):
    reference = fresh_db.sql(QUERY).rows
    server = fresh_db.serve(max_concurrent=3, pool_workers=8)
    sessions = [
        server.session(name=f"client-{i}", workers=2) for i in range(3)
    ]
    results: list = []
    lock = threading.Lock()

    def work(session):
        for _ in range(4):
            rows = session.sql(QUERY).rows
            with lock:
                results.append(rows)

    threads = [threading.Thread(target=work, args=(s,)) for s in sessions]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
        assert not thread.is_alive()
    assert len(results) == 12
    assert all(rows == reference for rows in results)
    stats = server.stats_dict()
    assert stats["admission"]["admitted"] == 12
    assert sum(stats["admission"]["rejected"].values()) == 0
    server.close()


def test_overload_sheds_cleanly_and_admitted_queries_stay_correct(fresh_db):
    reference = fresh_db.sql(QUERY).rows
    fresh_db.storage.io_latency_s = 0.01
    server = fresh_db.serve(
        max_concurrent=1,
        max_queued=1,
        queue_timeout_s=0.05,
        session_max_inflight=1,
    )
    sessions = [server.session(name=f"burst-{i}") for i in range(6)]
    admitted: list = []
    shed: list = []
    lock = threading.Lock()

    def work(session):
        try:
            rows = session.sql(QUERY).rows
            with lock:
                admitted.append(rows)
        except ServerOverloaded as exc:
            with lock:
                shed.append(exc.reason)

    threads = [threading.Thread(target=work, args=(s,)) for s in sessions]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
        assert not thread.is_alive()
    # every query either succeeded with correct rows or was shed typed
    assert len(admitted) + len(shed) == 6
    assert shed, "burst against a 1-slot server must shed something"
    assert set(shed) <= {"queue_full", "queue_timeout"}
    assert all(rows == reference for rows in admitted)
    stats = server.stats_dict()["admission"]
    assert stats["admitted"] == len(admitted)
    assert sum(stats["rejected"].values()) == len(shed)
    server.close()


def test_grants_degrade_when_the_tier_fills(fresh_db):
    fresh_db.storage.io_latency_s = 0.005
    server = fresh_db.serve(max_concurrent=2, pool_workers=8)
    holder = server.session(name="holder", workers=4)
    joiner = server.session(name="joiner", workers=4)
    background: dict = {}

    def hold():
        background["result"] = holder.sql(QUERY)

    thread = threading.Thread(target=hold)
    thread.start()
    deadline = time.monotonic() + 5.0
    while server.admission.inflight == 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    # the tier is at load 1/2 = degrade_mid: the next grant is halved
    result = joiner.sql(QUERY)
    thread.join(timeout=10.0)
    serving = result.metrics.to_dict()["serving"]
    assert serving["requested_workers"] == 4
    assert serving["effective_workers"] == 2
    assert serving["degraded"] is True
    first = background["result"].metrics.to_dict()["serving"]
    assert first["effective_workers"] == 4
    assert first["degraded"] is False
    # degraded or not, both computed the same answer
    assert result.rows == background["result"].rows
    server.close()


def test_serving_metrics_section_schema_v6(fresh_db):
    session = fresh_db.session(name="observer")
    exported = session.sql(COUNT).metrics.to_dict()
    assert exported["schema_version"] == 9
    serving = exported["serving"]
    assert serving["session"] == "observer"
    assert serving["requested_workers"] >= 1
    assert serving["effective_workers"] >= 1
    assert serving["queued_seconds"] >= 0.0
    assert serving["admitted_total"] >= 1
    # a direct (non-serving) execution carries no serving section
    assert fresh_db.sql(COUNT).metrics.to_dict()["serving"] is None
    fresh_db._server.close()


def test_prometheus_families(fresh_db):
    server = fresh_db.serve()
    session = server.session(name="prom")
    session.sql(COUNT)
    body = server.to_prometheus()
    for family in (
        "repro_serving_admitted_total",
        "repro_serving_rejected_total",
        "repro_serving_degraded_total",
        "repro_serving_queued_seconds_total",
        "repro_serving_queue_depth",
        "repro_serving_inflight",
        "repro_serving_pool_workers",
        "repro_serving_sessions_open",
        "repro_serving_session_inflight",
        "repro_serving_session_latency_seconds",
    ):
        assert f"# TYPE {family}" in body
    assert 'repro_serving_session_inflight{session="prom"} 0' in body
    # the shared exporter renders labels key-sorted
    assert 'quantile="0.5",session="prom"' in body
    server.close()


def test_server_lifecycle_and_reconfiguration(fresh_db):
    server = fresh_db.serve(max_concurrent=2)
    assert fresh_db.serve() is server
    with pytest.raises(ReproError):
        fresh_db.serve(max_concurrent=8)  # reconfigure while running
    session = server.session(name="left-open")
    server.close()
    assert server.closed
    assert session.closed
    with pytest.raises(ReproError):
        server.session(name="after-close")
    with pytest.raises(ReproError):
        server.submit(session, COUNT)
    # a fresh server can be configured after close
    second = fresh_db.serve(max_concurrent=8)
    assert second is not server
    assert second.config.max_concurrent == 8
    second.close()


def test_serving_config_explicit_object(fresh_db):
    from repro.serving import QueryServer

    server = QueryServer(fresh_db, ServingConfig(max_concurrent=1))
    with server, server.session(name="ctx") as session:
        assert session.sql(COUNT).rows[0][0] == 1500
    assert server.closed
