"""The HTTP scrape sidecar: /metrics, /healthz and /activity served over
real sockets, health status-code contract, and lifecycle (ticker
ownership, idempotent close)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.serving.scrape import PROM_CONTENT_TYPE, ScrapeServer

COUNT = "SELECT count(*) FROM orders"


def _get(server, path):
    """(status, content_type, body) for one GET against the sidecar."""
    try:
        with urllib.request.urlopen(server.address + path, timeout=5.0) as r:
            return r.status, r.headers["Content-Type"], r.read().decode()
    except urllib.error.HTTPError as error:
        return (
            error.code,
            error.headers["Content-Type"],
            error.read().decode(),
        )


@pytest.fixture()
def scrape(fresh_db):
    server = fresh_db.serve_scrape()
    yield fresh_db, server
    server.close()


def test_metrics_endpoint_serves_consolidated_exporter(scrape):
    db, server = scrape
    db.sql(COUNT)
    status, content_type, body = _get(server, "/metrics")
    assert status == 200
    assert content_type == PROM_CONTENT_TYPE
    # families from every subsystem, one exporter
    assert "# TYPE repro_query_calls_total counter" in body
    assert "# TYPE repro_cache_hits_total counter" in body
    assert "# TYPE repro_live_query_seconds histogram" in body
    assert "repro_live_queries_completed_total 1" in body
    # the scrape polled the gauge sources, so sampled series are present
    assert 'repro_live_sample{series="queries_in_flight"} 0' in body


def test_healthz_ok_degraded_unhealthy(scrape):
    db, server = scrape
    status, _, body = _get(server, "/healthz")
    health = json.loads(body)
    assert (status, health["status"]) == (200, "ok")
    assert health["double_faults"] == []
    # primary down, mirror up: reads still work -> degraded but 200
    db.health.failover(1, reason="test")
    status, _, body = _get(server, "/healthz")
    health = json.loads(body)
    assert (status, health["status"]) == (200, "degraded")
    assert 1 in health["down_segments"]
    # mirror gone too: data unreachable -> 503
    db.health.mark_mirror_down(1)
    status, _, body = _get(server, "/healthz")
    health = json.loads(body)
    assert (status, health["status"]) == (503, "unhealthy")
    assert health["double_faults"] == [1]


def test_activity_endpoint_reports_registry_and_counters(scrape):
    db, server = scrape
    db.sql(COUNT)
    with pytest.raises(Exception):
        db.sql("SELECT nope FROM orders")
    status, content_type, body = _get(server, "/activity")
    assert status == 200
    assert content_type.startswith("application/json")
    activity = json.loads(body)
    assert activity["in_flight"] == []
    assert activity["completed"] == 1
    assert activity["failed"] == 1
    assert activity["slow_log"]["enabled"] is False


def test_unknown_path_404_lists_endpoints(scrape):
    _, server = scrape
    status, _, body = _get(server, "/nope")
    assert status == 404
    payload = json.loads(body)
    assert payload["paths"] == ["/metrics", "/healthz", "/activity"]
    # trailing slashes and query strings normalise onto the real paths
    assert _get(server, "/metrics/")[0] == 200
    assert _get(server, "/healthz?verbose=1")[0] == 200


def test_scrape_server_owns_the_ticker(fresh_db):
    assert not fresh_db.live.ticker_running
    server = fresh_db.serve_scrape()
    assert fresh_db.live.ticker_running
    server.close()
    assert server.closed
    assert not fresh_db.live.ticker_running
    server.close()  # idempotent
    # a ticker the caller started is left running on close
    fresh_db.live.start_ticker()
    second = fresh_db.serve_scrape()
    second.close()
    assert fresh_db.live.ticker_running
    fresh_db.live.stop_ticker()


def test_two_sidecars_serve_their_own_database():
    from .conftest import make_orders_db

    first_db = make_orders_db(rows=100, num_segments=2)
    second_db = make_orders_db(rows=100, num_segments=2)
    first_db.sql(COUNT)
    with ScrapeServer(first_db) as first, ScrapeServer(second_db) as second:
        assert first.port != second.port
        assert "repro_live_queries_completed_total 1" in _get(
            first, "/metrics"
        )[2]
        assert "repro_live_queries_completed_total 0" in _get(
            second, "/metrics"
        )[2]
