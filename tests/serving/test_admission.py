"""Unit tests for the admission controller: slots, queue, shedding,
fair share and degradation — no database involved."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ServerOverloaded
from repro.serving import AdmissionController, ServingConfig


def controller(**overrides) -> AdmissionController:
    defaults = dict(
        max_concurrent=2,
        max_queued=4,
        queue_timeout_s=2.0,
        session_max_inflight=1,
    )
    defaults.update(overrides)
    return AdmissionController(ServingConfig(**defaults))


def test_immediate_admission_under_caps():
    admission = controller()
    slot = admission.acquire(1, requested_workers=1)
    assert slot.queued_seconds == 0.0
    assert admission.stats()["inflight"] == 1
    admission.release(slot)
    assert admission.stats()["inflight"] == 0
    assert admission.stats()["admitted"] == 1


def test_queue_full_sheds_with_typed_error():
    admission = controller(max_concurrent=1, max_queued=0)
    slot = admission.acquire(1)
    with pytest.raises(ServerOverloaded) as excinfo:
        admission.acquire(2)
    assert excinfo.value.reason == "queue_full"
    assert excinfo.value.stage == "serving"
    assert admission.stats()["rejected"]["queue_full"] == 1
    admission.release(slot)


def test_queue_timeout_sheds_with_typed_error():
    admission = controller(max_concurrent=1, queue_timeout_s=0.05)
    slot = admission.acquire(1)
    started = time.monotonic()
    with pytest.raises(ServerOverloaded) as excinfo:
        admission.acquire(2)
    assert excinfo.value.reason == "queue_timeout"
    assert time.monotonic() - started < 1.0
    assert admission.stats()["rejected"]["queue_timeout"] == 1
    assert admission.stats()["queue_depth"] == 0  # ticket removed
    admission.release(slot)


def test_release_dispatches_queued_ticket():
    admission = controller(max_concurrent=1)
    first = admission.acquire(1)
    granted = []

    def waiter():
        slot = admission.acquire(2)
        granted.append(slot)
        admission.release(slot)

    thread = threading.Thread(target=waiter)
    thread.start()
    deadline = time.monotonic() + 2.0
    while admission.queue_depth == 0 and time.monotonic() < deadline:
        time.sleep(0.002)
    assert admission.queue_depth == 1
    admission.release(first)
    thread.join(timeout=2.0)
    assert not thread.is_alive()
    assert len(granted) == 1
    assert granted[0].queued_seconds > 0.0
    stats = admission.stats()
    assert stats["queued_grants"] == 1
    assert stats["queued_seconds_total"] > 0.0


def test_session_inflight_cap_queues_even_with_free_slots():
    admission = controller(max_concurrent=4, session_max_inflight=1)
    slot = admission.acquire(1)
    # same session, free global slots — must queue, not run
    result = []
    thread = threading.Thread(
        target=lambda: result.append(admission.acquire(1))
    )
    thread.start()
    deadline = time.monotonic() + 2.0
    while admission.queue_depth == 0 and time.monotonic() < deadline:
        time.sleep(0.002)
    assert admission.queue_depth == 1
    assert not result
    # a different session sails through
    other = admission.acquire(2)
    admission.release(other)
    admission.release(slot)
    thread.join(timeout=2.0)
    assert len(result) == 1
    admission.release(result[0])


def test_round_robin_fair_share_across_sessions():
    """Session A queues three queries, session B one: grants alternate
    A, B, A, A — B is not starved behind A's backlog."""
    admission = controller(max_concurrent=1, max_queued=8)
    holder = admission.acquire(99)
    order: list[int] = []
    order_lock = threading.Lock()

    def worker(session_id: int):
        slot = admission.acquire(session_id)
        with order_lock:
            order.append(session_id)
        admission.release(slot)

    threads = []
    # enqueue deterministically: A's three first, then B's one
    for session_id in (1, 1, 1):
        thread = threading.Thread(target=worker, args=(session_id,))
        thread.start()
        threads.append(thread)
        deadline = time.monotonic() + 2.0
        while (
            admission.queue_depth < len(threads)
            and time.monotonic() < deadline
        ):
            time.sleep(0.002)
    thread = threading.Thread(target=worker, args=(2,))
    thread.start()
    threads.append(thread)
    deadline = time.monotonic() + 2.0
    while admission.queue_depth < 4 and time.monotonic() < deadline:
        time.sleep(0.002)
    assert admission.queue_depth == 4
    admission.release(holder)
    for thread in threads:
        thread.join(timeout=5.0)
        assert not thread.is_alive()
    assert order == [1, 2, 1, 1]


def test_degradation_narrows_with_load():
    admission = controller(
        max_concurrent=4, session_max_inflight=4, max_queued=0
    )
    # occupancy joined: 0/4, 1/4, 2/4 (>= degrade_mid), 3/4 (>= high)
    first = admission.acquire(1, requested_workers=4)
    second = admission.acquire(1, requested_workers=4)
    third = admission.acquire(1, requested_workers=4)
    fourth = admission.acquire(1, requested_workers=4)
    assert (first.effective_workers, first.degraded) == (4, False)
    assert (second.effective_workers, second.degraded) == (4, False)
    assert (third.effective_workers, third.degraded) == (2, True)
    assert (fourth.effective_workers, fourth.degraded) == (1, True)
    assert admission.stats()["degraded_grants"] == 2
    for slot in (first, second, third, fourth):
        admission.release(slot)


def test_serial_requests_never_count_as_degraded():
    admission = controller(max_concurrent=1)
    slot = admission.acquire(1, requested_workers=1)
    assert slot.effective_workers == 1
    assert not slot.degraded
    admission.release(slot)


def test_close_sheds_queued_and_new_waiters():
    admission = controller(max_concurrent=1, queue_timeout_s=5.0)
    slot = admission.acquire(1)
    errors = []

    def waiter():
        try:
            admission.acquire(2)
        except ServerOverloaded as exc:
            errors.append(exc.reason)

    thread = threading.Thread(target=waiter)
    thread.start()
    deadline = time.monotonic() + 2.0
    while admission.queue_depth == 0 and time.monotonic() < deadline:
        time.sleep(0.002)
    admission.close()
    thread.join(timeout=2.0)
    assert errors == ["shutdown"]
    with pytest.raises(ServerOverloaded) as excinfo:
        admission.acquire(3)
    assert excinfo.value.reason == "shutdown"
    admission.release(slot)


def test_config_validation():
    with pytest.raises(ValueError):
        ServingConfig(max_concurrent=0)
    with pytest.raises(ValueError):
        ServingConfig(session_max_inflight=0)
    with pytest.raises(ValueError):
        ServingConfig(degrade_mid=0.9, degrade_high=0.5)
    config = ServingConfig(max_concurrent=3)
    assert config.pool_workers == 6
    assert config.to_dict()["max_concurrent"] == 3
