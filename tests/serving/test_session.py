"""Session isolation: settings, fault scope, cancel scope, lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import QueryCancelled, QueryTimeout, ReproError
from repro.resilience.faults import SCAN_ROW

QUERY = "SELECT avg(amount) FROM orders"


def test_session_settings_are_isolated(fresh_db):
    server = fresh_db.serve()
    strict = server.session(name="strict", timeout=0.0)
    relaxed = server.session(name="relaxed")
    with pytest.raises(QueryTimeout):
        strict.sql(QUERY)
    result = relaxed.sql(QUERY)
    assert result.rows
    # per-call override beats the session default
    assert strict.sql(QUERY, timeout=30.0).rows == result.rows
    server.close()


def test_session_faults_never_leak_into_other_sessions(fresh_db):
    server = fresh_db.serve()
    chaotic = server.session(name="chaotic")
    calm = server.session(name="calm")
    chaotic.faults.arm(SCAN_ROW, segment=1, transient=True)
    baseline = calm.sql(QUERY)
    hit = chaotic.sql(QUERY)
    # the armed fault fired for its own session's query only ...
    assert chaotic.faults.fired_by_point.get(SCAN_ROW, 0) >= 1
    assert hit.metrics.retry_count >= 1
    assert baseline.metrics.retry_count == 0
    # ... and the database-wide injector never saw it
    assert fresh_db.faults.fired_by_point.get(SCAN_ROW, 0) == 0
    # correctness is preserved through the retry
    assert hit.rows == baseline.rows
    server.close()


def test_cancel_kills_only_this_sessions_inflight_queries(fresh_db):
    fresh_db.storage.io_latency_s = 0.005
    server = fresh_db.serve(max_concurrent=4)
    victim = server.session(name="victim")
    bystander = server.session(name="bystander")
    outcomes: dict[str, object] = {}

    def run(name, session):
        try:
            outcomes[name] = session.sql(QUERY).rows
        except QueryCancelled:
            outcomes[name] = "cancelled"

    threads = [
        threading.Thread(target=run, args=("victim", victim)),
        threading.Thread(target=run, args=("bystander", bystander)),
    ]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + 5.0
    while victim.inflight == 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    assert victim.cancel() >= 1
    for thread in threads:
        thread.join(timeout=10.0)
        assert not thread.is_alive()
    assert outcomes["victim"] == "cancelled"
    assert isinstance(outcomes["bystander"], list)
    assert outcomes["bystander"]
    server.close()


def test_closed_session_rejects_submits(fresh_db):
    server = fresh_db.serve()
    session = server.session(name="short-lived")
    session.close()
    with pytest.raises(ReproError):
        session.sql(QUERY)
    assert session.name not in server.stats_dict()["open_sessions"]
    server.close()


def test_session_context_manager_closes(fresh_db):
    server = fresh_db.serve()
    with server.session(name="scoped") as session:
        assert session.sql("SELECT count(order_id) FROM orders").rows
    assert session.closed
    server.close()


def test_database_session_shortcut_creates_server(fresh_db):
    session = fresh_db.session(name="direct")
    assert fresh_db._server is not None
    result = session.sql("SELECT count(order_id) FROM orders")
    assert result.rows[0][0] == 1500
    serving = result.metrics.to_dict()["serving"]
    assert serving["session"] == "direct"
    fresh_db._server.close()
