"""Fixtures for the serving-tier suites.

Serving tests attach servers, arm per-session faults and toggle storage
latency, so they get a *fresh* database per test (the shared module-scoped
``orders_db`` must never grow a server mid-suite).
"""

from __future__ import annotations

import datetime
import random

import pytest

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    monthly_range_level,
)

START = datetime.date(2012, 1, 1)


def make_orders_db(rows: int = 1500, num_segments: int = 4) -> Database:
    db = Database(num_segments=num_segments)
    db.create_table(
        "orders",
        TableSchema.of(
            ("order_id", t.INT), ("amount", t.FLOAT), ("date", t.DATE)
        ),
        distribution=DistributionPolicy.hashed("order_id"),
        partition_scheme=PartitionScheme(
            [monthly_range_level("date", START, 24)]
        ),
    )
    rng = random.Random(2014)
    db.insert(
        "orders",
        [
            (
                i,
                round(rng.uniform(1, 100), 2),
                START + datetime.timedelta(days=rng.randrange(729)),
            )
            for i in range(rows)
        ],
    )
    db.analyze()
    return db


@pytest.fixture()
def fresh_db() -> Database:
    return make_orders_db()
