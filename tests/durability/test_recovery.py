"""Restart recovery: ``Database(data_dir=...)`` replays checkpoint + WAL
tail back into storage — DDL, DML, partitioned tables, dates, torn tails,
checkpoint swaps."""

import datetime
import json

import pytest

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    monthly_range_level,
)
from repro.errors import DurabilityError

START = datetime.date(2013, 1, 1)


def _db(data_dir, **kwargs):
    return Database(num_segments=4, data_dir=str(data_dir), **kwargs)


def _close(db):
    if db.durability is not None:
        db.durability.close()


def _orders(db):
    db.create_table(
        "orders",
        TableSchema.of(("id", t.INT), ("date", t.DATE), ("amount", t.FLOAT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [monthly_range_level("date", START, 12)]
        ),
    )
    db.insert(
        "orders",
        [
            (i, START + datetime.timedelta(days=i % 360), float(i))
            for i in range(300)
        ],
    )


def test_wal_only_round_trip(tmp_path):
    db = _db(tmp_path)
    _orders(db)
    db.sql("DELETE FROM orders WHERE id < 40")
    expected = sorted(db.sql("SELECT id, date, amount FROM orders").rows)
    _close(db)

    recovered = _db(tmp_path)
    assert (
        sorted(recovered.sql("SELECT id, date, amount FROM orders").rows)
        == expected
    )
    assert recovered.durability.recovery_replayed_records > 0
    # partition pruning still works on the recovered catalog
    result = recovered.sql(
        "SELECT count(*) FROM orders "
        "WHERE date BETWEEN '2013-03-01' AND '2013-04-30'"
    )
    assert result.metrics.partitions_scanned() <= 2
    _close(recovered)


def test_checkpoint_then_restart(tmp_path):
    db = _db(tmp_path)
    _orders(db)
    summary = db.checkpoint()
    assert summary["wal_truncated"] is True
    assert summary["bytes"] > 0
    expected = sorted(db.sql("SELECT id FROM orders").rows)
    _close(db)

    recovered = _db(tmp_path)
    assert sorted(recovered.sql("SELECT id FROM orders").rows) == expected
    # nothing to replay: the whole state came from the snapshot
    assert recovered.durability.recovery_replayed_records == 0
    assert recovered.durability.recovery_checkpoint_lsn == summary["lsn"]
    _close(recovered)


def test_checkpoint_plus_wal_tail(tmp_path):
    db = _db(tmp_path)
    _orders(db)
    db.checkpoint()
    db.insert("orders", [(1000 + i, START, 1.0) for i in range(20)])
    db.sql("DELETE FROM orders WHERE id < 10")
    expected = sorted(db.sql("SELECT id, amount FROM orders").rows)
    _close(db)

    recovered = _db(tmp_path)
    assert sorted(recovered.sql("SELECT id, amount FROM orders").rows) == expected
    assert recovered.durability.recovery_replayed_records > 0
    _close(recovered)


def test_recovered_oids_are_stable(tmp_path):
    db = _db(tmp_path)
    _orders(db)
    before = db.catalog.table("orders")
    leaf_oids = dict(before._leaf_oids)
    _close(db)

    recovered = _db(tmp_path)
    after = recovered.catalog.table("orders")
    assert after.oid == before.oid
    assert dict(after._leaf_oids) == leaf_oids
    # new tables must not collide with recovered OIDs
    recovered.create_table(
        "extra",
        TableSchema.of(("k", t.INT)),
        distribution=DistributionPolicy.hashed("k"),
    )
    assert recovered.catalog.table("extra").oid > max(
        [before.oid] + list(leaf_oids.values())
    )
    _close(recovered)


def test_drop_table_round_trip(tmp_path):
    db = _db(tmp_path)
    _orders(db)
    db.create_table(
        "scratch",
        TableSchema.of(("k", t.INT)),
        distribution=DistributionPolicy.hashed("k"),
    )
    db.insert("scratch", [(i,) for i in range(10)])
    db.drop_table("scratch")
    _close(db)

    recovered = _db(tmp_path)
    assert not recovered.catalog.has_table("scratch")
    assert recovered.catalog.has_table("orders")
    _close(recovered)


def test_torn_segment_tail_recovers_committed_prefix(tmp_path):
    db = _db(tmp_path)
    _orders(db)
    expected = sorted(db.sql("SELECT id FROM orders").rows)
    _close(db)
    # a crash mid-append tears the last line of one segment's log — but
    # the statement it belonged to is not in any commit marker here, so
    # torn garbage simply vanishes
    wal = tmp_path / "wal" / "seg0.wal"
    with open(wal, "ab") as fh:
        fh.write(b'{"type":"insert","lsn":999')

    recovered = _db(tmp_path)
    assert sorted(recovered.sql("SELECT id FROM orders").rows) == expected
    _close(recovered)


def test_uncommitted_records_are_not_replayed(tmp_path):
    """Data records without a commit marker (crash between the segment
    append and the marker append) must not resurrect."""
    db = _db(tmp_path)
    db.create_table(
        "kv",
        TableSchema.of(("k", t.INT), ("v", t.INT)),
        distribution=DistributionPolicy.hashed("k"),
    )
    db.insert("kv", [(i, i) for i in range(40)])
    expected = sorted(db.sql("SELECT k FROM kv").rows)
    _close(db)
    # drop the last commit marker: its statement's data records are now
    # orphaned, exactly as if the process died pre-marker
    commit_wal = tmp_path / "wal" / "commit.wal"
    lines = commit_wal.read_bytes().splitlines(keepends=True)
    dropped = json.loads(lines[-1])
    commit_wal.write_bytes(b"".join(lines[:-1]))

    recovered = _db(tmp_path)
    rows = sorted(recovered.sql("SELECT k FROM kv").rows)
    assert len(rows) < len(expected)
    assert dropped["lsns"]  # the marker we dropped really covered records
    # both copies agree after recovery
    store = recovered.storage.store_by_name("kv")
    for segment in range(4):
        primary = sorted(
            r for rows_ in store.primary_buckets(segment).values() for r in rows_
        )
        mirror = sorted(
            r for rows_ in store.mirror_buckets(segment).values() for r in rows_
        )
        assert primary == mirror
    _close(recovered)


def test_corrupt_checkpoint_falls_back_to_old(tmp_path):
    db = _db(tmp_path)
    _orders(db)
    db.checkpoint()
    db.insert("orders", [(5000, START, 9.0)])
    db.checkpoint()
    expected = sorted(db.sql("SELECT id FROM orders").rows)
    _close(db)
    # wreck the current checkpoint's manifest; fabricate an "old" snapshot
    # by copying it first (the swap normally removes checkpoint.old)
    import shutil

    current = tmp_path / "checkpoint"
    shutil.copytree(current, tmp_path / "checkpoint.old")
    (current / "manifest.json").write_text("{ not json")

    recovered = _db(tmp_path)
    assert sorted(recovered.sql("SELECT id FROM orders").rows) == expected
    _close(recovered)


def test_stale_checkpoint_tmp_is_discarded(tmp_path):
    db = _db(tmp_path)
    _orders(db)
    expected = sorted(db.sql("SELECT id FROM orders").rows)
    _close(db)
    tmp = tmp_path / "checkpoint.tmp"
    tmp.mkdir()
    (tmp / "seg0.json").write_text("{}")  # died before manifest.json

    recovered = _db(tmp_path)
    assert not tmp.exists()
    assert sorted(recovered.sql("SELECT id FROM orders").rows) == expected
    _close(recovered)


def test_checkpoint_without_data_dir_raises():
    db = Database(num_segments=4)
    with pytest.raises(DurabilityError):
        db.checkpoint()


def test_background_checkpointer(tmp_path):
    db = _db(tmp_path, checkpoint_interval_s=0.05)
    _orders(db)
    deadline = 100
    import time

    while db.durability.checkpoints == 0 and deadline:
        time.sleep(0.05)
        deadline -= 1
    assert db.durability.checkpoints > 0
    _close(db)

    recovered = _db(tmp_path)
    assert recovered.sql("SELECT count(*) FROM orders").rows == [(300,)]
    _close(recovered)


def test_metrics_carry_durability_section(tmp_path):
    db = _db(tmp_path)
    _orders(db)
    result = db.sql("SELECT count(*) FROM orders")
    data = result.metrics.to_dict()
    assert data["schema_version"] == 9
    section = data["durability"]
    assert section["enabled"] is True
    assert section["wal_records"] > 0
    assert section["wal_sync"] == "sync"
    assert section["resyncing_segments"] == []
    _close(db)


def test_metrics_without_data_dir_mark_durability_off():
    db = Database(num_segments=4)
    db.create_table(
        "kv",
        TableSchema.of(("k", t.INT)),
        distribution=DistributionPolicy.hashed("k"),
    )
    db.insert("kv", [(1,)])
    data = db.sql("SELECT count(*) FROM kv").metrics.to_dict()
    assert data["durability"]["enabled"] is False


def test_prometheus_families(tmp_path):
    from repro.obs.prom import export_prometheus

    db = _db(tmp_path)
    _orders(db)
    db.checkpoint()
    text = export_prometheus(db)
    assert "repro_durability_wal_records_total" in text
    assert "repro_durability_checkpoints_total 1" in text
    assert "repro_durability_resyncing_segments 0" in text
    _close(db)


def test_async_wal_mode_still_recovers(tmp_path):
    db = _db(tmp_path, wal_sync="async")
    _orders(db)
    assert db.durability.wal_fsyncs == 0
    expected = sorted(db.sql("SELECT id FROM orders").rows)
    _close(db)
    recovered = _db(tmp_path)
    assert sorted(recovered.sql("SELECT id FROM orders").rows) == expected
    _close(recovered)
