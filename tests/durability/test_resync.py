"""Online mirror resync: a failed-over primary replays the mutations it
missed before rejoining, and a rejoin that *can't* replay refuses rather
than serving stale rows (the stale-rejoin regression)."""

import datetime
import json
import urllib.request

import pytest

from repro import Database
from repro import types as t
from repro.catalog import DistributionPolicy, TableSchema
from repro.errors import DurabilityError, ResyncRequired, SegmentFailure
from repro.resilience import INSERT_ROW, MIRROR, PRIMARY
from repro.resilience.health import SegmentHealth

START = datetime.date(2013, 1, 1)


def _kv_db(data_dir=None):
    db = Database(
        num_segments=4, data_dir=str(data_dir) if data_dir else None
    )
    db.create_table(
        "kv",
        TableSchema.of(("k", t.INT), ("v", t.INT)),
        distribution=DistributionPolicy.hashed("k"),
    )
    db.insert("kv", [(i, i) for i in range(200)])
    return db


def _copies(db, segment):
    store = db.storage.store_by_name("kv")
    primary = sorted(
        r for rows in store.primary_buckets(segment).values() for r in rows
    )
    mirror = sorted(
        r for rows in store.mirror_buckets(segment).values() for r in rows
    )
    return primary, mirror


def test_wal_resync_replays_exactly_the_missed_lsns(tmp_path):
    db = _kv_db(tmp_path)
    db.health.failover(2, reason="test")
    db.insert("kv", [(1000 + i, 7) for i in range(80)])
    db.sql("DELETE FROM kv WHERE k < 20")
    missed = db.health.missed_lsns(2, PRIMARY)
    assert missed, "segment 2 writes while down must be tracked"

    db.health.recover(2)
    assert db.durability.resync_replayed_records == len(missed)
    assert db.health.missed_lsns(2, PRIMARY) == []
    primary, mirror = _copies(db, 2)
    assert primary == mirror
    assert db.health.status()["primaries"] == ["up"] * 4
    assert db.health.resync_count == 1
    assert db.sql("SELECT count(*) FROM kv").rows == [(260,)]
    db.durability.close()


def test_failover_events_are_lsn_stamped(tmp_path):
    db = _kv_db(tmp_path)
    db.health.failover(1)
    event = db.health.failover_events[-1]
    assert event["lsn"] == db.durability.current_lsn()
    db.durability.close()


def test_reads_served_from_mirror_while_resyncing(tmp_path):
    """During the replay the segment is in ``resyncing``: not readable
    from its primary, still readable overall (the mirror serves)."""
    db = _kv_db(tmp_path)
    db.health.failover(3)
    db.insert("kv", [(2000 + i, 1) for i in range(40)])

    observed = {}
    inner = db.health.resync_handler

    def spying_handler(segment, copy, lsns):
        observed["state"] = db.health.status()["primaries"][segment]
        observed["mirror_serves"] = db.health.require_readable(segment)
        observed["degraded"] = segment in db.health.down_segments
        inner(segment, copy, lsns)

    db.health.resync_handler = spying_handler
    db.health.recover(3)
    assert observed == {
        "state": "resyncing",
        "mirror_serves": True,
        "degraded": True,
    }
    assert db.health.require_readable(3) is False  # primary serves again
    db.durability.close()


def test_stale_rejoin_without_resync_path_refuses():
    """Regression: a bare SegmentHealth (no storage, no WAL) must refuse
    to flip a copy up when it missed writes — rejoining would silently
    serve stale rows."""
    health = SegmentHealth(2)
    health.resync_handler = None
    health.failover(0)
    health.record_missed(0, PRIMARY)
    with pytest.raises(ResyncRequired):
        health.recover(0)
    # the refusal left the segment down, not half-joined
    assert health.is_up(0) is False
    assert health.missed_lsns(0, PRIMARY), "missed set must survive"
    # a clean segment still rejoins instantly
    health.failover(1)
    health.recover(1)
    assert health.is_up(1)


def test_full_copy_resync_without_wal():
    """No data_dir: recover() falls back to rebuilding the stale copy
    wholesale from the survivor."""
    db = _kv_db()
    assert db.durability is None
    db.health.failover(1)
    db.insert("kv", [(3000 + i, 5) for i in range(60)])
    db.sql("DELETE FROM kv WHERE k < 10")
    db.health.recover(1)
    primary, mirror = _copies(db, 1)
    assert primary == mirror
    assert db.sql("SELECT count(*) FROM kv").rows == [(250,)]


def test_mirror_resync_after_mirror_outage(tmp_path):
    db = _kv_db(tmp_path)
    db.health.mark_mirror_down(2)
    db.insert("kv", [(4000 + i, 2) for i in range(40)])
    assert db.health.missed_lsns(2, MIRROR)
    db.health.recover(2)
    primary, mirror = _copies(db, 2)
    assert primary == mirror
    db.durability.close()


def test_double_fault_write_raises():
    db = _kv_db()
    db.health.failover(0)
    db.health.mark_mirror_down(0)
    with pytest.raises(SegmentFailure):
        db.insert("kv", [(9000 + i, 0) for i in range(50)])


def test_resync_failure_keeps_segment_down(tmp_path):
    db = _kv_db(tmp_path)
    db.health.failover(2)
    db.insert("kv", [(5000 + i, 3) for i in range(40)])

    def broken_handler(segment, copy, lsns):
        raise DurabilityError("disk gone")

    db.health.resync_handler = broken_handler
    with pytest.raises(DurabilityError):
        db.health.recover(2)
    assert db.health.is_up(2) is False
    assert not db.health.is_resyncing(2)
    # reinstate the real handler: recovery completes on retry
    db.health.resync_handler = db.durability.resync_replay
    db.health.recover(2)
    assert db.health.is_up(2)
    db.durability.close()


def test_truncating_wal_with_behind_copy_is_refused(tmp_path):
    """checkpoint() keeps the log while any copy still needs it."""
    db = _kv_db(tmp_path)
    db.health.failover(0)
    db.insert("kv", [(6000 + i, 4) for i in range(40)])
    summary = db.checkpoint()
    assert summary["wal_truncated"] is False
    db.health.recover(0)  # replays from the retained log
    summary = db.checkpoint()
    assert summary["wal_truncated"] is True
    db.durability.close()


def test_mutation_fault_points_fire():
    db = _kv_db()
    db.faults.arm(INSERT_ROW, mode="always")
    with pytest.raises(SegmentFailure):
        db.insert("kv", [(7000, 0)])
    db.faults.reset()
    db.faults.arm("delete_rows", mode="always")
    with pytest.raises(SegmentFailure):
        db.sql("DELETE FROM kv WHERE k = 1")
    db.faults.reset()
    # with faults cleared the paths work again
    db.insert("kv", [(7001, 0)])
    assert db.sql("SELECT count(*) FROM kv WHERE k = 7001").rows == [(1,)]


def test_healthz_reports_resyncing_as_degraded(tmp_path):
    """/healthz returns 200 + "degraded" while a segment resyncs."""
    db = _kv_db(tmp_path)
    db.health.failover(1)
    db.insert("kv", [(8000 + i, 6) for i in range(40)])
    scrape = db.serve_scrape(port=0)
    try:
        observed = {}
        inner = db.health.resync_handler

        def probing_handler(segment, copy, lsns):
            with urllib.request.urlopen(
                f"{scrape.address}/healthz", timeout=5
            ) as response:
                observed["code"] = response.status
                observed["body"] = json.loads(response.read())
            inner(segment, copy, lsns)

        db.health.resync_handler = probing_handler
        db.health.recover(1)
        assert observed["code"] == 200
        assert observed["body"]["status"] == "degraded"
        assert observed["body"]["primaries"][1] == "resyncing"
        assert observed["body"]["resyncing_segments"] == [1]
        # after the resync the endpoint is clean again
        with urllib.request.urlopen(
            f"{scrape.address}/healthz", timeout=5
        ) as response:
            body = json.loads(response.read())
        assert body["status"] == "ok"
        assert body["resync_count"] == 1
    finally:
        scrape.close()
        db.durability.close()


def test_live_gauge_tracks_resyncing_segments(tmp_path):
    db = _kv_db(tmp_path)
    db.health.failover(2)
    db.insert("kv", [(8500 + i, 6) for i in range(10)])

    seen = []
    inner = db.health.resync_handler

    def sampling_handler(segment, copy, lsns):
        seen.append(len(db.health.resyncing_segments))
        inner(segment, copy, lsns)

    db.health.resync_handler = sampling_handler
    db.health.recover(2)
    assert seen == [1]
    assert db.health.resyncing_segments == []
    db.durability.close()
