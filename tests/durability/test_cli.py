"""The durability surface of the REPL: ``\\checkpoint``, ``\\wal``,
``SET wal sync|async``."""

from repro import Database
from repro.cli import ReplSession


def _session(tmp_path=None):
    db = Database(
        num_segments=4, data_dir=str(tmp_path) if tmp_path else None
    )
    return ReplSession(db)


def test_checkpoint_without_data_dir_errors():
    session = _session()
    output = session.handle_line("\\checkpoint")
    assert output.startswith("ERROR (durability)")
    assert session.errors == 1


def test_wal_without_data_dir_reports_off():
    session = _session()
    assert "durability is off" in session.handle_line("\\wal")


def test_checkpoint_and_wal_status(tmp_path):
    session = _session(tmp_path)
    session.handle_line("\\demo")
    output = session.handle_line("\\checkpoint")
    assert output.startswith("checkpoint at lsn ")
    assert "wal truncated" in output
    status = session.handle_line("\\wal")
    assert "wal (sync):" in status
    assert "checkpoints: 1" in status
    session.db.durability.close()


def test_set_wal_switches_mode(tmp_path):
    session = _session(tmp_path)
    assert session.handle_line("SET wal async;") == "wal is async"
    assert session.db.durability.wal_sync == "async"
    assert session.handle_line("SET wal sync;") == "wal is sync"
    assert session.db.durability.wal_sync == "sync"
    output = session.handle_line("SET wal bogus;")
    assert output.startswith("ERROR (sql)")
    session.db.durability.close()


def test_set_wal_without_data_dir_errors():
    session = _session()
    output = session.handle_line("SET wal async;")
    assert output.startswith("ERROR (durability)")
    assert session.errors == 1


def test_help_mentions_durability_commands():
    session = _session()
    text = session.handle_line("\\help")
    assert "\\checkpoint" in text
    assert "\\wal" in text
    assert "SET wal sync|async" in text


def test_new_injection_points_are_armable():
    session = _session()
    for point in (
        "insert_row",
        "delete_rows",
        "wal_append",
        "wal_fsync",
        "checkpoint_write",
        "recovery_replay",
    ):
        output = session.handle_line(f"SET inject_fault {point};")
        assert output.startswith("armed: "), output
        session.handle_line("SET inject_fault off;")
