"""Property: a crash at *any* WAL record boundary never corrupts — the
recovered database equals the state after some prefix of the committed
statements, never half a statement.

The crash model is the process dying mid-run: every log file survives as
a prefix of what was appended to it, in append order.  Because a
statement's data records are appended (and flushed) before its commit
marker, the reachable crash states are exactly: the first ``k`` commit
markers, all data records those markers name, plus optionally some
uncommitted records (and torn bytes) of the statement in flight.  For a
generated DML program we enumerate every such ``k`` and assert recovery
lands precisely on the ``k``-th committed state.
"""

import json
import shutil
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro import types as t
from repro.catalog import DistributionPolicy, TableSchema
from repro.durability.wal import scan

# one segment keeps the append order total (one data log), so every
# crash point is a clean prefix; multi-segment crashes are exercised
# end-to-end by tools/crash_chaos.py
SEGMENTS = 1

statements = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(min_value=1, max_value=6)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
    ),
    min_size=1,
    max_size=5,
)


def _state(db):
    if not db.catalog.has_table("kv"):
        return None
    return sorted(db.sql("SELECT k, v FROM kv").rows)


def _run_program(data_dir, program):
    """Run the program, recording the table state after each commit
    marker; returns {marker_count: state}."""
    db = Database(num_segments=SEGMENTS, data_dir=str(data_dir))
    commit_wal = Path(data_dir) / "wal" / "commit.wal"
    states = {0: None}

    def snap():
        records, _ = scan(commit_wal)
        states[len(records)] = _state(db)

    db.create_table(
        "kv",
        TableSchema.of(("k", t.INT), ("v", t.INT)),
        distribution=DistributionPolicy.hashed("k"),
    )
    snap()
    next_key = 0
    for kind, argument in program:
        if kind == "insert":
            db.insert(
                "kv", [(next_key + i, argument) for i in range(argument)]
            )
            next_key += argument
        else:
            db.sql(f"DELETE FROM kv WHERE k < {argument}")
        snap()
    db.durability.close()
    return states


def _build_crash(base, wal_dir, k, torn):
    """Materialize the crash state with the first ``k`` commit markers
    under ``base``; returns its path."""
    commit_lines = (wal_dir / "commit.wal").read_bytes().splitlines(
        keepends=True
    )
    seg_lines = (wal_dir / "seg0.wal").read_bytes().splitlines(keepends=True)
    committed = set()
    catalog_lsns = {
        r["lsn"] for r in scan(wal_dir / "catalog.wal")[0]
    }
    for line in commit_lines[:k]:
        committed.update(json.loads(line)["lsns"])
    keep = sum(
        1 for line in seg_lines if json.loads(line)["lsn"] in committed
    )
    assert committed - catalog_lsns == {
        json.loads(line)["lsn"] for line in seg_lines[:keep]
    }, "committed data records must form a prefix of the segment log"

    crash = Path(tempfile.mkdtemp(dir=base)) / "data"
    crash_wal = crash / "wal"
    crash_wal.mkdir(parents=True)
    shutil.copy(wal_dir / "catalog.wal", crash_wal / "catalog.wal")
    (crash_wal / "commit.wal").write_bytes(b"".join(commit_lines[:k]))
    # the statement in flight may have appended one more (uncommitted)
    # record, and the crash may have torn a partial line after it
    extra = 1 if keep < len(seg_lines) else 0
    tail = b'{"torn": ' if torn else b""
    (crash_wal / "seg0.wal").write_bytes(
        b"".join(seg_lines[: keep + extra]) + tail
    )
    return crash


@given(program=statements, torn=st.booleans())
@settings(max_examples=15, deadline=None)
def test_crash_at_any_record_recovers_a_committed_prefix(program, torn):
    base = tempfile.mkdtemp(prefix="repro-crash-prop-")
    try:
        live_dir = Path(base) / "live"
        states = _run_program(live_dir, program)
        wal_dir = live_dir / "wal"
        for k in sorted(states):
            crash_dir = _build_crash(base, wal_dir, k, torn)
            recovered = Database(num_segments=SEGMENTS, data_dir=str(crash_dir))
            assert _state(recovered) == states[k], (
                f"crash after {k} commit markers (torn={torn}) recovered "
                f"the wrong state for program {program}"
            )
            recovered.durability.close()
    finally:
        shutil.rmtree(base)
