"""Unit tests for the WAL file format: CRC stamping, torn-tail
tolerance, corruption detection, physical truncation on reopen."""

import pytest

from repro.durability.wal import (
    WalFile,
    encode_record,
    record_crc,
    scan,
)
from repro.errors import WalCorruption


def _lines(path):
    return path.read_bytes().split(b"\n")


def test_append_scan_round_trip(tmp_path):
    path = tmp_path / "seg.wal"
    wal, records = WalFile.open(path)
    assert records == []
    wal.append({"type": "insert", "lsn": 1, "rows": [[10, [1, "a"]]]})
    wal.append({"type": "delete", "lsn": 2, "rows": [[1, "a"]]})
    wal.close()
    records, offset = scan(path)
    assert [r["lsn"] for r in records] == [1, 2]
    assert records[0]["rows"] == [[10, [1, "a"]]]
    assert offset == path.stat().st_size


def test_crc_is_stable_under_key_order(tmp_path):
    a = record_crc({"type": "insert", "lsn": 3, "rows": []})
    b = record_crc({"rows": [], "lsn": 3, "type": "insert"})
    assert a == b


def test_torn_tail_is_dropped(tmp_path):
    path = tmp_path / "seg.wal"
    wal, _ = WalFile.open(path)
    wal.append({"type": "insert", "lsn": 1, "rows": []})
    wal.append({"type": "insert", "lsn": 2, "rows": []})
    wal.close()
    good_size = path.stat().st_size
    # simulate a crash mid-append: half of a third record
    tail = encode_record({"type": "insert", "lsn": 3, "rows": []})
    with open(path, "ab") as fh:
        fh.write(tail[: len(tail) // 2])
    records, offset = scan(path)
    assert [r["lsn"] for r in records] == [1, 2]
    assert offset == good_size


def test_flipped_bit_in_tail_is_dropped(tmp_path):
    path = tmp_path / "seg.wal"
    wal, _ = WalFile.open(path)
    wal.append({"type": "insert", "lsn": 1, "rows": []})
    wal.append({"type": "insert", "lsn": 2, "rows": [[5, [9]]]})
    wal.close()
    body = bytearray(path.read_bytes())
    body[-5] ^= 0x40  # corrupt the last record's payload
    path.write_bytes(bytes(body))
    records, _ = scan(path)
    assert [r["lsn"] for r in records] == [1]


def test_corruption_before_valid_records_raises(tmp_path):
    path = tmp_path / "seg.wal"
    wal, _ = WalFile.open(path)
    wal.append({"type": "insert", "lsn": 1, "rows": []})
    wal.append({"type": "insert", "lsn": 2, "rows": []})
    wal.close()
    lines = _lines(path)
    # corrupt the FIRST record: damage in the middle of the log is not a
    # torn tail and must refuse to load rather than skip silently
    lines[0] = lines[0][:-4] + b"XXXX"
    path.write_bytes(b"\n".join(lines))
    with pytest.raises(WalCorruption):
        scan(path)


def test_reopen_truncates_torn_tail_physically(tmp_path):
    path = tmp_path / "seg.wal"
    wal, _ = WalFile.open(path)
    wal.append({"type": "insert", "lsn": 1, "rows": []})
    wal.close()
    with open(path, "ab") as fh:
        fh.write(b'{"half a rec')
    wal, records = WalFile.open(path)
    assert [r["lsn"] for r in records] == [1]
    # the torn bytes are gone from disk; a new append lands cleanly
    wal.append({"type": "insert", "lsn": 2, "rows": []})
    wal.close()
    records, _ = scan(path)
    assert [r["lsn"] for r in records] == [1, 2]


def test_reset_empties_the_log(tmp_path):
    path = tmp_path / "seg.wal"
    wal, _ = WalFile.open(path)
    wal.append({"type": "insert", "lsn": 1, "rows": []})
    wal.reset()
    wal.append({"type": "insert", "lsn": 2, "rows": []})
    wal.close()
    records, _ = scan(path)
    assert [r["lsn"] for r in records] == [2]


def test_missing_file_scans_empty(tmp_path):
    records, offset = scan(tmp_path / "never-written.wal")
    assert records == []
    assert offset == 0


def test_counters(tmp_path):
    wal, _ = WalFile.open(tmp_path / "seg.wal")
    n = wal.append({"type": "insert", "lsn": 1, "rows": []})
    wal.sync()
    assert wal.records_written == 1
    assert wal.bytes_written == n > 0
    assert wal.fsyncs == 1
    assert wal.size() == n
    wal.close()
