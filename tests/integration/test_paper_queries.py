"""End-to-end runs of the paper's motivating queries (Figures 1-6)."""

import datetime

import pytest

from tests.conftest import approx_rows


def _reference_orders(db, lo, hi):
    """Serial reference evaluation against raw storage."""
    rows = list(db.storage.store_by_name("orders").scan_all())
    picked = [amount for _, amount, day in rows if lo <= day <= hi]
    return sum(picked) / len(picked)


def test_figure_2_static_elimination(orders_db):
    """Q4-2013 summary touches the last 3 of 24 monthly partitions."""
    result = orders_db.sql(
        "SELECT avg(amount) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013'"
    )
    expected = _reference_orders(
        orders_db, datetime.date(2013, 10, 1), datetime.date(2013, 12, 31)
    )
    assert result.rows[0][0] == pytest.approx(expected)
    assert result.partitions_scanned("orders") == 3


def test_figure_4_dynamic_elimination(orders_db):
    """The rewritten star-schema form: partitions are only known after
    evaluating the dimension subquery — still 3 of 24 scanned."""
    result = orders_db.sql(
        "SELECT avg(amount) FROM orders_fk WHERE date_id IN "
        "(SELECT date_id FROM date_dim "
        " WHERE year = 2013 AND month BETWEEN 10 AND 12)"
    )
    assert result.partitions_scanned("orders_fk") == 3

    baseline = orders_db.sql(
        "SELECT avg(amount) FROM orders_fk WHERE date_id IN "
        "(SELECT date_id FROM date_dim "
        " WHERE year = 2013 AND month BETWEEN 10 AND 12)",
        enable_partition_elimination=False,
    )
    assert baseline.partitions_scanned("orders_fk") == 24
    assert result.rows[0][0] == pytest.approx(baseline.rows[0][0])


def test_figure_6_three_way_join(orders_db):
    """The Figure 6 shape: fact + two dimensions, one filter per dim."""
    sql = (
        "SELECT count(*) FROM orders_fk s, date_dim d "
        "WHERE d.month BETWEEN 10 AND 12 AND d.date_id = s.date_id "
        "AND s.order_id < 1000"
    )
    result = orders_db.sql(sql)
    reference = orders_db.sql(sql, enable_partition_elimination=False)
    assert result.rows == reference.rows
    assert result.partitions_scanned("orders_fk") < 24


def test_full_scan_touches_all_partitions(orders_db):
    result = orders_db.sql("SELECT count(*) FROM orders")
    assert result.rows == [(2400,)]
    assert result.partitions_scanned("orders") == 24


def test_equality_selects_single_partition(orders_db):
    result = orders_db.sql(
        "SELECT count(*) FROM orders WHERE date = '06-15-2012'"
    )
    assert result.partitions_scanned("orders") == 1


def test_empty_selection(orders_db):
    """A predicate outside every partition selects nothing but still
    returns a correct (empty/zero) result."""
    result = orders_db.sql(
        "SELECT count(*) FROM orders WHERE date > '01-01-2020'"
    )
    assert result.rows == [(0,)]
    assert result.partitions_scanned("orders") == 0


def test_multilevel_queries(multilevel_db):
    """Figure 9/10: predicates on either or both levels."""
    both = multilevel_db.sql(
        "SELECT count(*) FROM orders2 "
        "WHERE date_id BETWEEN 10 AND 19 AND region = 'Region 1'"
    )
    assert both.partitions_scanned("orders2") == 1

    date_only = multilevel_db.sql(
        "SELECT count(*) FROM orders2 WHERE date_id BETWEEN 10 AND 19"
    )
    assert date_only.partitions_scanned("orders2") == 2

    region_only = multilevel_db.sql(
        "SELECT count(*) FROM orders2 WHERE region = 'Region 2'"
    )
    assert region_only.partitions_scanned("orders2") == 24

    total = multilevel_db.sql("SELECT count(*) FROM orders2")
    assert total.partitions_scanned("orders2") == 48
    assert (
        both.rows[0][0] + region_only.rows[0][0] <= total.rows[0][0]
    )


def test_planner_and_orca_agree_on_paper_queries(orders_db):
    queries = [
        "SELECT avg(amount) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013'",
        "SELECT count(*) FROM orders WHERE date = '06-15-2012'",
        "SELECT avg(amount) FROM orders_fk WHERE date_id IN "
        "(SELECT date_id FROM date_dim WHERE year = 2013 AND month = 11)",
        "SELECT count(*) FROM orders_fk s, date_dim d "
        "WHERE d.date_id = s.date_id AND d.month = 7",
    ]
    for sql in queries:
        orca = orders_db.sql(sql)
        planner = orders_db.sql(sql, optimizer="planner")
        assert approx_rows(orca.rows, planner.rows), sql
