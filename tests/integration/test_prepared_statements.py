"""Prepared statements (Section 1): parameter values are only available at
run time, so partition selection must be deferred — one plan, many
executions, each scanning only the parameter's partitions."""

import pytest

from repro.physical.ops import Append, PartitionSelector


def test_one_plan_many_parameter_bindings(rs_db):
    plan = rs_db.plan("SELECT count(*) FROM r WHERE b = $1", parameter_count=1)
    selector = next(
        op for op in plan.walk() if isinstance(op, PartitionSelector)
    )
    assert selector.spec.has_predicates  # the $1 predicate is kept

    reference = {
        value: rs_db.sql(f"SELECT count(*) FROM r WHERE b = {value}").rows
        for value in (0, 4321, 9999)
    }
    for value, expected in reference.items():
        result = rs_db.execute_plan(plan, params=[value])
        assert result.rows == expected
        assert result.partitions_scanned("r") == 1


def test_parameter_range_predicate(rs_db):
    plan = rs_db.plan("SELECT count(*) FROM r WHERE b < $1", parameter_count=1)
    narrow = rs_db.execute_plan(plan, params=[500])
    wide = rs_db.execute_plan(plan, params=[9500])
    assert narrow.partitions_scanned("r") == 1
    assert wide.partitions_scanned("r") == 10
    assert narrow.rows[0][0] <= wide.rows[0][0]


def test_planner_cannot_prune_parameters(rs_db):
    """The baseline lists (and scans) every partition for a parameterised
    predicate — its elimination is plan-time-only."""
    plan = rs_db.plan(
        "SELECT count(*) FROM r WHERE b = $1",
        optimizer="planner",
        parameter_count=1,
    )
    append = next(op for op in plan.walk() if isinstance(op, Append))
    assert len(append.children) == 10
    orca_result = rs_db.sql("SELECT count(*) FROM r WHERE b = $1", params=[42])
    planner_result = rs_db.execute_plan(plan, params=[42])
    assert orca_result.rows == planner_result.rows
    assert orca_result.partitions_scanned("r") == 1
    assert planner_result.partitions_scanned("r") == 10


def test_parameter_in_projection(rs_db):
    result = rs_db.sql(
        "SELECT a + $1 FROM r WHERE b < 100", params=[1000]
    )
    assert all(row[0] >= 1000 for row in result.rows)


def test_missing_parameter_errors(rs_db):
    from repro.errors import ExecutionError

    plan = rs_db.plan("SELECT count(*) FROM r WHERE b = $2", parameter_count=2)
    with pytest.raises(ExecutionError):
        rs_db.execute_plan(plan, params=[1])
