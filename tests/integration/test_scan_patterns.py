"""The paper's Figure 5 scan patterns, built explicitly through the
placement module and executed on the MPP simulator:

(a) full scan                  — Sequence(PartitionSelector(Φ), DynamicScan)
(b) equality partition selection
(c) range partition selection
(d) join partition selection   — selector on the join's opposite side
"""

import pytest

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    range_level,
)
from repro.expr.ast import BoolExpr, ColumnRef, Comparison, Literal
from repro.optimizer.placement import place_part_selectors
from repro.physical.ops import (
    DynamicScan,
    Filter,
    HashJoin,
    PartitionSelector,
    Scan,
    Sequence,
)
from repro.physical.plan import Plan


@pytest.fixture(scope="module")
def db() -> Database:
    """Table T with partitions T1..T100 holding pk in [(i-1)*10+1, i*10)
    — the paper's running example — plus R(a, b)."""
    database = Database(num_segments=2)
    bounds = [i * 10 + 1 for i in range(100)] + [1001]
    database.create_table(
        "t",
        TableSchema.of(("pk", t.INT), ("payload", t.INT)),
        distribution=DistributionPolicy.hashed("pk"),
        partition_scheme=PartitionScheme([range_level("pk", bounds)]),
    )
    database.insert("t", [(pk, pk * 2) for pk in range(1, 1001)])
    database.create_table(
        "r",
        TableSchema.of(("a", t.INT), ("b", t.INT)),
        distribution=DistributionPolicy.replicated(),
    )
    database.insert("r", [(55, 1), (56, 2), (350, 3)])
    database.analyze()
    return database


def _gather_rows(db, root):
    from repro.physical.ops import GatherMotion

    plan = Plan(GatherMotion(root))
    return db.execute_plan(plan)


def test_figure_5a_full_scan(db):
    table = db.catalog.table("t")
    placed = place_part_selectors(DynamicScan(table, "t", 1))
    assert isinstance(placed, Sequence)
    result = _gather_rows(db, placed)
    assert len(result.rows) == 1000
    assert result.partitions_scanned("t") == 100


def test_figure_5b_equality_selection(db):
    table = db.catalog.table("t")
    pk = ColumnRef("pk", "t")
    tree = Filter(DynamicScan(table, "t", 1), Comparison("=", pk, Literal(46)))
    placed = place_part_selectors(tree)
    result = _gather_rows(db, placed)
    assert result.rows == [(46, 92)]
    assert result.partitions_scanned("t") == 1  # only T5


def test_figure_5c_range_selection(db):
    """pk in [35, 60] spans partitions T4, T5, T6."""
    table = db.catalog.table("t")
    pk = ColumnRef("pk", "t")
    predicate = BoolExpr(
        "AND",
        [
            Comparison(">=", pk, Literal(35)),
            Comparison("<=", pk, Literal(60)),
        ],
    )
    placed = place_part_selectors(Filter(DynamicScan(table, "t", 1), predicate))
    result = _gather_rows(db, placed)
    assert len(result.rows) == 26
    assert result.partitions_scanned("t") == 3


def test_figure_5d_join_selection(db):
    """R.a = T.pk with the selector on the opposite side of the scan —
    only the partitions holding R's three values are opened."""
    table = db.catalog.table("t")
    r = db.catalog.table("r")
    tree = HashJoin(
        "inner",
        Scan(r, "r"),
        DynamicScan(table, "t", 1),
        [ColumnRef("a", "r")],
        [ColumnRef("pk", "t")],
    )
    placed = place_part_selectors(tree)
    # selector sits on the build (R) side
    build = placed.children[0]
    assert isinstance(build, PartitionSelector)
    result = _gather_rows(db, placed)
    assert sorted(row[0] for row in result.rows) == [55, 56, 350]
    # 55 and 56 share T6; 350 is in T35 -> two partitions
    assert result.partitions_scanned("t") == 2
