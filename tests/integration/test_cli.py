"""The interactive shell session logic (driven without a terminal)."""

import pytest

from repro.cli import ReplSession


@pytest.fixture()
def session() -> ReplSession:
    repl = ReplSession()
    repl.handle_line("\\demo")
    return repl


def test_demo_and_query(session):
    output = session.handle_line(
        "SELECT avg(amount) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013';"
    )
    assert "avg" in output
    assert "partitions scanned: 3" in output
    assert "(1 rows)" in output


def test_multiline_statement(session):
    assert session.handle_line("SELECT count(*)") == ""
    assert session.prompt != "repro=# "
    output = session.handle_line("FROM orders;")
    assert "5000" in output


def test_blank_line_submits(session):
    session.handle_line("SELECT count(*) FROM date_dim")
    output = session.handle_line("")
    assert "730" in output


def test_describe(session):
    listing = session.handle_line("\\d")
    assert "orders" in listing and "24 parts" in listing
    detail = session.handle_line("\\d orders")
    assert "date" in detail and "leaves" in detail
    assert "unknown table" in session.handle_line("\\d nope")


def test_explain_and_optimizer_switch(session):
    plan = session.handle_line("\\explain SELECT count(*) FROM orders;")
    assert "DynamicScan" in plan
    assert "planner" in session.handle_line("\\optimizer planner")
    plan = session.handle_line("\\explain SELECT count(*) FROM orders")
    assert "LeafScan" in plan
    assert "unknown optimizer" in session.handle_line("\\optimizer foo")


def test_timing_toggle(session):
    assert "on" in session.handle_line("\\timing")
    output = session.handle_line("SELECT count(*) FROM orders;")
    assert "time:" in output


def test_errors_are_reported_not_raised(session):
    output = session.handle_line("SELECT zzz FROM orders;")
    assert output.startswith("ERROR (")
    assert session.errors == 1
    assert "unknown command" in session.handle_line("\\frobnicate")


def test_error_lines_carry_the_failing_stage(session):
    assert session.handle_line("SELEC 1;").startswith("ERROR (sql):")
    assert session.handle_line("SELECT zzz FROM orders;").startswith(
        "ERROR (bind):"
    )
    assert session.handle_line(
        "SELECT count(*) FROM no_such_table;"
    ).startswith("ERROR (")


def test_set_inject_fault_and_failover(session):
    out = session.handle_line(
        "SET inject_fault scan_row segment=1 mode=fail_once;"
    )
    assert "armed" in out
    output = session.handle_line("SELECT count(*) FROM orders;")
    assert "5000" in output
    assert "resilience:" in output and "1 failovers" in output
    health = session.handle_line("\\health")
    assert "down" in health
    session.db.health.recover_all()
    assert "disarmed" in session.handle_line("SET inject_fault off;")


def test_set_inject_fault_rejects_bad_input(session):
    assert session.handle_line("SET inject_fault bogus_point;").startswith(
        "ERROR (sql):"
    )
    assert session.handle_line(
        "SET inject_fault scan_row mode=sometimes;"
    ).startswith("ERROR (sql):")
    assert session.handle_line(
        "SET inject_fault scan_row segment=x;"
    ).startswith("ERROR (sql):")


def test_set_guardrails(session):
    assert "0.001" in session.handle_line("SET timeout_seconds 0.001;")
    # A deliberately slow query: joins without the fast path, so the
    # per-row tick has time to observe the deadline.
    output = session.handle_line(
        "SELECT count(*) FROM orders o, orders_fk f "
        "WHERE o.order_id = f.order_id;"
    )
    assert output.startswith("ERROR (execution):")
    assert "timeout" in output
    assert "off" in session.handle_line("SET timeout_seconds off;")

    assert "10" in session.handle_line("SET max_rows 10;")
    output = session.handle_line(
        "SELECT count(*) FROM orders o, orders_fk f "
        "WHERE o.order_id = f.order_id;"
    )
    assert output.startswith("ERROR (execution):")
    assert "max_rows" in output
    assert "off" in session.handle_line("SET max_rows off;")
    output = session.handle_line("SELECT count(*) FROM orders;")
    assert "5000" in output


def test_quit():
    repl = ReplSession()
    assert repl.handle_line("\\q") == "bye"
    assert repl.done


def test_help_and_empty():
    repl = ReplSession()
    assert "Meta commands" in repl.handle_line("\\help")
    assert repl.handle_line("") == ""
    assert "no tables" in repl.handle_line("\\d")


def test_explain_statement(session):
    plan = session.handle_line("EXPLAIN SELECT count(*) FROM orders;")
    assert "DynamicScan" in plan
    assert "actual rows" not in plan  # plain EXPLAIN does not execute


def test_explain_analyze_statement(session):
    output = session.handle_line(
        "EXPLAIN ANALYZE SELECT avg(amount) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013';"
    )
    assert "actual rows=" in output
    assert "partitions: 3/24" in output
    assert "Slice 0 (root):" in output
    assert "usage: EXPLAIN" in session.handle_line("explain;")
    assert session.handle_line("EXPLAIN ANALYZE SELECT nope;").startswith(
        "ERROR ("
    )


def test_explain_trace_statement(session):
    output = session.handle_line(
        "EXPLAIN (TRACE) SELECT count(*) FROM orders_fk, date_dim "
        "WHERE orders_fk.date_id = date_dim.date_id "
        "AND date_dim.year = 2013;"
    )
    assert "Optimization trace:" in output
    assert "Search summary:" in output
    assert "PartitionSelector" in output
    # the bare keyword spelling works too, and case is irrelevant
    output = session.handle_line(
        "explain trace SELECT count(*) FROM orders;"
    )
    assert "Search summary:" in output
    # EXPLAIN (TRACE) plans without executing
    assert "actual rows" not in output


def test_set_cache_and_cache_meta_command(session):
    # default: session follows the database default (off)
    out = session.handle_line("\\cache")
    assert out.startswith("session cache mode: off")
    assert "partitions" in out and "results" in out

    assert "cache is partitions" in session.handle_line("SET cache partitions;")
    query = "SELECT count(*) FROM orders WHERE date = '05-15-2013';"
    cold = session.handle_line(query)
    warm = session.handle_line(query)
    # the cache never changes what the shell prints (cache-on/off diffable)
    assert warm == cold
    view = session.handle_line("\\cache")
    assert "session cache mode: partitions" in view
    assert "cached statements" in view
    prom = session.handle_line("\\cache prometheus")
    assert "# TYPE repro_cache_hits_total counter" in prom
    assert 'repro_cache_entries{cache="partitions"} 1' in prom

    # \stats surfaces the cache totals next to the query statistics
    stats = session.handle_line("\\stats")
    assert "hits" in stats and "\\cache for detail" in stats
    assert "repro_cache_hits_total" in session.handle_line("\\stats prometheus")

    assert "1 entries dropped" in session.handle_line("\\cache clear")
    assert "usage: \\cache" in session.handle_line("\\cache bogus")

    assert "ERROR (sql)" in session.handle_line("SET cache sideways;")
    assert "cache is off" in session.handle_line("SET cache off;")
    assert "database default" in session.handle_line("SET cache default;")


def test_cache_results_mode_in_shell(session):
    session.handle_line("SET cache results;")
    query = "SELECT count(*) FROM orders WHERE date = '05-15-2013';"
    cold = session.handle_line(query)
    warm = session.handle_line(query)
    assert warm.splitlines()[:2] == cold.splitlines()[:2]  # identical rows
    # DML invalidates: the count the shell shows moves with the data
    session.handle_line(
        "INSERT INTO orders VALUES (99001, 10.0, '05-15-2013');"
    )
    after = session.handle_line(query)
    assert after != warm


def test_stats_meta_command(session):
    session.handle_line("SELECT count(*) FROM orders;")
    session.handle_line("SELECT count(*) FROM orders;")
    session.handle_line("SELECT count(*) FROM date_dim;")
    output = session.handle_line("\\stats")
    assert output.startswith("query statistics (")
    assert "select count ( * ) from orders" in output
    prom = session.handle_line("\\stats prometheus")
    assert "# TYPE repro_query_calls_total counter" in prom
    assert "usage: \\stats" in session.handle_line("\\stats bogus")
    assert "reset" in session.handle_line("\\stats reset")
    assert "empty" in session.handle_line("\\stats")


# ---------------------------------------------------------------------------
# serving integration
# ---------------------------------------------------------------------------


def test_sessions_without_server(session):
    assert "no server running" in session.handle_line("\\sessions")


def test_sessions_meta_command_with_serving_session():
    from repro import Database

    db = Database(num_segments=4)
    repl = ReplSession(db, serving_session=db.session(name="shell"))
    repl.handle_line("\\demo")
    repl.handle_line("SELECT count(order_id) FROM orders;")
    listing = repl.handle_line("\\sessions")
    assert "serving:" in listing
    assert "shell" in listing
    assert "1 admitted" in listing
    db._server.close()


def test_stats_prometheus_includes_serving_families():
    from repro import Database

    db = Database(num_segments=4)
    repl = ReplSession(db, serving_session=db.session(name="scrape"))
    repl.handle_line("\\demo")
    repl.handle_line("SELECT count(order_id) FROM orders;")
    body = repl.handle_line("\\stats prometheus")
    assert "repro_serving_admitted_total 1" in body
    assert 'repro_serving_session_inflight{session="scrape"}' in body
    db._server.close()


def test_inject_fault_arms_the_serving_sessions_injector():
    from repro import Database

    db = Database(num_segments=4)
    serving_session = db.session(name="chaos")
    repl = ReplSession(db, serving_session=serving_session)
    repl.handle_line("\\demo")
    output = repl.handle_line("SET inject_fault scan_row transient;")
    assert "armed" in output
    assert serving_session.faults.specs()
    assert not db.faults.specs()  # database-wide injector untouched
    result = repl.handle_line("SELECT count(order_id) FROM orders;")
    assert "5000" in result
    assert "retries" in result  # the session-scoped fault fired
    db._server.close()


def test_serving_repl_reports_overload_as_typed_error():
    from repro import Database
    from repro.errors import ServerOverloaded

    db = Database(num_segments=4)
    server = db.serve(max_concurrent=1, max_queued=0, session_max_inflight=1)
    blocker = server.session(name="blocker")
    repl = ReplSession(db, serving_session=server.session(name="shed"))
    repl.handle_line("\\demo")
    slot = server.admission.acquire(blocker.session_id)
    try:
        output = repl.handle_line("SELECT count(order_id) FROM orders;")
    finally:
        server.admission.release(slot)
    assert output.startswith("ERROR (serving)")
    assert repl.errors == 1
    # the queue-full shed is the typed ServerOverloaded, stage "serving"
    assert ServerOverloaded.stage == "serving"
    server.close()
