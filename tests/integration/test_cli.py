"""The interactive shell session logic (driven without a terminal)."""

import pytest

from repro.cli import ReplSession


@pytest.fixture()
def session() -> ReplSession:
    repl = ReplSession()
    repl.handle_line("\\demo")
    return repl


def test_demo_and_query(session):
    output = session.handle_line(
        "SELECT avg(amount) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013';"
    )
    assert "avg" in output
    assert "partitions scanned: 3" in output
    assert "(1 rows)" in output


def test_multiline_statement(session):
    assert session.handle_line("SELECT count(*)") == ""
    assert session.prompt != "repro=# "
    output = session.handle_line("FROM orders;")
    assert "5000" in output


def test_blank_line_submits(session):
    session.handle_line("SELECT count(*) FROM date_dim")
    output = session.handle_line("")
    assert "730" in output


def test_describe(session):
    listing = session.handle_line("\\d")
    assert "orders" in listing and "24 parts" in listing
    detail = session.handle_line("\\d orders")
    assert "date" in detail and "leaves" in detail
    assert "unknown table" in session.handle_line("\\d nope")


def test_explain_and_optimizer_switch(session):
    plan = session.handle_line("\\explain SELECT count(*) FROM orders;")
    assert "DynamicScan" in plan
    assert "planner" in session.handle_line("\\optimizer planner")
    plan = session.handle_line("\\explain SELECT count(*) FROM orders")
    assert "LeafScan" in plan
    assert "unknown optimizer" in session.handle_line("\\optimizer foo")


def test_timing_toggle(session):
    assert "on" in session.handle_line("\\timing")
    output = session.handle_line("SELECT count(*) FROM orders;")
    assert "time:" in output


def test_errors_are_reported_not_raised(session):
    assert "error" in session.handle_line("SELECT zzz FROM orders;")
    assert "unknown command" in session.handle_line("\\frobnicate")


def test_quit():
    repl = ReplSession()
    assert repl.handle_line("\\q") == "bye"
    assert repl.done


def test_help_and_empty():
    repl = ReplSession()
    assert "Meta commands" in repl.handle_line("\\help")
    assert repl.handle_line("") == ""
    assert "no tables" in repl.handle_line("\\d")


def test_explain_statement(session):
    plan = session.handle_line("EXPLAIN SELECT count(*) FROM orders;")
    assert "DynamicScan" in plan
    assert "actual rows" not in plan  # plain EXPLAIN does not execute


def test_explain_analyze_statement(session):
    output = session.handle_line(
        "EXPLAIN ANALYZE SELECT avg(amount) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013';"
    )
    assert "actual rows=" in output
    assert "partitions: 3/24" in output
    assert "Slice 0 (root):" in output
    assert "usage: EXPLAIN" in session.handle_line("explain;")
    assert "error:" in session.handle_line("EXPLAIN ANALYZE SELECT nope;")
