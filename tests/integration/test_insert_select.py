"""INSERT ... SELECT: loading through the planner/executor pipeline with
re-routing through ``f_T``."""

import pytest

from repro import Database, ReproError
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)


@pytest.fixture()
def db() -> Database:
    database = Database(num_segments=2)
    database.create_table(
        "src", TableSchema.of(("a", t.INT), ("b", t.INT))
    )
    database.create_table(
        "dst",
        TableSchema.of(("a", t.INT), ("b", t.INT)),
        distribution=DistributionPolicy.hashed("a"),
        partition_scheme=PartitionScheme([uniform_int_level("b", 0, 100, 4)]),
    )
    database.insert("src", [(i, i % 100) for i in range(60)])
    database.analyze()
    return database


def test_insert_select_routes_partitions(db):
    result = db.sql("INSERT INTO dst SELECT a, b FROM src WHERE b < 50")
    assert result.rows == [(50,)]  # b ranges over 0..59 in src
    stats_query = db.sql("SELECT count(*) FROM dst WHERE b < 25")
    assert stats_query.rows == [(25,)]
    assert stats_query.partitions_scanned("dst") == 1


def test_insert_select_with_expressions(db):
    db.sql("INSERT INTO dst SELECT a + 1000, b FROM src WHERE b = 7")
    rows = list(db.storage.store_by_name("dst").scan_all())
    assert all(a >= 1000 for a, _ in rows)


def test_insert_select_column_count_checked(db):
    with pytest.raises(ReproError):
        db.sql("INSERT INTO dst SELECT a FROM src")


def test_insert_select_type_checked(db):
    db.create_table("texts", TableSchema.of(("s", t.TEXT), ("n", t.INT)))
    db.sql("INSERT INTO texts VALUES ('x', 1)")
    with pytest.raises(Exception):
        db.sql("INSERT INTO dst SELECT s, n FROM texts")


def test_insert_select_out_of_range_partition_rejected(db):
    from repro.errors import PartitionError

    db.sql("INSERT INTO src VALUES (1, 999)")
    with pytest.raises(PartitionError):
        db.sql("INSERT INTO dst SELECT a, b FROM src WHERE b = 999")


def test_insert_select_from_partitioned_table(db):
    db.sql("INSERT INTO dst SELECT a, b FROM src")
    result = db.sql(
        "INSERT INTO src SELECT a, b FROM dst WHERE b BETWEEN 25 AND 49"
    )
    assert result.rows[0][0] > 0
    # the SELECT half used partition elimination
    assert result.partitions_scanned("dst") == 1
