"""Dynamic elimination on multi-level partitioned tables (Section 2.4):
the extended spec carries one predicate per level, and join-form and
constant predicates may mix across levels."""

import random

import pytest

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    list_level,
    uniform_int_level,
)

MONTHS = 12
REGIONS = ("R1", "R2", "R3")


@pytest.fixture(scope="module")
def db() -> Database:
    database = Database(num_segments=2)
    database.create_table(
        "sales",
        TableSchema.of(
            ("sid", t.INT),
            ("date_id", t.INT),
            ("region", t.TEXT),
            ("amount", t.FLOAT),
        ),
        distribution=DistributionPolicy.hashed("sid"),
        partition_scheme=PartitionScheme(
            [
                uniform_int_level("date_id", 0, 120, MONTHS),
                list_level("region", [(r.lower(), [r]) for r in REGIONS]),
            ]
        ),
    )
    database.create_table(
        "dates",
        TableSchema.of(("date_id", t.INT), ("quarter", t.INT)),
        distribution=DistributionPolicy.hashed("date_id"),
    )
    rng = random.Random(31)
    database.insert(
        "sales",
        [
            (
                i,
                rng.randrange(120),
                rng.choice(REGIONS),
                round(rng.uniform(1, 10), 2),
            )
            for i in range(2000)
        ],
    )
    database.insert(
        "dates", [(d, d // 30 % 4 + 1) for d in range(120)]
    )
    database.analyze()
    return database


TOTAL = MONTHS * len(REGIONS)


def test_join_on_first_level_with_constant_second_level(db):
    """DPE binds the date level through the join; the region level prunes
    statically — both in one extended PartSelectorSpec."""
    sql = (
        "SELECT sum(s.amount) FROM sales s, dates d "
        "WHERE s.date_id = d.date_id AND d.quarter = 1 "
        "AND s.region = 'R2'"
    )
    result = db.sql(sql)
    baseline = db.sql(sql, enable_partition_elimination=False)
    assert result.rows[0][0] == pytest.approx(baseline.rows[0][0])
    assert baseline.partitions_scanned("sales") == TOTAL
    # one region out of 3, and only quarter-1 months
    assert result.partitions_scanned("sales") < TOTAL / 3


def test_join_on_first_level_only(db):
    sql = (
        "SELECT count(*) FROM sales s, dates d "
        "WHERE s.date_id = d.date_id AND d.quarter = 2"
    )
    result = db.sql(sql)
    baseline = db.sql(sql, enable_partition_elimination=False)
    assert result.rows == baseline.rows
    assert result.partitions_scanned("sales") < TOTAL
    # all 3 regions of the surviving months remain
    assert result.partitions_scanned("sales") % len(REGIONS) == 0


def test_subquery_on_first_level(db):
    sql = (
        "SELECT count(*) FROM sales WHERE date_id IN "
        "(SELECT date_id FROM dates WHERE quarter = 3) "
        "AND region = 'R1'"
    )
    result = db.sql(sql)
    baseline = db.sql(sql, enable_partition_elimination=False)
    assert result.rows == baseline.rows
    assert result.partitions_scanned("sales") < TOTAL / 3


def test_planner_multilevel_param_dpe_not_applicable(db):
    """The legacy mechanism handles single-level tables only — multi-level
    joins fall back to scanning every listed leaf."""
    sql = (
        "SELECT count(*) FROM sales s, dates d "
        "WHERE s.date_id = d.date_id AND d.quarter = 1"
    )
    planner = db.sql(sql, optimizer="planner")
    orca = db.sql(sql)
    assert sorted(planner.rows) == sorted(orca.rows)
    assert planner.partitions_scanned("sales") == TOTAL
    assert orca.partitions_scanned("sales") < TOTAL
