"""The Database facade: DDL, INSERT via SQL, explain, options, errors."""

import pytest

from repro import Database, ReproError
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.errors import CatalogError


@pytest.fixture()
def db() -> Database:
    database = Database(num_segments=2)
    database.create_table(
        "t",
        TableSchema.of(("a", t.INT), ("b", t.TEXT)),
        distribution=DistributionPolicy.hashed("a"),
    )
    return database


def test_sql_insert_statement(db):
    result = db.sql("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
    assert result.rows == [(2,)]
    assert db.sql("SELECT count(*) FROM t").rows == [(2,)]


def test_insert_type_checked(db):
    with pytest.raises(Exception):
        db.sql("INSERT INTO t VALUES ('oops', 'x')")


def test_drop_table(db):
    db.drop_table("t")
    with pytest.raises(CatalogError):
        db.sql("SELECT * FROM t")
    # name can be reused
    db.create_table("t", TableSchema.of(("z", t.INT)))
    db.sql("INSERT INTO t VALUES (1)")
    assert db.sql("SELECT z FROM t").rows == [(1,)]


def test_explain_both_optimizers(db):
    db.sql("INSERT INTO t VALUES (1, 'x')")
    db.analyze()
    orca_text = db.explain("SELECT * FROM t WHERE a = 1")
    planner_text = db.explain("SELECT * FROM t WHERE a = 1", optimizer="planner")
    assert "Scan" in orca_text
    assert "GatherMotion" in planner_text


def test_unknown_optimizer(db):
    with pytest.raises(ReproError):
        db.sql("SELECT * FROM t", optimizer="postgres")


def test_unknown_option_rejected(db):
    with pytest.raises(TypeError):
        db.sql("SELECT * FROM t", enable_warp_drive=True)


def test_plan_is_reusable_and_side_effect_free(db):
    db.sql("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    db.analyze()
    plan = db.plan("SELECT count(*) FROM t WHERE a > 1")
    first = db.execute_plan(plan)
    second = db.execute_plan(plan)
    assert first.rows == second.rows == [(2,)]


def test_analyze_single_table(db):
    db.sql("INSERT INTO t VALUES (1, 'x')")
    db.analyze("t")
    stats = db.statistics.get(db.catalog.table("t"))
    assert stats.row_count == 1


def test_bind_rejects_insert(db):
    with pytest.raises(ReproError):
        db.bind("INSERT INTO t VALUES (1, 'x')")


def test_partitioned_ddl_through_facade():
    database = Database(num_segments=2)
    desc = database.create_table(
        "p",
        TableSchema.of(("k", t.INT),),
        partition_scheme=PartitionScheme([uniform_int_level("k", 0, 10, 2)]),
    )
    assert desc.is_partitioned
    database.sql("INSERT INTO p VALUES (1), (7)")
    database.analyze()
    result = database.sql("SELECT count(*) FROM p WHERE k >= 5")
    assert result.rows == [(1,)]
    assert result.partitions_scanned("p") == 1


def test_empty_table_queries(db):
    db.analyze()
    assert db.sql("SELECT * FROM t").rows == []
    assert db.sql("SELECT count(*), sum(a) FROM t").rows == [(0, None)]
