"""DELETE statements: plain, partition-pruned, and DELETE ... USING."""

import random

import pytest

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.physical.ops import Delete, GatherMotion


@pytest.fixture()
def db() -> Database:
    database = Database(num_segments=3)
    database.create_table(
        "r",
        TableSchema.of(("a", t.INT), ("b", t.INT)),
        distribution=DistributionPolicy.hashed("a"),
        partition_scheme=PartitionScheme([uniform_int_level("b", 0, 1000, 10)]),
    )
    database.create_table(
        "s",
        TableSchema.of(("x", t.INT), ("y", t.INT)),
        distribution=DistributionPolicy.hashed("x"),
    )
    rng = random.Random(5)
    database.insert("r", [(i, rng.randrange(1000)) for i in range(300)])
    database.insert("s", [(i * 3, 0) for i in range(40)])
    database.analyze()
    return database


def test_delete_with_partition_pruning(db):
    before = db.sql("SELECT count(*) FROM r WHERE b < 100").rows[0][0]
    result = db.sql("DELETE FROM r WHERE b < 100")
    assert result.rows == [(before,)]
    # the DELETE itself only scanned the single qualifying partition
    assert result.partitions_scanned("r") == 1
    assert db.sql("SELECT count(*) FROM r WHERE b < 100").rows == [(0,)]
    assert db.sql("SELECT count(*) FROM r").rows == [(300 - before,)]


def test_delete_plan_shape(db):
    plan = db.plan("DELETE FROM r WHERE b < 100")
    assert isinstance(plan.root, Delete)
    assert isinstance(plan.root.children[0], GatherMotion)


def test_delete_using_join(db):
    matching = db.sql(
        "SELECT count(*) FROM r, s WHERE r.a = s.x"
    ).rows[0][0]
    result = db.sql("DELETE FROM r USING s WHERE r.a = s.x")
    assert result.rows == [(matching,)]
    assert db.sql(
        "SELECT count(*) FROM r, s WHERE r.a = s.x"
    ).rows == [(0,)]


def test_delete_nothing(db):
    result = db.sql("DELETE FROM r WHERE b < 0")
    assert result.rows == [(0,)]
    assert db.sql("SELECT count(*) FROM r").rows == [(300,)]


def test_delete_whole_table(db):
    result = db.sql("DELETE FROM r")
    assert result.rows == [(300,)]
    assert db.sql("SELECT count(*) FROM r").rows == [(0,)]


def test_delete_planner_agrees(db):
    orca_count = db.sql(
        "SELECT count(*) FROM r WHERE b BETWEEN 100 AND 299"
    ).rows[0][0]
    result = db.sql(
        "DELETE FROM r WHERE b BETWEEN 100 AND 299", optimizer="planner"
    )
    assert result.rows == [(orca_count,)]


def test_delete_duplicate_join_matches_once():
    """A USING join matching one target row several times deletes it once."""
    database = Database(num_segments=2)
    database.create_table("a", TableSchema.of(("k", t.INT), ("v", t.INT)))
    database.create_table("b", TableSchema.of(("k", t.INT), ("w", t.INT)))
    database.insert("a", [(1, 10), (2, 20)])
    database.insert("b", [(1, 0), (1, 1), (1, 2)])  # three matches for k=1
    database.analyze()
    result = database.sql("DELETE FROM a USING b WHERE a.k = b.k")
    assert result.rows == [(1,)]
    assert database.sql("SELECT count(*) FROM a").rows == [(1,)]
