"""Property-based cross-checks: pruned distributed execution must return
exactly what a naive serial reference evaluation returns, and both
optimizers must agree with each other."""

import json
import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from tests.conftest import approx_rows

ROWS = 400
DOMAIN = 1000
PARTS = 8


def _build_db() -> Database:
    db = Database(num_segments=3)
    db.create_table(
        "facts",
        TableSchema.of(("id", t.INT), ("key", t.INT), ("val", t.INT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [uniform_int_level("key", 0, DOMAIN, PARTS)]
        ),
    )
    db.create_table(
        "dim",
        TableSchema.of(("key", t.INT), ("grp", t.INT)),
        distribution=DistributionPolicy.hashed("key"),
    )
    rng = random.Random(99)
    db.insert(
        "facts",
        [
            (i, rng.randrange(DOMAIN), rng.randrange(50))
            for i in range(ROWS)
        ],
    )
    db.insert("dim", [(k, k % 10) for k in range(0, DOMAIN, 7)])
    db.analyze()
    return db


DB = _build_db()
FACT_ROWS = list(DB.storage.store_by_name("facts").scan_all())
DIM_ROWS = list(DB.storage.store_by_name("dim").scan_all())


bounds = st.integers(min_value=-50, max_value=DOMAIN + 50)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(bounds, st.integers(min_value=0, max_value=400))
def test_range_query_matches_reference(lo, width):
    hi = lo + width
    sql = f"SELECT id, val FROM facts WHERE key BETWEEN {lo} AND {hi}"
    result = DB.sql(sql)
    expected = sorted(
        (row[0], row[2]) for row in FACT_ROWS if lo <= row[1] <= hi
    )
    assert sorted(result.rows) == expected
    # soundness bound: never scan more partitions than exist
    assert result.partitions_scanned("facts") <= PARTS


@settings(max_examples=25, deadline=None)
@given(bounds)
def test_pruning_never_changes_results(cutoff):
    sql = f"SELECT count(*), sum(val) FROM facts WHERE key < {cutoff}"
    pruned = DB.sql(sql)
    unpruned = DB.sql(sql, enable_partition_elimination=False)
    assert pruned.rows == unpruned.rows
    assert (
        pruned.partitions_scanned("facts")
        <= unpruned.partitions_scanned("facts")
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=9))
def test_join_dpe_matches_reference(grp):
    sql = (
        "SELECT count(*) FROM facts f, dim d "
        f"WHERE f.key = d.key AND d.grp = {grp}"
    )
    result = DB.sql(sql)
    keys = {row[0] for row in DIM_ROWS if row[1] == grp}
    expected = sum(1 for row in FACT_ROWS if row[1] in keys)
    assert result.rows == [(expected,)]


@settings(max_examples=20, deadline=None)
@given(bounds, st.integers(min_value=0, max_value=9))
def test_optimizers_agree(cutoff, grp):
    queries = [
        f"SELECT id FROM facts WHERE key < {cutoff} AND val > 10",
        (
            "SELECT d.grp, count(*) AS cnt FROM facts f, dim d "
            f"WHERE f.key = d.key AND d.grp = {grp} GROUP BY d.grp"
        ),
    ]
    for sql in queries:
        orca = DB.sql(sql)
        planner = DB.sql(sql, optimizer="planner")
        assert approx_rows(orca.rows, planner.rows), sql


@settings(max_examples=20, deadline=None)
@given(bounds, st.integers(min_value=0, max_value=400))
def test_metrics_pruning_bounds(lo, width):
    """With analyze=True, the measured counters obey the paper's ordering:
    partitions(orca) <= partitions(planner) <= total leaves, and the
    metrics' root row count equals the returned row count."""
    hi = lo + width
    sql = f"SELECT id, val FROM facts WHERE key BETWEEN {lo} AND {hi}"
    orca = DB.sql(sql, analyze=True)
    planner = DB.sql(sql, optimizer="planner", analyze=True)
    orca_parts = orca.metrics.partitions_scanned("facts")
    planner_parts = planner.metrics.partitions_scanned("facts")
    assert orca_parts <= planner_parts <= PARTS
    for result in (orca, planner):
        data = json.loads(result.metrics.to_json())
        assert data["nodes"][0]["actual_rows"] == len(result.rows)
        table = data["tables"].get("facts")
        if table is not None:
            assert (
                table["partitions_scanned"]
                == result.metrics.partitions_scanned("facts")
            )
    assert sorted(orca.rows) == sorted(planner.rows)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=DOMAIN - 1),
        min_size=1,
        max_size=5,
    )
)
def test_in_list_pruning(keys):
    values = ", ".join(str(k) for k in keys)
    sql = f"SELECT count(*) FROM facts WHERE key IN ({values})"
    result = DB.sql(sql)
    expected = sum(1 for row in FACT_ROWS if row[1] in set(keys))
    assert result.rows == [(expected,)]
    distinct_parts = {k * PARTS // DOMAIN for k in keys}
    assert result.partitions_scanned("facts") <= len(distinct_parts)
