"""Expression evaluation: compiled closures, layouts, three-valued logic."""

import pytest

from repro.errors import BindError, ExecutionError
from repro.expr.ast import (
    AggCall,
    Arithmetic,
    Between,
    BoolExpr,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Literal,
    Parameter,
)
from repro.expr.eval import (
    RowLayout,
    compile_expression,
    compile_predicate,
    evaluate,
)

LAYOUT = RowLayout([("t", "a"), ("t", "b"), ("u", "a")])


def test_layout_resolution():
    assert LAYOUT.resolve(ColumnRef("b", "t")) == 1
    assert LAYOUT.resolve(ColumnRef("b")) == 1  # unique unqualified
    assert LAYOUT.resolve(ColumnRef("a", "u")) == 2
    with pytest.raises(BindError):
        LAYOUT.resolve(ColumnRef("a"))  # ambiguous
    with pytest.raises(BindError):
        LAYOUT.resolve(ColumnRef("zzz"))
    assert LAYOUT.has(ColumnRef("b"))
    assert not LAYOUT.has(ColumnRef("zzz"))


def test_layout_concat():
    left = RowLayout([("t", "a")])
    right = RowLayout([("u", "b")])
    merged = left.concat(right)
    assert merged.resolve(ColumnRef("b", "u")) == 1


def test_literals_and_columns():
    row = (1, 2, 3)
    assert evaluate(Literal(42), row, LAYOUT) == 42
    assert evaluate(ColumnRef("a", "t"), row, LAYOUT) == 1
    assert evaluate(ColumnRef("a", "u"), row, LAYOUT) == 3


@pytest.mark.parametrize(
    "op,left,right,expected",
    [
        ("=", 1, 1, True),
        ("=", 1, 2, False),
        ("<>", 1, 2, True),
        ("<", 1, 2, True),
        ("<=", 2, 2, True),
        (">", 3, 2, True),
        (">=", 1, 2, False),
        ("=", None, 1, None),
        ("<", 1, None, None),
    ],
)
def test_comparisons(op, left, right, expected):
    expr = Comparison(op, Literal(left), Literal(right))
    assert evaluate(expr) is expected


def test_three_valued_and_or():
    null = Literal(None)
    true, false = Literal(True), Literal(False)
    null_cmp = Comparison("=", null, Literal(1))
    assert evaluate(BoolExpr("AND", [true, null_cmp])) is None
    assert evaluate(BoolExpr("AND", [false, null_cmp])) is False
    assert evaluate(BoolExpr("OR", [true, null_cmp])) is True
    assert evaluate(BoolExpr("OR", [false, null_cmp])) is None
    assert evaluate(BoolExpr("NOT", [null_cmp])) is None
    assert evaluate(BoolExpr("NOT", [false])) is True


def test_between_and_in():
    assert evaluate(Between(Literal(5), Literal(1), Literal(10))) is True
    assert evaluate(Between(Literal(0), Literal(1), Literal(10))) is False
    assert evaluate(Between(Literal(None), Literal(1), Literal(10))) is None
    assert evaluate(InList(Literal(3), [1, 2, 3])) is True
    assert evaluate(InList(Literal(9), [1, 2, 3])) is False
    assert evaluate(InList(Literal(None), [1])) is None


def test_is_null():
    assert evaluate(IsNull(Literal(None))) is True
    assert evaluate(IsNull(Literal(1))) is False
    assert evaluate(IsNull(Literal(1), negated=True)) is True


def test_arithmetic():
    assert evaluate(Arithmetic("+", Literal(2), Literal(3))) == 5
    assert evaluate(Arithmetic("*", Literal(2), Literal(3))) == 6
    assert evaluate(Arithmetic("-", Literal(2), Literal(3))) == -1
    assert evaluate(Arithmetic("/", Literal(7), Literal(2))) == 3  # int div
    assert evaluate(Arithmetic("/", Literal(7.0), Literal(2))) == 3.5
    assert evaluate(Arithmetic("%", Literal(7), Literal(3))) == 1
    assert evaluate(Arithmetic("+", Literal(None), Literal(3))) is None
    with pytest.raises(ExecutionError):
        evaluate(Arithmetic("/", Literal(1), Literal(0)))


def test_parameters():
    expr = Comparison("=", Parameter(1), Literal(5))
    assert evaluate(expr, params=[5]) is True
    assert evaluate(expr, params=[6]) is False
    with pytest.raises(ExecutionError):
        evaluate(Parameter(2), params=[1])
    with pytest.raises(ValueError):
        Parameter(0)


def test_predicate_treats_null_as_false():
    pred = compile_predicate(
        Comparison("=", ColumnRef("a", "t"), Literal(1)), LAYOUT
    )
    assert pred((1, 0, 0)) is True
    assert pred((None, 0, 0)) is False


def test_aggregates_do_not_compile_inline():
    with pytest.raises(ExecutionError):
        compile_expression(AggCall("sum", Literal(1)), LAYOUT)


def test_compiled_closure_is_reusable():
    func = compile_expression(
        Arithmetic("+", ColumnRef("a", "t"), ColumnRef("b", "t")), LAYOUT
    )
    assert func((1, 2, 0)) == 3
    assert func((10, 20, 0)) == 30
