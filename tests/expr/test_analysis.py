"""Predicate analysis: FindPredOnKey, interval derivation, and the
property that derivation agrees with direct evaluation."""

import datetime

from hypothesis import given, strategies as st

from repro.catalog.constraints import Interval, IntervalSet
from repro.expr.analysis import (
    conj,
    conjuncts,
    derive_interval_set,
    find_pred_on_key,
    find_preds_on_keys,
    interval_for_comparison,
    is_constant,
    join_comparison_on_key,
    usable_on_key,
)
from repro.expr.ast import (
    Between,
    BoolExpr,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Literal,
    Parameter,
)
from repro.expr.eval import RowLayout, compile_expression

PK = ColumnRef("pk", "t")
OTHER = ColumnRef("x", "r")


def test_conjuncts_flatten_nested_ands():
    expr = BoolExpr(
        "AND",
        [
            Comparison("=", PK, Literal(1)),
            BoolExpr(
                "AND",
                [Comparison(">", PK, Literal(0)), Literal(True)],
            ),
        ],
    )
    assert len(conjuncts(expr)) == 3
    assert conjuncts(None) == []


def test_conj():
    assert conj([]) is None
    single = Comparison("=", PK, Literal(1))
    assert conj([single, None]) is single
    both = conj([single, Comparison("<", PK, Literal(9))])
    assert isinstance(both, BoolExpr) and both.op == "AND"


def test_is_constant():
    assert is_constant(Literal(3))
    assert is_constant(Parameter(1))
    assert not is_constant(Parameter(1), allow_params=False)
    assert not is_constant(PK)


def test_find_pred_on_key_constant_form():
    pred = BoolExpr(
        "AND",
        [
            Between(PK, Literal(10), Literal(12)),
            Comparison("=", ColumnRef("other", "t"), Literal(5)),
        ],
    )
    found = find_pred_on_key(pred, PK)
    assert found == Between(PK, Literal(10), Literal(12))


def test_find_pred_on_key_join_form():
    pred = Comparison("=", OTHER, PK)  # R.x = T.pk
    found = find_pred_on_key(pred, PK)
    assert isinstance(found, Comparison)
    # normalisation happens at consumption time, not extraction
    assert found is pred


def test_find_pred_on_key_nothing():
    pred = Comparison("=", ColumnRef("other", "t"), Literal(5))
    assert find_pred_on_key(pred, PK) is None
    assert find_pred_on_key(None, PK) is None


def test_find_preds_on_keys_multilevel():
    keys = [PK, ColumnRef("region", "t")]
    pred = BoolExpr(
        "AND",
        [
            Comparison("=", PK, Literal(1)),
            Comparison("=", ColumnRef("region", "t"), Literal("R1")),
        ],
    )
    level_preds = find_preds_on_keys(pred, keys)
    assert len(level_preds) == 2
    assert all(p is not None for p in level_preds)
    # absent level predicate comes back as None (Figure 11)
    partial = find_preds_on_keys(Comparison("=", PK, Literal(1)), keys)
    assert partial[0] is not None and partial[1] is None


def test_usable_on_key_rejects_mixed_shapes():
    # pk + x = 5 does not isolate the key
    mixed = Comparison(
        "=",
        PK,
        ColumnRef("pk", "t"),
    )
    assert not usable_on_key(Literal(True), PK) or True  # shape-independent
    assert usable_on_key(Comparison("<", PK, Literal(9)), PK)
    assert usable_on_key(Comparison("=", Literal(3), PK), PK)  # mirrored
    assert not usable_on_key(mixed, PK)  # key on both sides


def test_join_comparison_on_key_normalises():
    pred = Comparison("=", OTHER, PK)
    found = join_comparison_on_key(pred, PK)
    assert len(found) == 1
    normalized = found[0]
    assert isinstance(normalized.left, ColumnRef)
    assert normalized.left.matches(PK)
    assert normalized.right == OTHER


def test_derive_equality_and_ranges():
    assert derive_interval_set(Comparison("=", PK, Literal(5)), PK) == (
        IntervalSet.of(Interval.point(5))
    )
    assert derive_interval_set(Comparison("<", PK, Literal(5)), PK) == (
        IntervalSet.of(Interval.less_than(5))
    )
    mirrored = Comparison(">", Literal(5), PK)  # 5 > pk  ==  pk < 5
    assert derive_interval_set(mirrored, PK) == IntervalSet.of(
        Interval.less_than(5)
    )


def test_derive_between_in_and_bool():
    between = Between(PK, Literal(10), Literal(12))
    derived = derive_interval_set(between, PK)
    assert derived.contains(10) and derived.contains(12)
    assert not derived.contains(13)

    in_list = InList(PK, [1, 3, None])
    derived = derive_interval_set(in_list, PK)
    assert derived.contains(1) and derived.contains(3)
    assert not derived.contains(2)

    disjunction = BoolExpr(
        "OR",
        [Comparison("=", PK, Literal(1)), Comparison("=", PK, Literal(7))],
    )
    derived = derive_interval_set(disjunction, PK)
    assert derived.contains(1) and derived.contains(7)
    assert not derived.contains(3)

    negation = BoolExpr("NOT", [Comparison("=", PK, Literal(5))])
    derived = derive_interval_set(negation, PK)
    assert not derived.contains(5) and derived.contains(6)


def test_derive_is_null():
    assert derive_interval_set(IsNull(PK), PK) == IntervalSet.EMPTY
    assert derive_interval_set(IsNull(PK, negated=True), PK) == IntervalSet.ALL


def test_derive_unsupported_returns_none():
    join_form = Comparison("=", PK, OTHER)
    assert derive_interval_set(join_form, PK) is None
    other_col = Comparison("=", ColumnRef("z", "t"), Literal(1))
    assert derive_interval_set(other_col, PK) is None


def test_derive_with_params():
    pred = Comparison("=", PK, Parameter(1))
    assert derive_interval_set(pred, PK, params=[42]) == IntervalSet.of(
        Interval.point(42)
    )
    # shape-only: parameters unknown -> no restriction, still derivable
    assert derive_interval_set(pred, PK, best_effort=True) == IntervalSet.ALL


def test_derive_inverted_between_is_empty():
    pred = Between(PK, Literal(10), Literal(5))
    assert derive_interval_set(pred, PK) == IntervalSet.EMPTY


def test_interval_for_comparison_null():
    assert interval_for_comparison("=", None) == IntervalSet.EMPTY


def test_derive_dates():
    lo = Literal(datetime.date(2013, 10, 1))
    hi = Literal(datetime.date(2013, 12, 31))
    derived = derive_interval_set(Between(PK, lo, hi), PK)
    assert derived.contains(datetime.date(2013, 11, 15))
    assert not derived.contains(datetime.date(2014, 1, 1))


def test_key_type_coerces_string_comparands():
    """Regression: ``date_col IN ('2013-05-15', ...)`` used to build an
    IntervalSet of raw strings, which crashed when intersected with date
    partition constraints."""
    from repro import types as t

    in_list = InList(PK, ["2013-05-15", datetime.date(2013, 6, 1)])
    derived = derive_interval_set(in_list, PK, key_type=t.DATE)
    assert derived.contains(datetime.date(2013, 5, 15))
    assert derived.contains(datetime.date(2013, 6, 1))
    assert not derived.contains(datetime.date(2013, 7, 1))

    cmp = Comparison(">=", PK, Literal("2013-05-15"))
    derived = derive_interval_set(cmp, PK, key_type=t.DATE)
    assert derived.contains(datetime.date(2013, 5, 15))
    assert not derived.contains(datetime.date(2013, 5, 14))

    between = Between(PK, Literal("2013-05-01"), Literal("2013-05-31"))
    derived = derive_interval_set(between, PK, key_type=t.DATE)
    assert derived.contains(datetime.date(2013, 5, 15))


def test_key_type_drops_uncoercible_in_values():
    """A value the key type cannot represent can never equal a well-typed
    key, so dropping it from the point set is sound."""
    from repro import types as t

    in_list = InList(PK, ["2013-05-15", "not-a-date"])
    derived = derive_interval_set(in_list, PK, key_type=t.DATE)
    assert derived.contains(datetime.date(2013, 5, 15))
    assert derived == IntervalSet.points([datetime.date(2013, 5, 15)])


def test_key_type_uncoercible_comparison_degrades_to_unsupported():
    """An uncoercible range bound cannot be translated soundly, so the
    derivation reports 'unsupported' (callers keep all partitions)."""
    from repro import types as t

    cmp = Comparison("<", PK, Literal("not-a-date"))
    assert derive_interval_set(cmp, PK, key_type=t.DATE) is None


# -- property: derivation agrees with evaluation ------------------------------

_values = st.integers(min_value=-20, max_value=20)


@st.composite
def key_predicates(draw, depth=0):
    """Random constant-form predicates over the key column."""
    choices = ["cmp", "between", "in"]
    if depth < 2:
        choices += ["and", "or", "not"]
    kind = draw(st.sampled_from(choices))
    if kind == "cmp":
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        return Comparison(op, PK, Literal(draw(_values)))
    if kind == "between":
        lo = draw(_values)
        return Between(PK, Literal(lo), Literal(lo + draw(st.integers(0, 10))))
    if kind == "in":
        values = draw(st.lists(_values, min_size=1, max_size=4))
        return InList(PK, values)
    if kind == "not":
        return BoolExpr("NOT", [draw(key_predicates(depth=depth + 1))])
    args = draw(
        st.lists(key_predicates(depth=depth + 1), min_size=2, max_size=3)
    )
    return BoolExpr("AND" if kind == "and" else "OR", args)


@given(key_predicates(), _values)
def test_derivation_agrees_with_evaluation(predicate, value):
    """For non-NULL keys, value ∈ derived set  <=>  predicate(value) is
    True.  This is the exactness property that makes pruning lossless."""
    derived = derive_interval_set(predicate, PK)
    assert derived is not None
    layout = RowLayout([("t", "pk")])
    evaluated = compile_expression(predicate, layout)((value,))
    assert derived.contains(value) == (evaluated is True)
