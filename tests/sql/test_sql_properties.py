"""Property-based SQL front-end checks: generated queries always lex,
parse, bind, plan, and execute consistently; the lexer never crashes with
anything but SqlError."""

import random

from hypothesis import given, settings, strategies as st

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.errors import SqlError
from repro.sql.lexer import tokenize
from repro.sql.parser import parse


def _build_db() -> Database:
    db = Database(num_segments=2)
    db.create_table(
        "facts",
        TableSchema.of(("id", t.INT), ("key", t.INT), ("val", t.INT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme([uniform_int_level("key", 0, 100, 5)]),
    )
    rng = random.Random(4)
    db.insert(
        "facts",
        [(i, rng.randrange(100), rng.randrange(20)) for i in range(200)],
    )
    db.analyze()
    return db


DB = _build_db()

printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=60
)


@settings(max_examples=120, deadline=None)
@given(printable)
def test_lexer_total(text):
    """tokenize() either succeeds or raises SqlError — never anything else."""
    try:
        tokens = tokenize(text)
    except SqlError:
        return
    assert tokens[-1].kind == "EOF"


_columns = st.sampled_from(["id", "key", "val"])
_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
_values = st.integers(min_value=-5, max_value=120)


@st.composite
def predicates(draw, depth=0):
    kind = draw(
        st.sampled_from(
            ["cmp", "between", "in"] if depth >= 2 else
            ["cmp", "between", "in", "and", "or", "not"]
        )
    )
    if kind == "cmp":
        return f"{draw(_columns)} {draw(_ops)} {draw(_values)}"
    if kind == "between":
        lo = draw(_values)
        return f"{draw(_columns)} BETWEEN {lo} AND {lo + draw(st.integers(0, 40))}"
    if kind == "in":
        values = draw(st.lists(_values, min_size=1, max_size=4))
        return f"{draw(_columns)} IN ({', '.join(map(str, values))})"
    if kind == "not":
        return f"NOT ({draw(predicates(depth=depth + 1))})"
    joiner = " AND " if kind == "and" else " OR "
    left = draw(predicates(depth=depth + 1))
    right = draw(predicates(depth=depth + 1))
    return f"({left}{joiner}{right})"


@settings(max_examples=60, deadline=None)
@given(predicates())
def test_generated_queries_run_and_prune_soundly(predicate):
    """Any generated WHERE clause: plans validate, pruned execution matches
    the unpruned one, and both optimizers agree."""
    sql = f"SELECT id, val FROM facts WHERE {predicate}"
    statement = parse(sql)  # must parse
    assert statement is not None
    pruned = DB.sql(sql)
    unpruned = DB.sql(sql, enable_partition_elimination=False)
    assert sorted(pruned.rows) == sorted(unpruned.rows)
    planner = DB.sql(sql, optimizer="planner")
    assert sorted(planner.rows) == sorted(pruned.rows)
    assert (
        pruned.partitions_scanned("facts")
        <= unpruned.partitions_scanned("facts")
    )


@settings(max_examples=40, deadline=None)
@given(predicates(), st.sampled_from(["count(*)", "sum(val)", "min(id)"]))
def test_generated_aggregates_agree(predicate, agg):
    sql = f"SELECT {agg} FROM facts WHERE {predicate}"
    orca_rows = DB.sql(sql).rows
    planner_rows = DB.sql(sql, optimizer="planner").rows
    assert orca_rows == planner_rows
