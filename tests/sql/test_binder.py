"""Binder: name qualification, join-tree shape, semi-join rewrite,
aggregation split, UPDATE binding, error reporting."""

import pytest

from repro import types as t
from repro.catalog import (
    Catalog,
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.errors import BindError
from repro.expr.ast import ColumnRef
from repro.logical.ops import (
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalSelect,
    LogicalSort,
    LogicalUpdate,
    partitioned_gets,
)
from repro.sql.binder import Binder
from repro.sql.parser import parse


@pytest.fixture
def binder() -> Binder:
    catalog = Catalog()
    catalog.create_table(
        "sales",
        TableSchema.of(
            ("id", t.INT), ("cust_id", t.INT), ("date_id", t.INT),
            ("amount", t.FLOAT),
        ),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [uniform_int_level("date_id", 0, 100, 10)]
        ),
    )
    catalog.create_table(
        "dates",
        TableSchema.of(("date_id", t.INT), ("year", t.INT), ("month", t.INT)),
    )
    catalog.create_table(
        "cust",
        TableSchema.of(("cust_id", t.INT), ("state", t.TEXT)),
    )
    return Binder(catalog)


def _bind(binder: Binder, sql: str):
    return binder.bind(parse(sql))


def test_simple_select_shape(binder):
    plan = _bind(binder, "SELECT amount FROM sales WHERE date_id < 5")
    assert isinstance(plan, LogicalProject)
    select = plan.child
    assert isinstance(select, LogicalSelect)
    assert isinstance(select.child, LogicalGet)


def test_columns_get_fully_qualified(binder):
    plan = _bind(binder, "SELECT amount FROM sales WHERE date_id < 5")
    select = plan.child
    refs = [
        ref
        for ref in select.predicate.walk()
        if isinstance(ref, ColumnRef)
    ]
    assert all(ref.qualifier == "sales" for ref in refs)


def test_star_expansion_in_from_order(binder):
    plan = _bind(binder, "SELECT * FROM sales s, dates d WHERE s.date_id = d.date_id")
    names = [name for _, name in plan.output_layout().slots]
    assert names[:4] == ["id", "cust_id", "date_id", "amount"]
    # duplicate column names are uniquified
    assert "date_id_1" in names


def test_join_tree_left_deep_in_from_order(binder):
    plan = _bind(
        binder,
        "SELECT s.amount FROM sales s, dates d, cust c "
        "WHERE d.month = 3 AND c.state = 'CA' "
        "AND d.date_id = s.date_id AND c.cust_id = s.cust_id",
    )
    top_join = plan.child
    assert isinstance(top_join, LogicalJoin)
    inner_join = top_join.left
    assert isinstance(inner_join, LogicalJoin)
    # single-table filters sit directly above their Gets (Figure 8(a))
    right_of_inner = inner_join.right
    assert isinstance(right_of_inner, LogicalSelect)
    assert isinstance(right_of_inner.child, LogicalGet)
    assert right_of_inner.child.alias == "d"


def test_in_subquery_becomes_semi_join(binder):
    plan = _bind(
        binder,
        "SELECT avg(amount) FROM sales WHERE date_id IN "
        "(SELECT date_id FROM dates WHERE year = 2013)",
    )
    # Project(GroupBy(SemiJoin(...)))
    group = plan.child
    assert isinstance(group, LogicalGroupBy)
    semi = group.child
    assert isinstance(semi, LogicalJoin) and semi.kind == "semi"
    # semi-join output hides the subquery side
    names = [name for _, name in semi.output_layout().slots]
    assert "year" not in names


def test_aggregation_split(binder):
    plan = _bind(
        binder,
        "SELECT state, count(*) AS cnt, avg(amount) FROM sales, cust "
        "WHERE sales.cust_id = cust.cust_id GROUP BY state",
    )
    assert isinstance(plan, LogicalProject)
    group = plan.child
    assert isinstance(group, LogicalGroupBy)
    assert len(group.group_keys) == 1
    assert len(group.aggregates) == 2


def test_non_grouped_column_rejected(binder):
    with pytest.raises(BindError):
        _bind(binder, "SELECT state, count(*) FROM cust GROUP BY cust_id")


def test_distinct_becomes_group_by(binder):
    plan = _bind(binder, "SELECT DISTINCT state FROM cust")
    assert isinstance(plan, LogicalGroupBy)
    assert not plan.aggregates


def test_order_and_limit(binder):
    plan = _bind(binder, "SELECT amount FROM sales ORDER BY amount DESC LIMIT 3")
    assert isinstance(plan, LogicalLimit)
    assert isinstance(plan.child, LogicalSort)


def test_order_by_underlying_column(binder):
    plan = _bind(binder, "SELECT * FROM cust ORDER BY cust.state")
    assert isinstance(plan, LogicalSort)


def test_update_binding(binder):
    plan = _bind(
        binder, "UPDATE sales SET amount = amount * 2 WHERE date_id = 1"
    )
    assert isinstance(plan, LogicalUpdate)
    assert plan.target.name == "sales"
    assert plan.assignments[0][0] == "amount"


def test_update_from_join(binder):
    plan = _bind(
        binder,
        "UPDATE sales SET amount = d.year FROM dates d "
        "WHERE sales.date_id = d.date_id",
    )
    assert isinstance(plan, LogicalUpdate)
    assert isinstance(plan.child, LogicalJoin)


def test_update_unknown_column_rejected(binder):
    with pytest.raises(BindError):
        _bind(binder, "UPDATE sales SET nope = 1")


def test_errors(binder):
    with pytest.raises(BindError):
        _bind(binder, "SELECT missing FROM sales")
    with pytest.raises(BindError):
        _bind(binder, "SELECT date_id FROM sales, dates")  # ambiguous
    with pytest.raises(BindError):
        _bind(binder, "SELECT * FROM sales s, dates s")  # dup alias
    with pytest.raises(BindError):
        _bind(binder, "SELECT nope.id FROM sales")
    with pytest.raises(Exception):
        _bind(binder, "SELECT * FROM no_such_table")


def test_multi_column_subquery_rejected(binder):
    with pytest.raises(BindError):
        _bind(
            binder,
            "SELECT * FROM sales WHERE date_id IN "
            "(SELECT date_id, year FROM dates)",
        )


def test_partitioned_gets_helper(binder):
    plan = _bind(
        binder,
        "SELECT s.amount FROM sales s, dates d WHERE s.date_id = d.date_id",
    )
    gets = partitioned_gets(plan)
    assert len(gets) == 1
    assert gets[0].alias == "s"
