"""SQL lexer and parser: statements, precedence, errors, date literals."""

import datetime

import pytest

from repro.errors import SqlError
from repro.expr.ast import (
    Arithmetic,
    Between,
    BoolExpr,
    ColumnRef,
    InList,
    IsNull,
    Literal,
    Parameter,
)
from repro.sql.ast import InsertStmt, InSubquery, SelectStmt, UpdateStmt
from repro.sql.lexer import tokenize
from repro.sql.parser import parse, parse_expression


class TestLexer:
    def test_basic_tokens(self):
        kinds = [tok.kind for tok in tokenize("SELECT a, 1 FROM t")]
        assert kinds == ["KEYWORD", "IDENT", "PUNCT", "NUMBER", "KEYWORD", "IDENT", "EOF"]

    def test_keywords_case_insensitive(self):
        assert tokenize("SeLeCt")[0].is_keyword("select")

    def test_string_with_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("1 2.5 0.125")
        assert [tok.value for tok in tokens[:-1]] == [1, 2.5, 0.125]

    def test_params_and_operators(self):
        tokens = tokenize("$1 <= != <>")
        assert tokens[0].kind == "PARAM" and tokens[0].value == 1
        assert tokens[1].value == "<="
        assert tokens[2].value == "<>"  # != normalised
        assert tokens[3].value == "<>"

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- comment\n 1")
        assert [tok.kind for tok in tokens] == ["KEYWORD", "NUMBER", "EOF"]

    def test_bad_character(self):
        with pytest.raises(SqlError):
            tokenize("SELECT @")


class TestExpressions:
    def test_precedence_and_before_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, BoolExpr) and expr.op == "OR"
        assert isinstance(expr.args[1], BoolExpr)
        assert expr.args[1].op == "AND"

    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, Arithmetic) and expr.op == "+"
        assert isinstance(expr.right, Arithmetic) and expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expr, Between)

    def test_in_list_and_not_in(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, InList) and expr.values == (1, 2, 3)
        negated = parse_expression("x NOT IN (1)")
        assert isinstance(negated, BoolExpr) and negated.op == "NOT"

    def test_is_null(self):
        assert isinstance(parse_expression("x IS NULL"), IsNull)
        negated = parse_expression("x IS NOT NULL")
        assert isinstance(negated, IsNull) and negated.negated

    def test_qualified_columns(self):
        expr = parse_expression("t.col")
        assert expr == ColumnRef("col", "t")

    def test_unary_minus(self):
        expr = parse_expression("-5")
        assert isinstance(expr, Arithmetic)

    def test_parameters(self):
        expr = parse_expression("x = $2")
        assert isinstance(expr.right, Parameter) and expr.right.index == 2

    def test_date_literal_recognition(self):
        us_style = parse_expression("'10-01-2013'")
        assert us_style == Literal(datetime.date(2013, 10, 1))
        iso = parse_expression("'2013-10-01'")
        assert iso == Literal(datetime.date(2013, 10, 1))
        plain = parse_expression("'not-a-date'")
        assert plain == Literal("not-a-date")

    def test_in_list_date_literals_are_coerced(self):
        # Regression: IN lists used to keep date-shaped strings as raw
        # strings, crashing interval intersection against DATE partition
        # constraints ('str' vs 'date' comparison).
        expr = parse_expression("d IN ('2013-05-15', '06-01-2013', 'other')")
        assert isinstance(expr, InList)
        assert expr.values == (
            datetime.date(2013, 5, 15),
            datetime.date(2013, 6, 1),
            "other",
        )


class TestStatements:
    def test_paper_figure_2_query(self):
        stmt = parse(
            "SELECT avg(amount) FROM orders "
            "WHERE date BETWEEN '10-01-2013' AND '12-31-2013'"
        )
        assert isinstance(stmt, SelectStmt)
        assert isinstance(stmt.where, Between)

    def test_paper_figure_4_query(self):
        stmt = parse(
            "SELECT avg(amount) FROM orders WHERE date_id IN "
            "(SELECT date_id FROM date_dim WHERE year = 2013 "
            "AND month BETWEEN 10 AND 12)"
        )
        assert isinstance(stmt.where, InSubquery)
        assert isinstance(stmt.where.subquery, SelectStmt)

    def test_paper_figure_6_query(self):
        stmt = parse(
            "SELECT * FROM sales_fact s, date_dim d, customer_dim c "
            "WHERE d.month BETWEEN 10 AND 12 AND c.state = 'CA' "
            "AND d.id = s.date_id AND c.id = s.cust_id"
        )
        assert len(stmt.tables) == 3
        assert stmt.tables[0].alias == "s"
        assert stmt.items[0].is_star

    def test_group_order_limit(self):
        stmt = parse(
            "SELECT a, count(*) AS cnt FROM t GROUP BY a "
            "ORDER BY cnt DESC, a LIMIT 10"
        )
        assert len(stmt.group_by) == 1
        assert stmt.order_by[0][1] is False  # DESC
        assert stmt.order_by[1][1] is True
        assert stmt.limit == 10

    def test_explicit_join(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.x INNER JOIN c ON c.y = b.y")
        assert len(stmt.joins) == 2

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_update(self):
        stmt = parse("UPDATE r SET b = s.b FROM s WHERE r.a = s.a")
        assert isinstance(stmt, UpdateStmt)
        assert stmt.assignments[0][0] == "b"
        assert stmt.from_tables[0].name == "s"

    def test_insert(self):
        stmt = parse("INSERT INTO t VALUES (1, 'x', NULL), (2, 'y', TRUE)")
        assert isinstance(stmt, InsertStmt)
        assert stmt.rows == [[1, "x", None], [2, "y", True]]

    def test_insert_negative_number(self):
        stmt = parse("INSERT INTO t VALUES (-5)")
        assert stmt.rows == [[-5]]

    def test_insert_keeps_date_shaped_strings_raw(self):
        # INSERT VALUES literals are typed by the target column (the
        # binder coerces them), so a TEXT column can store '2013-05-15'
        # verbatim — only IN/comparison comparands get date recognition.
        stmt = parse("INSERT INTO t VALUES ('2013-05-15')")
        assert stmt.rows == [["2013-05-15"]]

    def test_trailing_semicolon(self):
        parse("SELECT 1 FROM t;")

    def test_errors(self):
        for bad in (
            "SELECT",
            "SELECT * FROM",
            "SELECT * WHERE 1",
            "TRUNCATE t",
            "DELETE t",
            "SELECT * FROM t GROUP a",
            "SELECT * FROM t LIMIT 'x'",
            "UPDATE t SET",
            "SELECT * FROM t extra garbage )",
        ):
            with pytest.raises(SqlError):
                parse(bad)

    def test_aliases(self):
        stmt = parse("SELECT t.a AS first, b second FROM tbl AS t")
        assert stmt.items[0].alias == "first"
        assert stmt.items[1].alias == "second"
        assert stmt.tables[0].alias == "t"

    def test_count_star(self):
        stmt = parse("SELECT count(*) FROM t")
        agg = stmt.items[0].expr
        assert agg.func == "count" and agg.arg is None
