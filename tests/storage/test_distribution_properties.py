"""Property tests for the distribution hash: deterministic across runs,
independent of evaluation order, SQL-equality consistent, and balanced
within a 2x bound over a 10k-key sample."""

from __future__ import annotations

import datetime
import random
import zlib

from hypothesis import given, settings, strategies as st

from repro.storage.distribution import segment_for, stable_hash

sql_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
    st.dates(
        min_value=datetime.date(1900, 1, 1),
        max_value=datetime.date(2100, 1, 1),
    ),
)


@settings(max_examples=200, deadline=None)
@given(sql_values)
def test_hash_is_deterministic(value):
    assert stable_hash(value) == stable_hash(value)
    assert 0 <= stable_hash(value) < 2**32


@settings(max_examples=50, deadline=None)
@given(st.lists(sql_values, min_size=2, max_size=10))
def test_hash_is_order_independent(values):
    """Hashing carries no hidden state: evaluating the same values in any
    order yields identical hashes."""
    forward = [stable_hash(v) for v in values]
    backward = [stable_hash(v) for v in reversed(values)]
    assert forward == list(reversed(backward))


def test_hash_is_stable_across_runs():
    """The hash is a pure CRC-32 of a canonical byte rendering — pin the
    rendering so a refactor cannot silently reshuffle stored data."""
    assert stable_hash(None) == 0
    assert stable_hash(42) == zlib.crc32(b"i42")
    assert stable_hash(-7) == zlib.crc32(b"i-7")
    assert stable_hash(True) == zlib.crc32(b"b1")
    assert stable_hash("abc") == zlib.crc32(b"sabc")
    assert stable_hash(2.5) == zlib.crc32(b"f2.5")
    assert stable_hash(datetime.date(2013, 5, 15)) == zlib.crc32(
        b"d2013-05-15"
    )


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.integers(min_value=1, max_value=64),
)
def test_segment_for_in_range(value, num_segments):
    segment = segment_for(value, num_segments)
    assert 0 <= segment < num_segments
    assert segment == stable_hash(value) % num_segments


@settings(max_examples=20, deadline=None)
@given(st.floats(allow_nan=False, allow_infinity=False, width=16))
def test_integral_floats_colocate_with_ints(value):
    """SQL equality equates 2 and 2.0, so they must land on one segment."""
    if value.is_integer():
        assert stable_hash(value) == stable_hash(int(value))


def test_spread_within_2x_balance_bound():
    """10k keys spread across segments within 2x of the ideal share, for
    sequential, random and string key populations."""
    rng = random.Random(2014)
    samples = {
        "sequential": list(range(10_000)),
        "random": [rng.randrange(10**9) for _ in range(10_000)],
        "strings": [f"customer-{i}" for i in range(10_000)],
    }
    for num_segments in (2, 3, 4, 8):
        for name, keys in samples.items():
            counts = [0] * num_segments
            for key in keys:
                counts[segment_for(key, num_segments)] += 1
            ideal = len(keys) / num_segments
            assert max(counts) <= 2 * ideal, (name, num_segments, counts)
            assert min(counts) >= ideal / 2, (name, num_segments, counts)
