"""Storage layer: routing on insert, distribution, per-leaf addressing."""

import pytest

from repro import types as t
from repro.catalog import (
    Catalog,
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.errors import PartitionError
from repro.storage import StorageManager, TableStore

SCHEMA = TableSchema.of(("a", t.INT), ("b", t.INT))


def _partitioned(catalog: Catalog, name: str = "p") -> TableStore:
    desc = catalog.create_table(
        name,
        SCHEMA,
        distribution=DistributionPolicy.hashed("a"),
        partition_scheme=PartitionScheme([uniform_int_level("b", 0, 100, 4)]),
    )
    return TableStore(desc, num_segments=3)


def test_insert_routes_to_correct_leaf():
    catalog = Catalog()
    store = _partitioned(catalog)
    desc = store.descriptor
    store.insert((1, 5))
    store.insert((2, 80))
    oid_first = desc.leaf_oid((0,))
    oid_last = desc.leaf_oid((3,))
    assert list(store.scan_all([oid_first])) == [(1, 5)]
    assert list(store.scan_all([oid_last])) == [(2, 80)]
    assert store.leaf_row_count(oid_first) == 1


def test_insert_invalid_partition_raises():
    store = _partitioned(Catalog())
    with pytest.raises(PartitionError):
        store.insert((1, 100))  # outside every range -> ⊥
    with pytest.raises(PartitionError):
        store.insert((1, None))  # NULL partition key -> ⊥


def test_rows_land_on_hash_segment():
    from repro.storage.distribution import segment_for

    store = _partitioned(Catalog())
    store.insert_many([(i, i % 100) for i in range(50)])
    for segment in range(3):
        for row in store.scan_segment(segment):
            assert segment_for(row[0], 3) == segment
    assert store.row_count() == 50


def test_replicated_table_copies_to_all_segments():
    catalog = Catalog()
    desc = catalog.create_table(
        "r", SCHEMA, distribution=DistributionPolicy.replicated()
    )
    store = TableStore(desc, num_segments=3)
    store.insert_many([(i, i) for i in range(10)])
    for segment in range(3):
        assert store.segment_row_count(segment) == 10
    # scan_all must not duplicate replicated rows
    assert store.row_count() == 10
    assert len(list(store.scan_all())) == 10


def test_truncate():
    store = _partitioned(Catalog())
    store.insert_many([(i, i % 100) for i in range(20)])
    store.truncate()
    assert store.row_count() == 0


def test_delete_from_leaf():
    catalog = Catalog()
    store = _partitioned(catalog)
    store.insert((1, 5))
    desc = store.descriptor
    oid = desc.leaf_oid((0,))
    from repro.storage.distribution import segment_for

    seg = segment_for(1, 3)
    store.delete_from_leaf(seg, oid, [(1, 5)])
    assert store.row_count() == 0


def test_storage_manager_scan_leaf():
    catalog = Catalog()
    manager = StorageManager(catalog, num_segments=3)
    desc = catalog.create_table(
        "p",
        SCHEMA,
        distribution=DistributionPolicy.hashed("a"),
        partition_scheme=PartitionScheme([uniform_int_level("b", 0, 100, 4)]),
    )
    manager.register(desc)
    manager.store(desc.oid).insert((1, 5))
    oid = desc.leaf_oid((0,))
    rows = []
    for segment in range(3):
        rows.extend(manager.scan_leaf(segment, oid))
    assert rows == [(1, 5)]


def test_storage_manager_errors():
    catalog = Catalog()
    manager = StorageManager(catalog, num_segments=2)
    desc = catalog.create_table("t", SCHEMA)
    manager.register(desc)
    from repro.errors import CatalogError

    with pytest.raises(CatalogError):
        manager.register(desc)
    with pytest.raises(CatalogError):
        manager.store(999999)


def test_stable_hash_deterministic_and_type_aware():
    import datetime

    from repro.storage.distribution import segment_for, stable_hash

    assert stable_hash("abc") == stable_hash("abc")
    assert stable_hash(2) == stable_hash(2.0)  # SQL equality co-locates
    assert stable_hash(None) == 0
    assert stable_hash(True) != stable_hash(1)
    day = datetime.date(2013, 5, 1)
    assert stable_hash(day) == stable_hash(datetime.date(2013, 5, 1))
    assert 0 <= segment_for("x", 7) < 7
    with pytest.raises(ValueError):
        segment_for(1, 0)
