"""Section 2.3 placement algorithms — including a walk-through of the
paper's Figure 8 example."""

import pytest

from repro import types as t
from repro.catalog import (
    Catalog,
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    list_level,
    uniform_int_level,
)
from repro.expr.ast import BoolExpr, ColumnRef, Comparison, Literal
from repro.optimizer.placement import initial_specs, place_part_selectors
from repro.physical.ops import (
    DynamicScan,
    Filter,
    HashJoin,
    PartitionSelector,
    Scan,
    Sequence,
)
from repro.physical.plan import Plan


@pytest.fixture(scope="module")
def figure8_tables():
    """Tables of the paper's Figure 6/8: sales_fact partitioned on date_id,
    date_dim partitioned on month, customer_dim unpartitioned."""
    catalog = Catalog()
    sales = catalog.create_table(
        "sales_fact",
        TableSchema.of(
            ("sid", t.INT), ("cust_id", t.INT), ("date_id", t.INT),
            ("amount", t.FLOAT),
        ),
        distribution=DistributionPolicy.hashed("sid"),
        partition_scheme=PartitionScheme(
            [uniform_int_level("date_id", 0, 120, 12)]
        ),
    )
    dates = catalog.create_table(
        "date_dim",
        TableSchema.of(("id", t.INT), ("month", t.INT), ("year", t.INT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [uniform_int_level("month", 1, 13, 12)]
        ),
    )
    cust = catalog.create_table(
        "customer_dim",
        TableSchema.of(("cid", t.INT), ("state", t.TEXT)),
        distribution=DistributionPolicy.hashed("cid"),
    )
    return sales, dates, cust


def _figure8_tree(sales, dates, cust):
    """Figure 8(a): the physical tree before placement.

    HashJoin(cust_id)
      outer: HashJoin(date_id)
        outer: Select(month BETWEEN 10 AND 12) over DynamicScan(1, date_dim)
        inner: DynamicScan(2, sales_fact)
      inner: Select(state='CA') over Scan(customer_dim)
    """
    month = ColumnRef("month", "d")
    month_pred = BoolExpr(
        "AND",
        [
            Comparison(">=", month, Literal(10)),
            Comparison("<=", month, Literal(12)),
        ],
    )
    dates_scan = Filter(DynamicScan(dates, "d", 1), month_pred)
    inner_join = HashJoin(
        "inner",
        dates_scan,
        DynamicScan(sales, "s", 2),
        [ColumnRef("id", "d")],
        [ColumnRef("date_id", "s")],
    )
    cust_scan = Filter(
        Scan(cust, "c"),
        Comparison("=", ColumnRef("state", "c"), Literal("CA")),
    )
    return HashJoin(
        "inner",
        inner_join,
        cust_scan,
        [ColumnRef("cust_id", "s")],
        [ColumnRef("cid", "c")],
    )


def test_initial_specs(figure8_tables):
    sales, dates, cust = figure8_tables
    tree = _figure8_tree(sales, dates, cust)
    specs = initial_specs(tree)
    assert sorted(s.part_scan_id for s in specs) == [1, 2]
    assert all(not s.has_predicates for s in specs)


def test_figure8_placement(figure8_tables):
    """Reproduces Figure 8(b): selector 1 lands in a Sequence at its scan
    with the month predicate; selector 2 lands on the join's outer side
    with the join predicate ``date_id = id``."""
    sales, dates, cust = figure8_tables
    tree = _figure8_tree(sales, dates, cust)
    placed = place_part_selectors(tree)
    Plan(placed).validate()

    selectors = [
        op for op in placed.walk() if isinstance(op, PartitionSelector)
    ]
    by_id = {s.part_scan_id: s for s in selectors}
    assert set(by_id) == {1, 2}

    # Selector 1: static month predicate, under a Sequence with its scan.
    spec1 = by_id[1].spec
    assert spec1.has_predicates
    predicate_text = repr(spec1.part_predicates[0])
    assert "month" in predicate_text
    sequences = [op for op in placed.walk() if isinstance(op, Sequence)]
    assert len(sequences) == 1
    assert isinstance(sequences[0].children[0], PartitionSelector)
    assert isinstance(sequences[0].children[1], DynamicScan)

    # Selector 2: join predicate on date_id, placed as a pass-through on
    # the outer side of the date_id join (paper's "on top" of the Select).
    spec2 = by_id[2].spec
    assert "date_id" in repr(spec2.part_predicates[0])
    assert "id" in repr(spec2.part_predicates[0])
    outer_join = placed.children[0]
    assert isinstance(outer_join, HashJoin)
    assert isinstance(outer_join.children[0], PartitionSelector)
    assert outer_join.children[0].part_scan_id == 2

    # And selector 2 must NOT be on the inner (sales) side.
    inner_side = outer_join.children[1]
    assert not any(
        isinstance(op, PartitionSelector) for op in inner_side.walk()
    )


def test_full_scan_gets_predicate_free_selector(figure8_tables):
    sales, _, _ = figure8_tables
    placed = place_part_selectors(DynamicScan(sales, "s", 2))
    assert isinstance(placed, Sequence)
    selector = placed.children[0]
    assert isinstance(selector, PartitionSelector)
    assert not selector.spec.has_predicates


def test_join_without_key_predicate_keeps_selector_inner(figure8_tables):
    """Algorithm 4's fallback: no partition-filtering join predicate means
    the spec resolves on the inner side at the scan."""
    sales, _, cust = figure8_tables
    tree = HashJoin(
        "inner",
        Scan(cust, "c"),
        DynamicScan(sales, "s", 1),
        [ColumnRef("cid", "c")],
        [ColumnRef("cust_id", "s")],  # join key is NOT the partition key
    )
    placed = place_part_selectors(tree)
    inner = placed.children[1]
    assert isinstance(inner, Sequence)
    assert isinstance(inner.children[0], PartitionSelector)
    assert not inner.children[0].spec.has_predicates


def test_selector_through_default_operator(figure8_tables):
    """Algorithm 2: non-filtering operators push specs toward the scan."""
    from repro.physical.ops import Limit

    sales, _, _ = figure8_tables
    tree = Limit(DynamicScan(sales, "s", 1), 10)
    placed = place_part_selectors(tree)
    assert isinstance(placed, Limit)
    assert isinstance(placed.children[0], Sequence)


def test_multilevel_placement():
    """Section 2.4: one predicate per level in the extended spec."""
    catalog = Catalog()
    table = catalog.create_table(
        "orders",
        TableSchema.of(
            ("oid", t.INT), ("date_id", t.INT), ("region", t.TEXT)
        ),
        partition_scheme=PartitionScheme(
            [
                uniform_int_level("date_id", 0, 100, 10),
                list_level("region", [("r1", ["R1"]), ("r2", ["R2"])]),
            ]
        ),
    )
    predicate = BoolExpr(
        "AND",
        [
            Comparison("=", ColumnRef("date_id", "o"), Literal(5)),
            Comparison("=", ColumnRef("region", "o"), Literal("R1")),
        ],
    )
    tree = Filter(DynamicScan(table, "o", 1), predicate)
    placed = place_part_selectors(tree)
    selector = next(
        op for op in placed.walk() if isinstance(op, PartitionSelector)
    )
    assert len(selector.spec.part_predicates) == 2
    assert all(p is not None for p in selector.spec.part_predicates)


def test_join_form_predicate_dropped_at_scan(figure8_tables):
    """A spec that reaches its own scan with a join-form predicate keeps
    only constant parts — degrading to select-all, never to unsoundness."""
    sales, dates, _ = figure8_tables
    # Selector for scan 1 pushed down carrying a predicate that references
    # the sales side, which is unavailable below the dates scan.
    from repro.physical.properties import PartSelectorSpec

    join_pred = Comparison(
        "=", ColumnRef("month", "d"), ColumnRef("date_id", "s")
    )
    spec = PartSelectorSpec(
        1, dates, [ColumnRef("month", "d")], [join_pred]
    )
    placed = place_part_selectors(DynamicScan(dates, "d", 1), [spec])
    selector = placed.children[0]
    assert isinstance(selector, PartitionSelector)
    assert not selector.spec.has_predicates
