"""Two-stage (partial/final) aggregation: plan shape, correctness across
aggregate functions, interaction with partition selection."""

import random

import pytest

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.physical.ops import HashAgg, Motion, RedistributeMotion


@pytest.fixture(scope="module")
def db() -> Database:
    database = Database(num_segments=3)
    database.create_table(
        "t",
        TableSchema.of(("a", t.INT), ("b", t.INT), ("v", t.FLOAT)),
        distribution=DistributionPolicy.hashed("a"),
        partition_scheme=PartitionScheme([uniform_int_level("b", 0, 100, 4)]),
    )
    rng = random.Random(8)
    database.insert(
        "t",
        [(i, i % 100, round(rng.uniform(0, 10), 4)) for i in range(600)],
    )
    database.analyze()
    return database


def _rows(db):
    return list(db.storage.store_by_name("t").scan_all())


def _agg_modes(plan) -> list[str]:
    return [op.mode for op in plan.walk() if isinstance(op, HashAgg)]


def test_scalar_agg_uses_two_stages(db):
    plan = db.plan("SELECT count(*), sum(v) FROM t")
    modes = _agg_modes(plan)
    assert sorted(modes) == ["final", "partial"]
    # a Motion sits between the two stages
    final = next(op for op in plan.walk() if isinstance(op, HashAgg))
    assert isinstance(final.children[0], Motion)


def test_scalar_agg_correct(db):
    rows = _rows(db)
    vals = [r[2] for r in rows]
    result = db.sql("SELECT count(*), sum(v), avg(v), min(v), max(v) FROM t")
    count, total, mean, lo, hi = result.rows[0]
    assert count == len(rows)
    assert total == pytest.approx(sum(vals))
    assert mean == pytest.approx(sum(vals) / len(vals))
    assert lo == min(vals) and hi == max(vals)


def test_grouped_agg_redistributes_transitions(db):
    plan = db.plan("SELECT b, avg(v) FROM t GROUP BY b")
    modes = _agg_modes(plan)
    if sorted(modes) == ["final", "partial"]:
        redistributes = [
            op for op in plan.walk() if isinstance(op, RedistributeMotion)
        ]
        assert redistributes, "grouped two-stage needs a redistribute"
    result = db.sql("SELECT b, count(*) AS c, avg(v) AS m FROM t GROUP BY b")
    rows = _rows(db)
    by_group: dict[int, list[float]] = {}
    for _, b, v in rows:
        by_group.setdefault(b, []).append(v)
    assert len(result.rows) == len(by_group)
    for b, count, mean in result.rows:
        assert count == len(by_group[b])
        assert mean == pytest.approx(sum(by_group[b]) / count)


def test_avg_transition_is_exact_across_segments(db):
    """AVG's two-stage form must combine (sum, count) pairs, not averages
    of averages — segments hold different group sizes."""
    # force skew: values concentrated on one key with uneven sizes
    skew_db = Database(num_segments=3)
    skew_db.create_table(
        "s",
        TableSchema.of(("a", t.INT), ("g", t.INT), ("v", t.FLOAT)),
        distribution=DistributionPolicy.hashed("a"),
    )
    rows = [(i, 1, float(i)) for i in range(10)] + [(100, 2, 5.0)]
    skew_db.insert("s", rows)
    skew_db.analyze()
    result = skew_db.sql("SELECT g, avg(v) FROM s GROUP BY g")
    got = dict(result.rows)
    assert got[1] == pytest.approx(4.5)
    assert got[2] == pytest.approx(5.0)


def test_two_stage_scalar_with_nulls():
    database = Database(num_segments=2)
    database.create_table(
        "n", TableSchema.of(("a", t.INT), ("v", t.INT))
    )
    database.insert("n", [(1, None), (2, 3), (3, None), (4, 7)])
    database.analyze()
    result = database.sql("SELECT count(*), count(v), sum(v), avg(v) FROM n")
    assert result.rows == [(4, 2, 10, 5.0)]


def test_two_stage_over_partition_selection(db):
    """Partial aggregation composes with the DynamicScan machinery."""
    result = db.sql("SELECT count(*), sum(v) FROM t WHERE b < 25")
    rows = [r for r in _rows(db) if r[1] < 25]
    assert result.rows[0][0] == len(rows)
    assert result.rows[0][1] == pytest.approx(sum(r[2] for r in rows))
    assert result.partitions_scanned("t") == 1


def test_two_stage_agg_empty_input(db):
    result = db.sql("SELECT count(*), sum(v), min(v) FROM t WHERE b < 0")
    assert result.rows == [(0, None, None)]


def test_planner_single_stage_agrees(db):
    sql = "SELECT b, sum(v) AS s FROM t GROUP BY b"
    orca = sorted(db.sql(sql).rows)
    planner = sorted(db.sql(sql, optimizer="planner").rows)
    assert len(orca) == len(planner)
    for (b1, s1), (b2, s2) in zip(orca, planner):
        assert b1 == b2 and s1 == pytest.approx(s2)
