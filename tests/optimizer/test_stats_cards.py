"""Statistics collection and cardinality estimation."""

import pytest

from repro import types as t
from repro.catalog import (
    Catalog,
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.expr.ast import (
    Between,
    BoolExpr,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Literal,
)
from repro.optimizer.cards import (
    RelationEstimate,
    group_estimate,
    join_estimate,
    predicate_selectivity,
)
from repro.optimizer.stats import StatsRegistry, collect_stats
from repro.storage import TableStore


@pytest.fixture(scope="module")
def store() -> TableStore:
    catalog = Catalog()
    desc = catalog.create_table(
        "t",
        TableSchema.of(("a", t.INT), ("b", t.INT), ("c", t.TEXT)),
        distribution=DistributionPolicy.hashed("a"),
        partition_scheme=PartitionScheme([uniform_int_level("b", 0, 100, 4)]),
    )
    table_store = TableStore(desc, num_segments=2)
    table_store.insert_many(
        [(i, i % 100, "x" if i % 10 else None) for i in range(200)]
    )
    return table_store


def test_collect_stats(store):
    stats = collect_stats(store)
    assert stats.row_count == 200
    a_stats = stats.column("a")
    assert a_stats.min_value == 0 and a_stats.max_value == 199
    assert a_stats.ndv == 200
    b_stats = stats.column("b")
    assert b_stats.ndv == 100
    c_stats = stats.column("c")
    assert c_stats.null_fraction == pytest.approx(0.1)
    # per-leaf rows cover the whole table
    assert sum(stats.leaf_rows.values()) == 200
    assert len(stats.leaf_rows) == 4


def test_registry_default_for_unanalyzed(store):
    registry = StatsRegistry()
    fallback = registry.get(store.descriptor)
    assert fallback.row_count > 0
    registry.analyze(store)
    assert registry.get(store.descriptor).row_count == 200
    assert registry.has(store.descriptor)


@pytest.fixture(scope="module")
def estimate(store) -> RelationEstimate:
    return RelationEstimate.for_table("t", collect_stats(store))


A = ColumnRef("a", "t")
B = ColumnRef("b", "t")


def test_equality_selectivity_uses_ndv(estimate):
    sel = predicate_selectivity(Comparison("=", B, Literal(5)), estimate)
    assert sel == pytest.approx(1 / 100)


def test_range_selectivity_interpolates(estimate):
    sel = predicate_selectivity(Comparison("<", A, Literal(100)), estimate)
    assert 0.4 < sel < 0.6


def test_between_selectivity(estimate):
    sel = predicate_selectivity(
        Between(A, Literal(0), Literal(19)), estimate
    )
    assert 0.05 < sel < 0.2


def test_conjunction_multiplies(estimate):
    single = predicate_selectivity(Comparison("=", B, Literal(5)), estimate)
    double = predicate_selectivity(
        BoolExpr(
            "AND",
            [Comparison("=", B, Literal(5)), Comparison("=", B, Literal(7))],
        ),
        estimate,
    )
    assert double == pytest.approx(single * single)


def test_disjunction_and_negation(estimate):
    eq = Comparison("=", B, Literal(5))
    or_sel = predicate_selectivity(BoolExpr("OR", [eq, eq]), estimate)
    assert or_sel >= predicate_selectivity(eq, estimate)
    not_sel = predicate_selectivity(BoolExpr("NOT", [eq]), estimate)
    assert not_sel == pytest.approx(1 - 1 / 100)


def test_in_list_selectivity(estimate):
    sel = predicate_selectivity(InList(B, [1, 2, 3]), estimate)
    assert sel == pytest.approx(3 / 100)


def test_is_null_selectivity(estimate):
    c = ColumnRef("c", "t")
    assert predicate_selectivity(IsNull(c), estimate) == pytest.approx(0.1)
    assert predicate_selectivity(
        IsNull(c, negated=True), estimate
    ) == pytest.approx(0.9)


def test_join_estimate_equi(estimate):
    other = RelationEstimate(50.0, {"r.x": estimate.columns["t.b"]})
    predicate = Comparison("=", B, ColumnRef("x", "r"))
    joined = join_estimate(estimate, other, predicate)
    # |L|*|R| / max(ndv) = 200*50/100
    assert joined.rows == pytest.approx(100.0)


def test_semi_join_capped_by_left(estimate):
    other = RelationEstimate(10_000.0, {})
    predicate = Comparison("=", B, ColumnRef("x", "r"))
    joined = join_estimate(estimate, other, predicate, kind="semi")
    assert joined.rows <= estimate.rows


def test_group_estimate(estimate):
    assert group_estimate(estimate, [B]) == pytest.approx(100.0)
    assert group_estimate(estimate, []) == 1.0
    # capped by input size
    assert group_estimate(estimate, [A]) <= estimate.rows


def test_estimates_never_zero(estimate):
    impossible = predicate_selectivity(Literal(False), estimate)
    assert impossible == 0.0
    scaled = estimate.scaled(0.0)
    assert scaled.rows >= 1.0  # floor keeps cost math sane
