"""The legacy Planner baseline: static expansion, plan-size growth,
parameter-based dynamic elimination, quadratic DML plans."""


from repro.physical.ops import (
    Append,
    DynamicScan,
    GatherMotion,
    HashJoin,
    LeafScan,
    PartitionSelector,
)
from repro.workloads.synthetic import (
    JOIN_QUERY,
    UPDATE_QUERY,
    build_rs_database,
)
from repro.workloads.tpch import build_lineitem_database, shipdate_for_fraction


def _plan(db, sql, **options):
    return db.plan(sql, optimizer="planner", **options)


def test_partitioned_scan_expands_to_append(rs_db):
    plan = _plan(rs_db, "SELECT * FROM r")
    append = next(op for op in plan.walk() if isinstance(op, Append))
    assert len(append.children) == 10
    assert all(isinstance(c, LeafScan) for c in append.children)
    assert not any(isinstance(op, DynamicScan) for op in plan.walk())


def test_static_elimination_prunes_append(rs_db):
    plan = _plan(rs_db, "SELECT * FROM r WHERE b < 1000")
    append = next(op for op in plan.walk() if isinstance(op, Append))
    assert len(append.children) == 1  # only the first of 10 ranges


def test_static_elimination_can_be_disabled(rs_db):
    plan = _plan(
        rs_db,
        "SELECT * FROM r WHERE b < 1000",
        enable_static_elimination=False,
    )
    append = next(op for op in plan.walk() if isinstance(op, Append))
    assert len(append.children) == 10


def test_plan_size_grows_linearly_with_partitions():
    """Figure 18(a): Planner plan size is linear in listed partitions."""
    sizes = {}
    for parts in (10, 40):
        db = build_lineitem_database(parts, row_count=100, num_segments=2)
        plan = _plan(db, "SELECT * FROM lineitem")
        sizes[parts] = plan.size_bytes()
    ratio = sizes[40] / sizes[10]
    assert 3.0 < ratio < 5.0


def test_param_dpe_guards_leaf_scans(rs_db):
    """Section 4.4.2: the planner's run-time parameter mechanism — every
    leaf still listed, but guarded by an OID set from the other side."""
    plan = _plan(rs_db, JOIN_QUERY)
    guarded = [
        op
        for op in plan.walk()
        if isinstance(op, LeafScan) and op.guard_scan_id is not None
    ]
    assert guarded, "expected guarded leaf scans"
    producers = [
        op for op in plan.walk() if isinstance(op, PartitionSelector)
    ]
    assert len(producers) == 1
    plan.validate()


def test_param_dpe_can_be_disabled(rs_db):
    plan = _plan(rs_db, JOIN_QUERY, enable_param_dpe=False)
    assert not any(
        isinstance(op, PartitionSelector) for op in plan.walk()
    )


def test_param_dpe_execution_skips_partitions():
    """When the driving (build) side only holds values from a few
    partitions, the guarded probe-side leaves are skipped at run time."""
    db = build_rs_database(num_parts=10, rows_per_table=300)
    # Replace r with rows whose b values live in the first partition only.
    db.storage.store_by_name("r").truncate()
    db.insert("r", [(i, i % 900) for i in range(300)])
    db.analyze("r")
    with_dpe = db.sql(JOIN_QUERY, optimizer="planner")
    without = db.sql(JOIN_QUERY, optimizer="planner", enable_param_dpe=False)
    assert sorted(with_dpe.rows) == sorted(without.rows)
    # r drives the guard on s: only s's first partition can match
    assert with_dpe.partitions_scanned("s") == 1
    assert without.partitions_scanned("s") == 10


def test_dml_plan_quadratic(rs_db):
    """Figure 18(c): partition-pair enumeration for UPDATE...FROM."""
    plan = _plan(rs_db, UPDATE_QUERY)
    joins = [op for op in plan.walk() if isinstance(op, HashJoin)]
    assert len(joins) == 100  # 10 x 10 partition pairs


def test_dml_plan_size_quadratic_growth():
    small = build_rs_database(num_parts=5, rows_per_table=50)
    large = build_rs_database(num_parts=15, rows_per_table=50)
    small_size = _plan(small, UPDATE_QUERY).size_bytes()
    large_size = _plan(large, UPDATE_QUERY).size_bytes()
    # 3x partitions -> ~9x plan size
    assert large_size / small_size > 6.0


def test_dml_execution_correct(rs_db):
    result = rs_db.sql(UPDATE_QUERY, optimizer="planner")
    assert result.rows[0][0] > 0
    r_rows = dict(rs_db.storage.store_by_name("r").scan_all())
    s_rows = dict(rs_db.storage.store_by_name("s").scan_all())
    for key, value in r_rows.items():
        if key in s_rows:
            assert value == s_rows[key]


def test_root_always_gathers(rs_db):
    plan = _plan(rs_db, "SELECT * FROM r")
    assert isinstance(plan.root, GatherMotion)


def test_static_pruning_with_or_predicate(rs_db):
    plan = _plan(rs_db, "SELECT * FROM r WHERE b < 500 OR b >= 9500")
    append = next(op for op in plan.walk() if isinstance(op, Append))
    assert len(append.children) == 2


def test_parameters_do_not_prune_statically(rs_db):
    """Prepared statements: values unknown at plan time keep all leaves."""
    plan = _plan(rs_db, "SELECT * FROM r WHERE b < $1")
    append = next(op for op in plan.walk() if isinstance(op, Append))
    assert len(append.children) == 10


def test_results_match_orca(rs_db):
    for sql in (
        "SELECT * FROM r WHERE b < 3000",
        JOIN_QUERY,
        "SELECT count(*) FROM r, s WHERE r.b = s.b",
    ):
        orca_rows = sorted(rs_db.sql(sql).rows)
        planner_rows = sorted(rs_db.sql(sql, optimizer="planner").rows)
        assert orca_rows == planner_rows


def test_fraction_helper_monotone():
    assert shipdate_for_fraction(0.1) < shipdate_for_fraction(0.9)
