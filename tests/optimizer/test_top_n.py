"""Distributed top-N: per-segment Sort+Limit below the Gather."""

import random

import pytest

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.physical.ops import GatherMotion, Limit, Sort


@pytest.fixture(scope="module")
def db() -> Database:
    database = Database(num_segments=3)
    database.create_table(
        "t",
        TableSchema.of(("a", t.INT), ("k", t.INT), ("v", t.FLOAT)),
        distribution=DistributionPolicy.hashed("a"),
        partition_scheme=PartitionScheme([uniform_int_level("k", 0, 100, 4)]),
    )
    rng = random.Random(2)
    database.insert(
        "t",
        [
            (i, rng.randrange(100), round(rng.uniform(0, 1000), 3))
            for i in range(3000)
        ],
    )
    database.analyze()
    return database


def _rows(db):
    return list(db.storage.store_by_name("t").scan_all())


def test_top_n_plan_shape(db):
    plan = db.plan("SELECT a, v FROM t ORDER BY v DESC LIMIT 5")
    # Limit ▸ Sort ▸ Gather ▸ Limit ▸ Sort: two sort/limit stages
    sorts = [op for op in plan.walk() if isinstance(op, Sort)]
    limits = [op for op in plan.walk() if isinstance(op, Limit)]
    assert len(sorts) == 2 and len(limits) == 2
    gather = next(op for op in plan.walk() if isinstance(op, GatherMotion))
    # the local stage sits below the gather
    assert any(isinstance(op, Limit) for op in gather.walk())


def test_top_n_correct_desc_and_asc(db):
    rows = _rows(db)
    descending = db.sql("SELECT a, v FROM t ORDER BY v DESC LIMIT 7")
    assert descending.rows == sorted(
        ((a, v) for a, _, v in rows), key=lambda r: -r[1]
    )[:7]
    ascending = db.sql("SELECT a, v FROM t ORDER BY v LIMIT 7")
    assert ascending.rows == sorted(
        ((a, v) for a, _, v in rows), key=lambda r: r[1]
    )[:7]


def test_top_n_with_partition_pruning(db):
    result = db.sql(
        "SELECT a, v FROM t WHERE k < 25 ORDER BY v DESC LIMIT 3"
    )
    rows = [(a, v) for a, k, v in _rows(db) if k < 25]
    assert result.rows == sorted(rows, key=lambda r: -r[1])[:3]
    assert result.partitions_scanned("t") == 1


def test_top_n_ties_and_limit_exceeding_rows(db):
    result = db.sql("SELECT a FROM t WHERE a < 3 ORDER BY a LIMIT 100")
    assert [r[0] for r in result.rows] == [0, 1, 2]


def test_limit_without_sort_unchanged(db):
    plan = db.plan("SELECT a FROM t LIMIT 5")
    limits = [op for op in plan.walk() if isinstance(op, Limit)]
    assert len(limits) == 1
    assert len(db.sql("SELECT a FROM t LIMIT 5").rows) == 5


def test_planner_agrees_on_top_n(db):
    sql = "SELECT a, v FROM t ORDER BY v LIMIT 10"
    assert db.sql(sql).rows == db.sql(sql, optimizer="planner").rows
