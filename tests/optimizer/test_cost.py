"""Cost model sanity: monotonicity and the knobs the benches rely on."""


from repro.optimizer.cost import INFINITE, CostModel


def test_sort_cost_monotone_and_superlinear():
    model = CostModel()
    small = model.sort_cost(100)
    large = model.sort_cost(10_000)
    assert large > small
    # n log n: 100x rows should cost more than 100x
    assert large > 100 * small


def test_sort_cost_degenerate():
    model = CostModel()
    assert model.sort_cost(0) > 0
    assert model.sort_cost(1) > 0


def test_dpe_fraction_is_tunable():
    optimistic = CostModel(dpe_fraction=0.01)
    pessimistic = CostModel(dpe_fraction=0.99)
    assert optimistic.dpe_fraction < pessimistic.dpe_fraction


def test_infinite_sentinel():
    assert INFINITE == float("inf")
    assert 10**12 < INFINITE
