"""Property-based placement checks: for randomly generated operator trees
over partitioned tables, Algorithm 1 must always produce a *valid* plan
(pairing, Motion rule, execution order) that never prunes unsoundly."""

import random

from hypothesis import given, settings, strategies as st

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.expr.ast import ColumnRef, Comparison, Literal
from repro.optimizer.placement import place_part_selectors
from repro.physical.ops import (
    DynamicScan,
    Filter,
    GatherMotion,
    HashJoin,
    Limit,
    NLJoin,
    PartitionSelector,
    Scan,
)
from repro.physical.plan import Plan


def _build_db() -> Database:
    db = Database(num_segments=2)
    db.create_table(
        "p1",
        TableSchema.of(("k", t.INT), ("v", t.INT)),
        distribution=DistributionPolicy.hashed("k"),
        partition_scheme=PartitionScheme([uniform_int_level("k", 0, 100, 5)]),
    )
    db.create_table(
        "p2",
        TableSchema.of(("k2", t.INT), ("w", t.INT)),
        distribution=DistributionPolicy.hashed("k2"),
        partition_scheme=PartitionScheme([uniform_int_level("k2", 0, 100, 4)]),
    )
    db.create_table(
        "u",
        TableSchema.of(("x", t.INT), ("y", t.INT)),
        distribution=DistributionPolicy.replicated(),
    )
    rng = random.Random(17)
    db.insert("p1", [(rng.randrange(100), rng.randrange(10)) for _ in range(150)])
    db.insert("p2", [(rng.randrange(100), rng.randrange(10)) for _ in range(150)])
    db.insert("u", [(rng.randrange(100), rng.randrange(10)) for _ in range(30)])
    db.analyze()
    return db


DB = _build_db()
P1 = DB.catalog.table("p1")
P2 = DB.catalog.table("p2")
U = DB.catalog.table("u")


@st.composite
def operator_trees(draw, depth=0, allow_limit=True):
    """Random trees mixing scans, filters, joins, and limits.

    Each partitioned table appears at most once (one DynamicScan per id).
    ``allow_limit=False`` excludes Limit — a raw per-segment Limit keeps an
    order-dependent subset, so result-equivalence properties cannot include
    it.
    """
    kinds = ["scan", "filter", "join"] + (["limit"] if allow_limit else [])
    kind = draw(
        st.sampled_from(["scan"] if depth >= 3 else kinds)
    )
    if kind == "scan":
        table = draw(st.sampled_from(["p1", "p2", "u"]))
        return table, None
    if kind == "filter":
        table, tree = draw(
            operator_trees(depth=depth + 1, allow_limit=allow_limit)
        )
        return table, ("filter", tree)
    if kind == "limit":
        table, tree = draw(
            operator_trees(depth=depth + 1, allow_limit=allow_limit)
        )
        return table, ("limit", tree)
    left = draw(operator_trees(depth=depth + 1, allow_limit=allow_limit))
    right = draw(operator_trees(depth=depth + 1, allow_limit=allow_limit))
    join_kind = draw(st.sampled_from(["hash", "nl"]))
    return None, ("join", join_kind, left, right)


_used: dict


def _materialize(shape, used: set) -> "object | None":
    """Turn a tree shape into physical operators; None when a partitioned
    table would repeat."""
    table, tree = shape
    if tree is None:
        # every relation at most once (the binder enforces unique aliases)
        if table in used:
            return None
        used.add(table)
        if table == "u":
            return Scan(U, "u")
        if table == "p1":
            return DynamicScan(P1, "a1", 1)
        return DynamicScan(P2, "a2", 2)
    if tree[0] == "filter":
        child = _materialize((table, tree[1]), used)
        if child is None:
            return None
        layout = child.output_layout()
        column = layout.slots[0][1]
        qualifier = layout.slots[0][0]
        return Filter(
            child,
            Comparison("<", ColumnRef(column, qualifier), Literal(50)),
        )
    if tree[0] == "limit":
        child = _materialize((table, tree[1]), used)
        return None if child is None else Limit(child, 20)
    _, join_kind, left_shape, right_shape = tree
    left = _materialize(left_shape, used)
    right = _materialize(right_shape, used)
    if left is None or right is None:
        return None
    left_col = left.output_layout().slots[0]
    right_col = right.output_layout().slots[0]
    left_ref = ColumnRef(left_col[1], left_col[0])
    right_ref = ColumnRef(right_col[1], right_col[0])
    if join_kind == "hash":
        return HashJoin("inner", left, right, [left_ref], [right_ref])
    return NLJoin(
        "inner", left, right, Comparison("=", left_ref, right_ref)
    )


@settings(max_examples=60, deadline=None)
@given(operator_trees())
def test_placement_always_yields_valid_plans(shape):
    used: set = set()
    root = _materialize(shape, used)
    if root is None or not any(
        isinstance(op, DynamicScan) for op in root.walk()
    ):
        return  # nothing to place
    placed = place_part_selectors(root)
    plan = Plan(GatherMotion(placed))
    plan.validate()  # pairing + Figure 12 + execution order
    selectors = [
        op for op in plan.walk() if isinstance(op, PartitionSelector)
    ]
    scans = [op for op in plan.walk() if isinstance(op, DynamicScan)]
    assert {s.part_scan_id for s in selectors} == {
        s.part_scan_id for s in scans
    }


@settings(max_examples=25, deadline=None)
@given(operator_trees(allow_limit=False))
def test_placed_plans_execute_like_unpruned(shape):
    """Executing a placed plan returns the same rows as the same plan with
    all selector predicates stripped (pruning soundness end to end)."""
    used: set = set()
    root = _materialize(shape, used)
    if root is None or not any(
        isinstance(op, DynamicScan) for op in root.walk()
    ):
        return
    placed = place_part_selectors(root)
    plan = Plan(GatherMotion(placed))
    pruned_rows = sorted(DB.execute_plan(plan).rows)

    def strip(op):
        children = [strip(c) for c in op.children]
        node = op.with_children(children) if op.children else op
        if isinstance(node, PartitionSelector):
            spec = node.spec.with_predicates(
                [None] * len(node.spec.part_keys)
            )
            return PartitionSelector(
                spec, children[0] if children else None
            )
        return node

    unpruned = Plan(strip(plan.root))
    unpruned_rows = sorted(DB.execute_plan(unpruned).rows)
    assert pruned_rows == unpruned_rows
