"""Partition-wise joins (paper Section 5 related work: Oracle's feature,
and the pair-pruning of Herodotou et al. [7]) — an opt-in Planner mode."""

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.physical.ops import HashJoin, LeafScan, Motion

JOIN = "SELECT count(*) FROM r, s WHERE r.b = s.b"


def _pw_plan(db, sql):
    return db.plan(sql, optimizer="planner", enable_partition_wise_join=True)


def test_pairwise_plan_shape(rs_db):
    plan = _pw_plan(rs_db, JOIN)
    joins = [op for op in plan.walk() if isinstance(op, HashJoin)]
    assert len(joins) == 10  # one per matching partition pair
    for join in joins:
        scans = [op for op in join.walk() if isinstance(op, LeafScan)]
        assert len(scans) == 2
        # matching pairs: identical leaf ids on both sides
        left_id = scans[0].table.leaf_id(scans[0].leaf_oid)
        right_id = scans[1].table.leaf_id(scans[1].leaf_oid)
        assert left_id == right_id
        # co-located: no Motion inside any pair join
        assert not any(isinstance(op, Motion) for op in join.walk())


def test_pairwise_results_match(rs_db):
    conventional = rs_db.sql(JOIN, optimizer="planner")
    pairwise = rs_db.sql(
        JOIN, optimizer="planner", enable_partition_wise_join=True
    )
    orca = rs_db.sql(JOIN)
    assert conventional.rows == pairwise.rows == orca.rows


def test_pairwise_prunes_both_sides(rs_db):
    """Static pruning on one side drops the matching pairs of the OTHER
    side too (constraint subsumption across the equi-join)."""
    sql = "SELECT count(*) FROM r, s WHERE r.b = s.b AND r.b < 2000"
    result = rs_db.sql(
        sql, optimizer="planner", enable_partition_wise_join=True
    )
    reference = rs_db.sql(sql)
    assert result.rows == reference.rows
    assert result.partitions_scanned("r") == 2
    assert result.partitions_scanned("s") == 2  # pruned via the pairs


def test_pairwise_requires_compatible_schemes():
    """Different partition boundaries must fall back to a regular join."""
    db = Database(num_segments=2)
    db.create_table(
        "r",
        TableSchema.of(("a", t.INT), ("b", t.INT)),
        distribution=DistributionPolicy.hashed("b"),
        partition_scheme=PartitionScheme([uniform_int_level("b", 0, 100, 4)]),
    )
    db.create_table(
        "s",
        TableSchema.of(("x", t.INT), ("b", t.INT)),
        distribution=DistributionPolicy.hashed("b"),
        partition_scheme=PartitionScheme([uniform_int_level("b", 0, 100, 5)]),
    )
    db.insert("r", [(i, i % 100) for i in range(50)])
    db.insert("s", [(i, i % 100) for i in range(50)])
    db.analyze()
    plan = _pw_plan(db, "SELECT count(*) FROM r, s WHERE r.b = s.b")
    joins = [op for op in plan.walk() if isinstance(op, HashJoin)]
    assert len(joins) == 1  # fell back


def test_pairwise_requires_join_on_partition_key(rs_db):
    plan = _pw_plan(rs_db, "SELECT count(*) FROM r, s WHERE r.a = s.a")
    joins = [op for op in plan.walk() if isinstance(op, HashJoin)]
    assert len(joins) == 1


def test_pairwise_requires_colocated_distribution():
    """Tables distributed on other columns cannot join pairwise locally."""
    db = Database(num_segments=2)
    for name, first in (("r", "a"), ("s", "a")):
        db.create_table(
            name,
            TableSchema.of(("a", t.INT), ("b", t.INT)),
            distribution=DistributionPolicy.hashed(first),  # NOT the key
            partition_scheme=PartitionScheme(
                [uniform_int_level("b", 0, 100, 4)]
            ),
        )
        db.insert(name, [(i, i % 100) for i in range(50)])
    db.analyze()
    plan = _pw_plan(db, "SELECT count(*) FROM r, s WHERE r.b = s.b")
    joins = [op for op in plan.walk() if isinstance(op, HashJoin)]
    assert len(joins) == 1


def test_pairwise_empty_when_fully_pruned(rs_db):
    result = rs_db.sql(
        "SELECT count(*) FROM r, s WHERE r.b = s.b AND r.b < 0",
        optimizer="planner",
        enable_partition_wise_join=True,
    )
    assert result.rows == [(0,)]


def test_scheme_compatibility_helper():
    from repro.catalog.partition import PartitionScheme, uniform_int_level

    a = PartitionScheme([uniform_int_level("b", 0, 100, 4)])
    b = PartitionScheme([uniform_int_level("other", 0, 100, 4)])
    c = PartitionScheme([uniform_int_level("b", 0, 100, 5)])
    assert a.compatible_with(b)  # key names may differ; boundaries matter
    assert not a.compatible_with(c)
