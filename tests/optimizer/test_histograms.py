"""Equi-depth histograms: construction, estimation accuracy on skewed
data, and the improvement over uniform interpolation."""

import datetime
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro import types as t
from repro.catalog import DistributionPolicy, TableSchema
from repro.expr.ast import ColumnRef, Comparison, Literal
from repro.optimizer.cards import RelationEstimate, predicate_selectivity
from repro.optimizer.stats import ColumnStats, Histogram


class TestHistogram:
    def test_build_and_shape(self):
        histogram = Histogram.build(list(range(1000)))
        assert histogram is not None
        assert histogram.boundaries[0] == 0
        assert histogram.boundaries[-1] == 999

    def test_build_degenerate(self):
        assert Histogram.build([1]) is None
        assert Histogram.build([]) is None
        # incomparable values
        assert Histogram.build([1, "x", 2]) is None

    def test_fraction_below_uniform(self):
        histogram = Histogram.build(list(range(1000)))
        assert histogram.fraction_below(0) == 0.0
        assert histogram.fraction_below(500) == pytest.approx(0.5, abs=0.05)
        assert histogram.fraction_below(10_000) == 1.0

    def test_fraction_below_skewed(self):
        """90% of values in [0,10), 10% in [10,1000): a histogram knows."""
        values = [i % 10 for i in range(900)] + [
            10 + i for i in range(0, 990, 10)
        ]
        histogram = Histogram.build(values)
        below_ten = histogram.fraction_below(10)
        assert below_ten == pytest.approx(0.9, abs=0.07)

    def test_fraction_below_dates(self):
        base = datetime.date(2020, 1, 1)
        values = [base + datetime.timedelta(days=i) for i in range(365)]
        histogram = Histogram.build(values)
        mid = histogram.fraction_below(base + datetime.timedelta(days=182))
        assert mid == pytest.approx(0.5, abs=0.05)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(-1000, 1000), min_size=5, max_size=300),
        st.integers(-1100, 1100),
    )
    def test_estimate_close_to_truth(self, values, probe):
        histogram = Histogram.build(values)
        assert histogram is not None
        actual = sum(1 for v in values if v < probe) / len(values)
        estimated = histogram.fraction_below(probe)
        # one-bucket resolution plus interpolation slack
        assert abs(estimated - actual) <= 1.5 / (
            len(histogram.boundaries) - 1
        ) + 0.05


class TestSelectivityWithHistograms:
    def _estimate(self, values) -> RelationEstimate:
        stats = ColumnStats(
            min(values),
            max(values),
            len(set(values)),
            0.0,
            Histogram.build(values),
        )
        return RelationEstimate(float(len(values)), {"t.c": stats})

    def test_skew_aware_range_selectivity(self):
        # heavy skew toward small values
        values = [i % 10 for i in range(900)] + list(range(10, 1000, 10))
        est = self._estimate(values)
        predicate = Comparison("<", ColumnRef("c", "t"), Literal(10))
        selectivity = predicate_selectivity(predicate, est)
        # uniform interpolation would say ~1%; the truth is ~90%
        assert selectivity > 0.7

    def test_uniform_fallback_without_histogram(self):
        stats = ColumnStats(0, 100, 100, 0.0, histogram=None)
        est = RelationEstimate(100.0, {"t.c": stats})
        predicate = Comparison("<", ColumnRef("c", "t"), Literal(50))
        assert predicate_selectivity(predicate, est) == pytest.approx(
            0.5, abs=0.1
        )


def test_analyze_collects_histograms():
    db = Database(num_segments=2)
    db.create_table(
        "t",
        TableSchema.of(("a", t.INT), ("b", t.TEXT)),
        distribution=DistributionPolicy.hashed("a"),
    )
    rng = random.Random(12)
    db.insert("t", [(rng.randrange(100), "x") for _ in range(200)])
    db.analyze()
    stats = db.statistics.get(db.catalog.table("t"))
    assert stats.column("a").histogram is not None
    assert stats.column("b").histogram is not None  # strings order fine
