"""Memo internals: copy-in structure, logical properties, deduplication."""

import pytest

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.logical.ops import LogicalGet, LogicalJoin
from repro.optimizer.memo import Memo
from repro.optimizer.rules import explore, implement


@pytest.fixture(scope="module")
def db() -> Database:
    database = Database(num_segments=2)
    database.create_table(
        "p",
        TableSchema.of(("k", t.INT), ("v", t.INT)),
        distribution=DistributionPolicy.hashed("k"),
        partition_scheme=PartitionScheme([uniform_int_level("k", 0, 10, 2)]),
    )
    database.create_table(
        "q", TableSchema.of(("x", t.INT), ("y", t.INT))
    )
    database.insert("p", [(i % 10, i) for i in range(40)])
    database.insert("q", [(i, i) for i in range(20)])
    database.analyze()
    return database


def _memo_for(db, sql) -> Memo:
    memo = Memo(db.statistics)
    memo.copy_in(db.bind(sql))
    return memo


def test_copy_in_assigns_part_scan_ids(db):
    memo = _memo_for(db, "SELECT * FROM p, q WHERE p.k = q.x")
    assert list(memo.part_scans) == [1]
    table, alias = memo.part_scans[1]
    assert table.name == "p" and alias == "p"


def test_consumer_specs_propagate_upward(db):
    memo = _memo_for(db, "SELECT * FROM p, q WHERE p.k = q.x")
    root = memo.groups[-1]
    assert root.consumer_ids == {1}
    get_groups = [
        g
        for g in memo
        if any(isinstance(ge.op, LogicalGet) for ge in g.logical_exprs())
    ]
    partitioned = [g for g in get_groups if g.consumer_ids]
    unpartitioned = [g for g in get_groups if not g.consumer_ids]
    assert len(partitioned) == 1 and len(unpartitioned) == 1


def test_aliases_and_layouts(db):
    memo = _memo_for(db, "SELECT * FROM p a1, q a2 WHERE a1.k = a2.x")
    join_group = next(
        g
        for g in memo
        if any(isinstance(ge.op, LogicalJoin) for ge in g.logical_exprs())
    )
    assert join_group.aliases == {"a1", "a2"}
    slot_names = [name for _, name in join_group.layout.slots]
    assert "k" in slot_names and "x" in slot_names


def test_estimates_scale_with_filters(db):
    full = _memo_for(db, "SELECT * FROM p")
    filtered = _memo_for(db, "SELECT * FROM p WHERE v = 3")
    # compare Get-group vs Select-group estimates through the root project
    assert filtered.groups[-1].estimate.rows < full.groups[-1].estimate.rows


def test_duplicate_gexprs_rejected(db):
    memo = _memo_for(db, "SELECT * FROM p, q WHERE p.k = q.x")
    group = memo.groups[-1]
    before = len(group.gexprs)
    gexpr = group.gexprs[0]
    assert group.add(gexpr) is False
    assert len(group.gexprs) == before


def test_commutativity_is_idempotent(db):
    memo = _memo_for(db, "SELECT * FROM p, q WHERE p.k = q.x")
    explore(memo)
    counts = [len(g.gexprs) for g in memo]
    explore(memo)  # no growth on the second run
    assert [len(g.gexprs) for g in memo] == counts


def test_implement_adds_physical_alternatives(db):
    memo = _memo_for(db, "SELECT * FROM p, q WHERE p.k = q.x")
    explore(memo)
    implement(memo)
    join_group = next(
        g
        for g in memo
        if any(isinstance(ge.op, LogicalJoin) for ge in g.logical_exprs())
    )
    names = sorted(
        type(ge.op).__name__ for ge in join_group.physical_exprs()
    )
    # two logical joins (commuted) x {HashJoin, NLJoin}
    assert names.count("HashJoin") == 2
    assert names.count("NLJoin") == 2


def test_semi_join_memo_child_order(db):
    memo = _memo_for(
        db, "SELECT v FROM p WHERE k IN (SELECT x FROM q)"
    )
    explore(memo)
    implement(memo)
    semi_groups = [
        g
        for g in memo
        if any(
            isinstance(ge.op, LogicalJoin) and ge.op.kind == "semi"
            for ge in g.logical_exprs()
        )
    ]
    assert semi_groups
    group = semi_groups[0]
    hash_joins = [
        ge
        for ge in group.physical_exprs()
        if type(ge.op).__name__ == "HashJoin"
    ]
    logical = next(
        ge for ge in group.logical_exprs() if isinstance(ge.op, LogicalJoin)
    )
    # physical semi hash join swaps children: build = subquery side
    assert hash_joins[0].child_groups == (
        logical.child_groups[1],
        logical.child_groups[0],
    )
