"""The Orca-style optimizer: plan shapes, property enforcement, partition
selection as an enforced property (paper Section 3.1, Figures 13-14)."""


from repro.optimizer.memo import Memo
from repro.optimizer.orca import OrcaOptimizer
from repro.optimizer.rules import explore, implement
from repro.physical.ops import (
    BroadcastMotion,
    DynamicScan,
    GatherMotion,
    HashJoin,
    Motion,
    PartitionSelector,
    RedistributeMotion,
)


def _optimizer(db, **options) -> OrcaOptimizer:
    return db.make_optimizer("orca", **options)


def _plan(db, sql, **options):
    return db.plan(sql, optimizer="orca", **options)


def test_every_plan_has_gather_at_root(orders_db):
    plan = _plan(orders_db, "SELECT * FROM orders")
    motions = [op for op in plan.walk() if isinstance(op, GatherMotion)]
    assert motions, "results must be gathered to the coordinator"


def test_static_selection_unit(orders_db):
    """Constant predicate resolves as PartitionSelector directly over the
    DynamicScan (the Figure 5(c) pattern)."""
    plan = _plan(
        orders_db,
        "SELECT * FROM orders WHERE date BETWEEN '10-01-2013' AND '12-31-2013'",
    )
    selector = next(
        op for op in plan.walk() if isinstance(op, PartitionSelector)
    )
    assert selector.spec.has_predicates
    assert isinstance(selector.children[0], DynamicScan)
    plan.validate()


def test_plan_size_independent_of_partition_count():
    """The core compactness claim (Section 2.2): an Orca plan does not
    enumerate partitions."""
    from repro.workloads.tpch import build_lineitem_database

    sizes = []
    for parts in (10, 50):
        db = build_lineitem_database(parts, row_count=200, num_segments=2)
        plan = _plan(db, "SELECT * FROM lineitem")
        sizes.append(plan.size_bytes())
    assert sizes[0] == sizes[1]


def test_join_dpe_produces_plan4_shape(orders_db):
    """Figure 14 Plan 4: PartitionSelector over a broadcast build side, and
    no Motion between the DynamicScan and the join."""
    sql = (
        "SELECT avg(o.amount) FROM orders_fk o, date_dim d "
        "WHERE o.date_id = d.date_id AND d.year = 2013 AND d.month = 11"
    )
    plan = _plan(orders_db, sql)
    join = next(op for op in plan.walk() if isinstance(op, HashJoin))
    build, probe = join.children
    # the build side carries the producer selector
    assert any(isinstance(op, PartitionSelector) for op in build.walk())
    selector = next(
        op for op in build.walk() if isinstance(op, PartitionSelector)
    )
    # streaming predicate references the dimension side
    assert "d." in repr(selector.spec.part_predicates[0])
    # the consumer side is motion-free (the co-location constraint)
    assert not any(isinstance(op, Motion) for op in probe.walk())
    assert any(isinstance(op, DynamicScan) for op in probe.walk())


def test_semi_join_dpe_from_in_subquery(orders_db):
    sql = (
        "SELECT avg(amount) FROM orders_fk WHERE date_id IN "
        "(SELECT date_id FROM date_dim WHERE year = 2013 AND month = 11)"
    )
    plan = _plan(orders_db, sql)
    join = next(op for op in plan.walk() if isinstance(op, HashJoin))
    assert join.kind == "semi"
    build = join.children[0]
    assert any(isinstance(op, PartitionSelector) for op in build.walk())


def test_elimination_disabled_keeps_dynamic_scans(orders_db):
    plan = _plan(
        orders_db,
        "SELECT * FROM orders WHERE date BETWEEN '10-01-2013' AND '12-31-2013'",
        enable_partition_elimination=False,
    )
    selector = next(
        op for op in plan.walk() if isinstance(op, PartitionSelector)
    )
    assert not selector.spec.has_predicates  # Φ: scans all partitions
    assert any(isinstance(op, DynamicScan) for op in plan.walk())


def test_join_dpe_can_be_disabled(orders_db):
    sql = (
        "SELECT avg(o.amount) FROM orders_fk o, date_dim d "
        "WHERE o.date_id = d.date_id AND d.year = 2013 AND d.month = 11"
    )
    plan = _plan(orders_db, sql, enable_join_dpe=False)
    selectors = [
        op for op in plan.walk() if isinstance(op, PartitionSelector)
    ]
    assert len(selectors) == 1
    assert not selectors[0].spec.has_predicates


def test_redistribute_considered_for_equi_join(orders_db):
    """A join on non-distribution keys needs some Motion to co-locate."""
    sql = (
        "SELECT count(*) FROM orders_fk o, date_dim d "
        "WHERE o.date_id = d.date_id"
    )
    plan = _plan(orders_db, sql)
    assert any(
        isinstance(op, (RedistributeMotion, BroadcastMotion))
        for op in plan.walk()
    )
    plan.validate()


def test_all_extracted_plans_validate(orders_db):
    queries = [
        "SELECT * FROM orders",
        "SELECT count(*) FROM orders WHERE amount > 50",
        "SELECT avg(amount) FROM orders WHERE date < '06-01-2012'",
        "SELECT o.order_id FROM orders_fk o, date_dim d "
        "WHERE o.date_id = d.date_id AND d.month = 3 ORDER BY o.order_id LIMIT 5",
        "SELECT year, count(*) AS cnt FROM date_dim GROUP BY year",
        "SELECT DISTINCT month FROM date_dim",
    ]
    for sql in queries:
        plan = _plan(orders_db, sql)
        plan.validate()  # raises on violation


def test_memo_contains_commuted_join(orders_db):
    logical = orders_db.bind(
        "SELECT count(*) FROM orders_fk o, date_dim d "
        "WHERE o.date_id = d.date_id"
    )
    memo = Memo(orders_db.statistics)
    memo.copy_in(logical)
    explore(memo)
    implement(memo)
    join_groups = [
        group
        for group in memo
        if any(
            type(g.op).__name__ == "LogicalJoin" for g in group.logical_exprs()
        )
    ]
    assert join_groups
    group = join_groups[0]
    joins = [
        g for g in group.logical_exprs() if type(g.op).__name__ == "LogicalJoin"
    ]
    child_orders = {g.child_groups for g in joins}
    assert len(child_orders) == 2  # HashJoin[1,2] and HashJoin[2,1]


def test_request_tables_are_cached(orders_db):
    engine = _optimizer(orders_db)
    logical = orders_db.bind(
        "SELECT * FROM orders WHERE date < '06-01-2012'"
    )
    engine.optimize(logical)
    assert engine.memo is not None
    cached = sum(len(group.best) for group in engine.memo)
    assert cached > 0


def test_update_plan_shape(rs_db):
    plan = _plan(rs_db, "UPDATE r SET b = s.b FROM s WHERE r.a = s.a")
    names = [op.name for op in plan.walk()]
    assert names[0] == "Update"
    assert "DynamicScan" in names
    assert "LeafScan" not in names  # compact: no partition enumeration


def test_memo_describe_smoke(orders_db):
    engine = _optimizer(orders_db)
    logical = orders_db.bind("SELECT * FROM orders")
    engine.optimize(logical)
    text = engine.memo.describe()
    assert "GROUP 0" in text and "req" in text
