"""Interval algebra: unit tests plus property-based checks of the set
invariants partition selection relies on."""

import pytest
from hypothesis import given, strategies as st

from repro.catalog.constraints import Interval, IntervalSet
from repro.errors import PartitionError


class TestInterval:
    def test_half_open_contains(self):
        interval = Interval(10, 20)
        assert interval.contains(10)
        assert interval.contains(19)
        assert not interval.contains(20)
        assert not interval.contains(9)

    def test_point_interval(self):
        point = Interval.point(5)
        assert point.contains(5)
        assert not point.contains(4)
        assert not point.contains(6)

    def test_null_never_contained(self):
        assert not Interval.unbounded().contains(None)

    def test_open_ended(self):
        assert Interval.at_least(3).contains(3)
        assert not Interval.greater_than(3).contains(3)
        assert Interval.at_most(3).contains(3)
        assert not Interval.less_than(3).contains(3)
        assert Interval.less_than(3).contains(-(10**9))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(PartitionError):
            Interval(5, 4)
        with pytest.raises(PartitionError):
            Interval(5, 5, True, False)  # degenerate must be closed
        with pytest.raises(PartitionError):
            Interval.point(None)

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(5, 15))
        assert not Interval(0, 10).overlaps(Interval(10, 20))  # half-open
        assert Interval(0, 10, True, True).overlaps(Interval(10, 20))
        assert Interval.unbounded().overlaps(Interval.point(1234))

    def test_works_with_strings_and_dates(self):
        import datetime

        assert Interval("a", "m").contains("hello")
        day = datetime.date(2013, 6, 1)
        assert Interval(
            datetime.date(2013, 1, 1), datetime.date(2014, 1, 1)
        ).contains(day)


class TestIntervalSet:
    def test_normalization_merges_adjacent(self):
        merged = IntervalSet.of(Interval(0, 5), Interval(5, 10))
        assert len(merged) == 1
        assert merged.contains(0) and merged.contains(9)

    def test_normalization_keeps_gaps(self):
        gappy = IntervalSet.of(Interval(0, 5), Interval(6, 10))
        assert len(gappy) == 2
        assert not gappy.contains(5)

    def test_points(self):
        points = IntervalSet.points([3, 1, 2])
        assert all(points.contains(v) for v in (1, 2, 3))
        assert not points.contains(4)
        assert len(points) == 3

    def test_adjacent_points_merge(self):
        # [1,1] and (1,2] style merging: exact duplicates collapse
        points = IntervalSet.points([1, 1, 1])
        assert len(points) == 1

    def test_intersect(self):
        a = IntervalSet.of(Interval(0, 10))
        b = IntervalSet.of(Interval(5, 15))
        both = a.intersect(b)
        assert both.contains(5) and both.contains(9)
        assert not both.contains(4)
        assert not both.contains(10)

    def test_union(self):
        a = IntervalSet.of(Interval(0, 5))
        b = IntervalSet.of(Interval(10, 15))
        merged = a.union(b)
        assert len(merged) == 2
        assert merged.contains(0) and merged.contains(12)

    def test_complement_roundtrip(self):
        original = IntervalSet.of(Interval(0, 5), Interval(10, 15))
        assert original.complement().complement() == original

    def test_complement_of_empty_is_all(self):
        assert IntervalSet.EMPTY.complement() == IntervalSet.ALL
        assert IntervalSet.ALL.complement() == IntervalSet.EMPTY

    def test_covers(self):
        big = IntervalSet.of(Interval(0, 100))
        small = IntervalSet.of(Interval(10, 20), Interval(30, 40))
        assert big.covers(small)
        assert not small.covers(big)

    def test_difference(self):
        a = IntervalSet.of(Interval(0, 10))
        b = IntervalSet.of(Interval(3, 5))
        diff = a.difference(b)
        assert diff.contains(2) and diff.contains(5)
        assert not diff.contains(3) and not diff.contains(4)

    def test_is_universe(self):
        assert IntervalSet.ALL.is_universe
        assert not IntervalSet.of(Interval(None, 5)).is_universe


# -- property-based tests ----------------------------------------------------

_bounds = st.integers(min_value=-50, max_value=50)


@st.composite
def interval_sets(draw) -> IntervalSet:
    intervals = []
    for _ in range(draw(st.integers(0, 4))):
        lo = draw(_bounds)
        width = draw(st.integers(0, 20))
        if width == 0:
            intervals.append(Interval.point(lo))
        else:
            intervals.append(
                Interval(
                    lo,
                    lo + width,
                    draw(st.booleans()),
                    draw(st.booleans()),
                )
            )
    return IntervalSet(intervals)


probe_values = st.integers(min_value=-60, max_value=80)


@given(interval_sets(), interval_sets(), probe_values)
def test_intersection_is_conjunction(a, b, value):
    assert a.intersect(b).contains(value) == (
        a.contains(value) and b.contains(value)
    )


@given(interval_sets(), interval_sets(), probe_values)
def test_union_is_disjunction(a, b, value):
    assert a.union(b).contains(value) == (
        a.contains(value) or b.contains(value)
    )


@given(interval_sets(), probe_values)
def test_complement_is_negation(a, value):
    assert a.complement().contains(value) == (not a.contains(value))


@given(interval_sets())
def test_normalized_intervals_are_sorted_and_disjoint(a):
    for prev, nxt in zip(a.intervals, a.intervals[1:]):
        assert not prev.overlaps(nxt)
        assert prev.lo is None or nxt.lo is None or prev.lo <= nxt.lo


@given(interval_sets(), interval_sets())
def test_covers_matches_difference(a, b):
    assert a.covers(b) == b.difference(a).is_empty
