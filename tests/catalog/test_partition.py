"""Partition model: routing (f_T), selection (f*_T), multi-level schemes —
including the paper's Figure 10 selection table."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.catalog.constraints import Interval, IntervalSet
from repro.catalog.partition import (
    PartitionLevel,
    PartitionScheme,
    PartitionSlot,
    list_level,
    monthly_range_level,
    range_level,
    uniform_int_level,
)
from repro.errors import PartitionError


class TestPartitionLevel:
    def test_range_routing(self):
        level = range_level("k", [0, 10, 20, 30])
        assert level.route(0) == 0
        assert level.route(9) == 0
        assert level.route(10) == 1
        assert level.route(29) == 2
        assert level.route(30) is None  # ⊥: outside all ranges
        assert level.route(-1) is None
        assert level.route(None) is None

    def test_list_routing(self):
        level = list_level("k", [("ab", ["a", "b"]), ("c", ["c"])])
        assert level.route("a") == 0
        assert level.route("b") == 0
        assert level.route("c") == 1
        assert level.route("d") is None

    def test_overlapping_slots_rejected(self):
        with pytest.raises(PartitionError):
            PartitionLevel(
                "k",
                [
                    PartitionSlot("p0", IntervalSet.of(Interval(0, 10))),
                    PartitionSlot("p1", IntervalSet.of(Interval(5, 15))),
                ],
            )

    def test_empty_level_rejected(self):
        with pytest.raises(PartitionError):
            PartitionLevel("k", [])

    def test_selection_with_no_predicate_returns_all(self):
        level = range_level("k", [0, 10, 20])
        assert level.select(None) == [0, 1]
        assert level.select(IntervalSet.ALL) == [0, 1]

    def test_selection_with_predicate(self):
        level = range_level("k", [0, 10, 20, 30])
        selected = level.select(IntervalSet.of(Interval(5, 12)))
        assert selected == [0, 1]

    def test_selection_empty_predicate(self):
        level = range_level("k", [0, 10, 20])
        assert level.select(IntervalSet.EMPTY) == []

    def test_non_contiguous_level_falls_back_to_scan_routing(self):
        level = PartitionLevel(
            "k",
            [
                PartitionSlot("low", IntervalSet.of(Interval(0, 10))),
                PartitionSlot("high", IntervalSet.of(Interval(20, 30))),
            ],
        )
        assert level._range_bounds is None
        assert level.route(5) == 0
        assert level.route(15) is None
        assert level.route(25) == 1


class TestPartitionScheme:
    def test_single_level_shape(self):
        scheme = PartitionScheme([range_level("k", [0, 10, 20])])
        assert scheme.num_levels == 1
        assert scheme.num_leaves == 2
        assert list(scheme.leaf_ids()) == [(0,), (1,)]

    def test_duplicate_keys_rejected(self):
        with pytest.raises(PartitionError):
            PartitionScheme(
                [range_level("k", [0, 10]), range_level("k", [0, 10])]
            )

    def test_monthly_level_matches_figure_1(self):
        """24 monthly partitions; a Q4 predicate selects the last three."""
        scheme = PartitionScheme(
            [monthly_range_level("date", datetime.date(2012, 1, 1), 24)]
        )
        assert scheme.num_leaves == 24
        q4 = IntervalSet.of(
            Interval(
                datetime.date(2013, 10, 1),
                datetime.date(2013, 12, 31),
                True,
                True,
            )
        )
        assert scheme.select({"date": q4}) == [(21,), (22,), (23,)]

    def test_multilevel_shape_matches_figure_9(self):
        """24 months x 2 regions = 48 leaves."""
        scheme = _figure9_scheme()
        assert scheme.num_levels == 2
        assert scheme.num_leaves == 48

    def test_figure_10_selection_table(self):
        """The paper's Figure 10: per-predicate leaf sets."""
        scheme = _figure9_scheme()
        jan_2012 = IntervalSet.of(Interval(0, 10))  # first date slot
        region_1 = IntervalSet.points(["Region 1"])

        # date='Jan-2012' -> all regions of the first month: T1,1 .. T1,n
        selected = scheme.select({"date_id": jan_2012})
        assert selected == [(0, 0), (0, 1)]

        # region='Region 1' -> that region in every month: T1,1 .. T24,1
        selected = scheme.select({"region": region_1})
        assert selected == [(month, 0) for month in range(24)]

        # both predicates -> exactly T1,1
        selected = scheme.select({"date_id": jan_2012, "region": region_1})
        assert selected == [(0, 0)]

        # no predicate -> all leaf OIDs
        assert len(scheme.select({})) == 48

    def test_multilevel_routing(self):
        scheme = _figure9_scheme()
        assert scheme.route({"date_id": 15, "region": "Region 2"}) == (1, 1)
        assert scheme.route({"date_id": 15, "region": "nowhere"}) is None
        assert scheme.route({"date_id": 9999, "region": "Region 1"}) is None

    def test_leaf_names_and_constraints(self):
        scheme = _figure9_scheme()
        name = scheme.leaf_name((0, 1))
        assert "/" in name
        constraints = scheme.leaf_constraints((0, 1))
        assert set(constraints) == {"date_id", "region"}
        assert constraints["region"].contains("Region 2")


class TestUniformIntLevel:
    def test_covers_domain_exactly(self):
        level = uniform_int_level("k", 0, 1000, 7)
        assert len(level) == 7
        assert level.route(0) == 0
        assert level.route(999) == 6
        assert level.route(1000) is None

    def test_rejects_impossible_split(self):
        with pytest.raises(PartitionError):
            uniform_int_level("k", 0, 3, 10)
        with pytest.raises(PartitionError):
            uniform_int_level("k", 10, 10, 1)


def _figure9_scheme() -> PartitionScheme:
    return PartitionScheme(
        [
            uniform_int_level("date_id", 0, 240, 24),
            list_level(
                "region", [("r1", ["Region 1"]), ("r2", ["Region 2"])]
            ),
        ]
    )


# -- property-based invariants -------------------------------------------------


@given(st.integers(min_value=-100, max_value=1100))
def test_routing_is_total_over_domain(value):
    """Every in-domain value maps to exactly one slot whose constraint
    contains it; out-of-domain values map to ⊥."""
    level = uniform_int_level("k", 0, 1000, 13)
    slot = level.route(value)
    containing = [
        i for i, s in enumerate(level.slots) if s.constraint.contains(value)
    ]
    if 0 <= value < 1000:
        assert containing == [slot]
    else:
        assert slot is None
        assert containing == []


@given(
    st.integers(min_value=0, max_value=999),
    st.integers(min_value=1, max_value=999),
)
def test_selection_soundness(lo, width):
    """f*_T soundness: any value satisfying the predicate routes to a
    selected slot (the invariant pruning correctness rests on)."""
    level = uniform_int_level("k", 0, 1000, 13)
    hi = min(lo + width, 1000)
    predicate = IntervalSet.of(Interval(lo, hi))
    selected = set(level.select(predicate))
    for value in range(lo, hi):
        slot = level.route(value)
        assert slot in selected
