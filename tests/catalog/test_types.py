"""Column types, date helpers, value validation."""

import datetime

import pytest

from repro import types as t
from repro.errors import ReproError
from repro.types import (
    DataType,
    TypeKind,
    TypeMismatchError,
    add_months,
    date_value,
    infer_type,
)


class TestDataType:
    def test_interning(self):
        assert DataType(TypeKind.INT) is t.INT
        assert DataType(TypeKind.DATE) is t.DATE

    def test_int_validation(self):
        assert t.INT.validate(5) == 5
        assert t.INT.validate(None) is None
        with pytest.raises(TypeMismatchError):
            t.INT.validate("5")
        with pytest.raises(TypeMismatchError):
            t.INT.validate(True)  # bools are not ints here

    def test_float_validation_coerces_ints(self):
        assert t.FLOAT.validate(5) == 5.0
        assert isinstance(t.FLOAT.validate(5), float)
        with pytest.raises(TypeMismatchError):
            t.FLOAT.validate("x")

    def test_text_validation(self):
        assert t.TEXT.validate("abc") == "abc"
        with pytest.raises(TypeMismatchError):
            t.TEXT.validate(1)

    def test_date_validation_accepts_strings(self):
        day = datetime.date(2013, 10, 1)
        assert t.DATE.validate(day) == day
        assert t.DATE.validate("2013-10-01") == day
        assert t.DATE.validate("10-01-2013") == day
        with pytest.raises(TypeMismatchError):
            t.DATE.validate(20131001)
        with pytest.raises(TypeMismatchError):
            t.DATE.validate(datetime.datetime(2013, 10, 1, 12))

    def test_bool_validation(self):
        assert t.BOOL.validate(True) is True
        with pytest.raises(TypeMismatchError):
            t.BOOL.validate(1)

    def test_is_numeric(self):
        assert t.INT.is_numeric and t.FLOAT.is_numeric
        assert not t.TEXT.is_numeric and not t.DATE.is_numeric


class TestDateHelpers:
    def test_date_value_both_spellings(self):
        assert date_value("2013-10-01") == datetime.date(2013, 10, 1)
        assert date_value("10-01-2013") == datetime.date(2013, 10, 1)

    def test_date_value_errors(self):
        for bad in ("2013/10/01", "oct-1-2013", "2013-10", "13-45-2013"):
            with pytest.raises(ReproError):
                date_value(bad)

    def test_add_months(self):
        assert add_months(datetime.date(2012, 1, 31), 1) == datetime.date(
            2012, 2, 29
        )  # clamped, leap year
        assert add_months(datetime.date(2012, 11, 15), 2) == datetime.date(
            2013, 1, 15
        )
        assert add_months(datetime.date(2012, 3, 1), -1) == datetime.date(
            2012, 2, 1
        )

    def test_infer_type(self):
        assert infer_type(True) is t.BOOL
        assert infer_type(1) is t.INT
        assert infer_type(1.5) is t.FLOAT
        assert infer_type("x") is t.TEXT
        assert infer_type(datetime.date(2020, 1, 1)) is t.DATE
        with pytest.raises(ReproError):
            infer_type([1, 2])
