"""Catalog: DDL, OID assignment, leaf lookup, distribution policies."""

import pytest

from repro import types as t
from repro.catalog import (
    Catalog,
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.errors import CatalogError, PartitionError


@pytest.fixture
def catalog() -> Catalog:
    return Catalog()


SCHEMA = TableSchema.of(("a", t.INT), ("b", t.INT))


def test_create_unpartitioned(catalog):
    desc = catalog.create_table("t", SCHEMA)
    assert not desc.is_partitioned
    assert desc.num_leaves == 0
    assert catalog.table("t") is desc
    assert catalog.table_by_oid(desc.oid) is desc


def test_default_distribution_is_first_column(catalog):
    desc = catalog.create_table("t", SCHEMA)
    assert desc.distribution == DistributionPolicy.hashed("a")


def test_duplicate_table_rejected(catalog):
    catalog.create_table("t", SCHEMA)
    with pytest.raises(CatalogError):
        catalog.create_table("t", SCHEMA)


def test_unknown_table_and_oid(catalog):
    with pytest.raises(CatalogError):
        catalog.table("nope")
    with pytest.raises(CatalogError):
        catalog.table_by_oid(12345)


def test_partitioned_table_gets_leaf_oids(catalog):
    desc = catalog.create_table(
        "p",
        SCHEMA,
        partition_scheme=PartitionScheme([uniform_int_level("b", 0, 100, 5)]),
    )
    assert desc.is_partitioned
    assert desc.num_leaves == 5
    oids = desc.all_leaf_oids()
    assert len(set(oids)) == 5
    assert desc.oid not in oids
    for oid in oids:
        assert catalog.owner_of_leaf(oid) is desc
        assert desc.leaf_oid(desc.leaf_id(oid)) == oid


def test_partition_key_must_be_a_column(catalog):
    with pytest.raises(CatalogError):
        catalog.create_table(
            "p",
            SCHEMA,
            partition_scheme=PartitionScheme(
                [uniform_int_level("missing", 0, 100, 5)]
            ),
        )


def test_distribution_column_must_exist(catalog):
    with pytest.raises(CatalogError):
        catalog.create_table(
            "t", SCHEMA, distribution=DistributionPolicy.hashed("zzz")
        )


def test_distribution_policy_validation():
    with pytest.raises(CatalogError):
        DistributionPolicy("hashed")  # missing column
    with pytest.raises(CatalogError):
        DistributionPolicy("replicated", "a")
    with pytest.raises(CatalogError):
        DistributionPolicy("round_robin")


def test_route_row(catalog):
    desc = catalog.create_table(
        "p",
        SCHEMA,
        partition_scheme=PartitionScheme([uniform_int_level("b", 0, 100, 5)]),
    )
    assert desc.route_row((1, 0)) == (0,)
    assert desc.route_row((1, 99)) == (4,)
    assert desc.route_row((1, 100)) is None


def test_select_leaf_oids_unrestricted(catalog):
    desc = catalog.create_table(
        "p",
        SCHEMA,
        partition_scheme=PartitionScheme([uniform_int_level("b", 0, 100, 5)]),
    )
    assert desc.select_leaf_oids() == desc.all_leaf_oids()


def test_drop_table_releases_leaves(catalog):
    desc = catalog.create_table(
        "p",
        SCHEMA,
        partition_scheme=PartitionScheme([uniform_int_level("b", 0, 100, 5)]),
    )
    leaf = desc.all_leaf_oids()[0]
    catalog.drop_table("p")
    assert not catalog.has_table("p")
    with pytest.raises(CatalogError):
        catalog.owner_of_leaf(leaf)


def test_leaf_lookup_errors(catalog):
    desc = catalog.create_table(
        "p",
        SCHEMA,
        partition_scheme=PartitionScheme([uniform_int_level("b", 0, 100, 5)]),
    )
    with pytest.raises(PartitionError):
        desc.leaf_oid((99,))
    with pytest.raises(PartitionError):
        desc.leaf_id(desc.oid)


def test_schema_validation():
    with pytest.raises(CatalogError):
        TableSchema.of(("a", t.INT), ("a", t.TEXT))
    schema = TableSchema.of(("a", t.INT), ("b", t.TEXT))
    assert schema.column_index("b") == 1
    assert schema.column_names == ("a", "b")
    assert schema.validate_row([1, "x"]) == (1, "x")
    with pytest.raises(CatalogError):
        schema.validate_row([1])
    with pytest.raises(Exception):
        schema.validate_row(["not-int", "x"])
