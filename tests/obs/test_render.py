"""Rendering: EXPLAIN ANALYZE annotation lines and EXPLAIN (TRACE) output."""

from __future__ import annotations

import re

from repro.obs import Tracer, activate
from repro.obs import trace as obs_trace
from repro.obs.render import render_explain_analyze, render_explain_trace


def _analyzed(db, sql):
    return db.sql(sql, analyze=True)


def test_per_node_rows_and_time_formatting(orders_db):
    result = _analyzed(
        orders_db,
        "SELECT count(*) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013'",
    )
    text = render_explain_analyze(result.metrics)
    lines = text.splitlines()
    node_lines = [line for line in lines if "actual rows=" in line]
    assert len(node_lines) == len(result.metrics.nodes)
    # with analyze=True every node line carries a millisecond timing
    for line in node_lines:
        assert re.search(r"time=\d+\.\d{2} ms", line), line
    # scan nodes report elimination and raw reads
    scan_line = next(line for line in lines if "DynamicScan" in line)
    assert "partitions: 3/24" in scan_line
    assert "rows scanned=" in scan_line
    # the tree is indented by node depth
    assert lines[0] == lines[0].lstrip()
    assert any(line.startswith("  ") for line in node_lines[1:])
    # trailer sections
    assert any(line.startswith("PartitionSelector 1:") for line in lines)
    assert any(line.startswith("Slice 0 (root):") for line in lines)
    assert any(line.startswith("Total:") for line in lines)


def test_timing_omitted_when_not_analyzed(orders_db):
    result = orders_db.sql("SELECT count(*) FROM date_dim")
    text = render_explain_analyze(result.metrics)
    assert "actual rows=" in text
    assert "time=" not in text


def test_zero_row_nodes_render(orders_db):
    result = _analyzed(orders_db, "SELECT * FROM orders WHERE amount < 0")
    assert result.rows == []
    text = render_explain_analyze(result.metrics)
    lines = [line for line in text.splitlines() if "actual rows=" in line]
    # the root produced nothing, while the scan below it still reports the
    # rows it had to read
    assert "actual rows=0" in lines[0]
    assert any("rows scanned=2400" in line for line in lines)
    # a Motion that routed no rows gets no "moved" annotation (the kind is
    # only learned from the first routed row)
    motion_line = next(line for line in lines if "GatherMotion" in line)
    assert "actual rows=0" in motion_line
    assert "moved" not in motion_line


def test_resilience_line_absent_on_clean_runs(orders_db):
    result = orders_db.sql("SELECT count(*) FROM date_dim")
    assert "Resilience:" not in render_explain_analyze(result.metrics)


def test_resilience_line_singular_and_plural(orders_db):
    result = orders_db.sql("SELECT count(*) FROM date_dim")
    metrics = result.metrics
    metrics.record_retry(1, 1, 2, "scan_row")
    text = render_explain_analyze(metrics)
    assert "Resilience: 1 slice retry, 0 failovers" in text
    metrics.record_retry(1, 2, 2, "scan_row")
    metrics.record_failover(2, "scan_row")
    text = render_explain_analyze(metrics)
    assert "Resilience: 2 slice retries, 1 failover" in text
    assert "(mirror serving segment 2)" in text
    metrics.record_failover(3, "motion_send")
    text = render_explain_analyze(metrics)
    assert "2 failovers" in text
    assert "(mirror serving segments 2, 3)" in text


def test_render_explain_trace_sections():
    tracer = Tracer()
    with activate(tracer):
        with obs_trace.span("optimize", optimizer="orca"):
            with obs_trace.span("place_partition_selectors", specs=1):
                pass
    text = render_explain_trace("PLAN TEXT", tracer)
    lines = text.splitlines()
    assert lines[0] == "PLAN TEXT"
    assert "Optimization trace:" in lines
    optimize_line = next(line for line in lines if "optimize:" in line)
    assert "optimizer=orca" in optimize_line
    nested = next(line for line in lines if "place_partition_selectors" in line)
    # nested span indented one level deeper than its parent
    assert len(nested) - len(nested.lstrip()) > len(optimize_line) - len(
        optimize_line.lstrip()
    )
    assert "Search summary:" in text


def test_render_explain_trace_without_spans():
    text = render_explain_trace("PLAN", Tracer())
    assert "(no spans recorded)" in text
