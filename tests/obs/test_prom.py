"""The shared Prometheus exporter: text-format correctness for every
family the engine exports (label escaping, HELP/TYPE lines, histogram
bucket monotonicity, deterministic ordering)."""

from __future__ import annotations

import re

import pytest

from repro.obs.prom import (
    MetricFamily,
    escape_help,
    escape_label_value,
    export_prometheus,
    format_labels,
    format_value,
    histogram_family,
    render,
)

# -- escaping ----------------------------------------------------------------


@pytest.mark.parametrize(
    ("raw", "escaped"),
    [
        ("plain", "plain"),
        ('say "hi"', 'say \\"hi\\"'),
        ("back\\slash", "back\\\\slash"),
        ("two\nlines", "two\\nlines"),
        ('all \\ " \n three', 'all \\\\ \\" \\n three'),
    ],
)
def test_label_value_escaping(raw, escaped):
    assert escape_label_value(raw) == escaped


def test_help_escaping_leaves_quotes_alone():
    # per the exposition format spec, HELP escapes only backslash+newline
    assert escape_help('a "quoted" \\ line\n') == 'a "quoted" \\\\ line\\n'


def test_format_labels_sorted_and_escaped():
    rendered = format_labels({"zeta": 'v"1"', "alpha": "x"})
    assert rendered == '{alpha="x",zeta="v\\"1\\""}'
    assert format_labels(None) == ""
    assert format_labels({}) == ""


def test_format_value_types():
    assert format_value(3) == "3"
    assert format_value(True) == "1"
    assert format_value(0.5) == "0.5"
    assert format_value(float("inf")) == "+Inf"
    assert format_value(float("-inf")) == "-Inf"


# -- families ----------------------------------------------------------------


def test_family_renders_help_type_then_samples():
    family = MetricFamily("demo_total", "counter", "A demo")
    family.add(1).add(2, shard="a")
    lines = family.render_lines()
    assert lines[0] == "# HELP demo_total A demo"
    assert lines[1] == "# TYPE demo_total counter"
    assert lines[2] == "demo_total 1"
    assert lines[3] == 'demo_total{shard="a"} 2'


def test_family_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown metric kind"):
        MetricFamily("x", "celsius", "nope")


def test_render_is_deterministic_and_newline_terminated():
    def build():
        one = MetricFamily("a_total", "counter", "a").add(1, z="1", a="2")
        two = MetricFamily("b", "gauge", "b").add(2)
        return render([one, two])

    first, second = build(), build()
    assert first == second
    assert first.endswith("\n")
    assert not first.endswith("\n\n")


def test_histogram_family_buckets_are_cumulative_and_monotonic():
    family = histogram_family(
        "lat_seconds",
        "latency",
        bounds=[0.1, 0.5, 1.0],
        bucket_counts=[3, 2, 0, 1],  # non-cumulative, overflow last
        total_sum=2.5,
        count=6,
    )
    text = render([family])
    bucket_values = [
        int(m.group(1))
        for m in re.finditer(r'lat_seconds_bucket\{le="[^"]+"\} (\d+)', text)
    ]
    assert bucket_values == [3, 5, 5, 6]
    assert bucket_values == sorted(bucket_values)  # monotone non-decreasing
    assert text.index('le="0.1"') < text.index('le="+Inf"')
    assert "lat_seconds_sum 2.5" in text
    assert "lat_seconds_count 6" in text


def test_histogram_family_checks_bucket_arity():
    with pytest.raises(ValueError, match="bucket counts"):
        histogram_family("h", "x", [1.0], [1], 0.0, 1)


def test_histogram_family_labels_merge_with_le():
    family = histogram_family(
        "h", "x", [1.0], [1, 0], 1.0, 1, labels={"shard": "a"}
    )
    text = render([family])
    assert 'h_bucket{le="1.0",shard="a"} 1' in text
    assert 'h_sum{shard="a"} 1.0' in text


# -- the consolidated scrape body --------------------------------------------


def _parse_families(text: str) -> dict[str, str]:
    """name -> kind for every # TYPE line."""
    return dict(re.findall(r"# TYPE (\S+) (\S+)", text))


def test_export_prometheus_consolidates_every_subsystem(orders_db):
    orders_db.sql("SELECT count(*) FROM orders")
    body = export_prometheus(orders_db)
    families = _parse_families(body)
    # one exporter, all prefixes (serving only while a server runs)
    assert "repro_query_calls_total" in families
    assert "repro_cache_hits_total" in families
    assert "repro_live_queries" in families
    assert families["repro_live_query_seconds"] == "histogram"
    assert not any(name.startswith("repro_serving_") for name in families)
    # every family has exactly one HELP and one TYPE, HELP first
    for name in families:
        assert body.count(f"# TYPE {name} ") == 1
        assert body.count(f"# HELP {name} ") == 1
        assert body.index(f"# HELP {name} ") < body.index(f"# TYPE {name} ")
    # two scrapes of an idle instance are byte-identical
    assert export_prometheus(orders_db) == export_prometheus(orders_db)


def test_export_prometheus_includes_serving_when_server_open(orders_db):
    session = orders_db.session(name="scrape")
    try:
        session.sql("SELECT count(*) FROM orders")
        body = export_prometheus(orders_db)
        assert "# TYPE repro_serving_admitted_total counter" in body
        assert 'repro_serving_session_inflight{session="scrape"} 0' in body
    finally:
        orders_db.serve().close()


def test_subsystem_to_prometheus_uses_shared_renderer(orders_db):
    # the per-subsystem exports are the same families the consolidated
    # body renders, byte for byte
    body = export_prometheus(orders_db)
    assert orders_db.query_stats.to_prometheus() in body
    assert orders_db.cache.to_prometheus() in body
    assert orders_db.live.to_prometheus() in body
