"""The structured slow-query log: threshold gating, JSONL shape,
size-based rotation, and the engine integration (``SET slow_log`` wires
``db.live.slow_log``)."""

from __future__ import annotations

import json

from repro.obs.slowlog import SlowQueryLog

from ..serving.conftest import make_orders_db


def test_disabled_by_default(tmp_path):
    log = SlowQueryLog()
    assert log.enabled is False
    assert log.maybe_record(10.0, {"q": 1}) is False
    # a threshold alone is not enough: a path is required too
    log.configure(threshold_s=0.0)
    assert log.enabled is False
    assert log.maybe_record(10.0, {"q": 1}) is False
    log.configure(threshold_s=0.0, path=str(tmp_path / "slow.jsonl"))
    assert log.enabled is True
    log.configure(threshold_s=None)
    assert log.enabled is False


def test_threshold_gates_and_jsonl_shape(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = SlowQueryLog(path=str(path), threshold_s=0.5)
    assert log.maybe_record(0.4, {"query": "fast"}) is False
    assert not path.exists()
    assert log.maybe_record(0.5, {"query": "am I slow?", "n": 1}) is True
    assert log.maybe_record(0.9, {"query": 'quo"ted', "n": 2}) is True
    assert log.records_written == 2
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2
    records = [json.loads(line) for line in lines]
    assert records[0] == {"query": "am I slow?", "n": 1}
    assert records[1]["query"] == 'quo"ted'
    # stable key order: keys are sorted within each line
    for line in lines:
        keys = list(json.loads(line))
        assert keys == sorted(keys)


def test_rotation_chain_keeps_bounded_generations(tmp_path):
    path = tmp_path / "slow.jsonl"
    record = {"pad": "x" * 100}
    line_bytes = len(json.dumps(record, sort_keys=True)) + 1
    log = SlowQueryLog(
        path=str(path),
        threshold_s=0.0,
        max_bytes=line_bytes,  # every write after the first rotates
        backups=2,
    )
    for _ in range(5):
        assert log.maybe_record(1.0, record) is True
    # active file + exactly `backups` generations, oldest fell off
    assert path.exists()
    assert (tmp_path / "slow.jsonl.1").exists()
    assert (tmp_path / "slow.jsonl.2").exists()
    assert not (tmp_path / "slow.jsonl.3").exists()
    # every surviving file holds intact JSONL
    for name in ("slow.jsonl", "slow.jsonl.1", "slow.jsonl.2"):
        for line in (tmp_path / name).read_text().splitlines():
            assert json.loads(line) == record


def test_write_errors_never_raise(tmp_path):
    log = SlowQueryLog(
        path=str(tmp_path / "no" / "such" / "dir" / "slow.jsonl"),
        threshold_s=0.0,
    )
    assert log.maybe_record(1.0, {"q": 1}) is False
    assert log.records_written == 0


def test_engine_records_slow_queries_with_phase_timings(tmp_path):
    db = make_orders_db(rows=200, num_segments=2)
    path = tmp_path / "slow.jsonl"
    db.live.slow_log.configure(threshold_s=0.0, path=str(path))
    db.sql("SELECT count(*) FROM orders")
    records = [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
    ]
    assert len(records) == 1
    (record,) = records
    assert record["query"] == "SELECT count(*) FROM orders"
    assert record["phase"] == "done"
    assert record["error"] is None
    assert record["elapsed_s"] > 0.0
    assert record["partitions_eligible"] == 24
    phases = [t["phase"] for t in record["phase_timings"]]
    assert phases[:2] == ["parse", "bind"]
    assert "execute" in phases
    # below-threshold queries stay out once a real threshold is set
    db.live.slow_log.configure(threshold_s=60.0, path=str(path))
    db.sql("SELECT count(*) FROM orders")
    assert db.live.slow_log.records_written == 1
