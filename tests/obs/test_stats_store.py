"""The cumulative query-stats store: fingerprinting, aggregation, exports."""

from __future__ import annotations

import json
import re

from repro.cache import statement_key
from repro.obs import QueryStatsStore, fingerprint

# one sample line: name{query="..."} value
_SAMPLE_RE = re.compile(r'^[a-z_:][a-z0-9_:]*\{query="(?:[^"\\]|\\.)*"\} -?[0-9.e+-]+$')


# ---------------------------------------------------------------------------
# fingerprinting
# ---------------------------------------------------------------------------


def test_fingerprint_replaces_literals():
    assert (
        fingerprint("SELECT * FROM t WHERE a = 42")
        == fingerprint("select *   from T where A=99")
    )
    assert "?" in fingerprint("SELECT * FROM t WHERE a = 42")
    assert "42" not in fingerprint("SELECT * FROM t WHERE a = 42")


def test_fingerprint_replaces_string_and_date_literals():
    a = fingerprint("SELECT 1 FROM orders WHERE date = '05-15-2013'")
    b = fingerprint("SELECT 2 FROM orders WHERE date = '01-01-2012'")
    assert a == b


def test_fingerprint_keeps_parameters_distinct():
    fp = fingerprint("SELECT * FROM t WHERE a = $1 AND b = $2")
    assert "$1" in fp and "$2" in fp


def test_fingerprint_survives_unlexable_input():
    # must never raise — falls back to whitespace-collapsed lowercase
    assert fingerprint("NOT \x00 SQL  AT\tALL") == "not \x00 sql at all"


# ---------------------------------------------------------------------------
# fingerprint vs cache key: aggregation identity is NOT cache identity
# ---------------------------------------------------------------------------
#
# The fingerprint's literal erasure is correct for \stats aggregation and
# would be a seed bug if reused as a cache key: two statements sharing a
# fingerprint can select entirely different partition OID sets.  The cache
# keys on fingerprint + normalized literal/parameter vectors instead
# (src/repro/cache/keys.py); these regressions pin the boundary.


def test_date_in_lists_share_fingerprint_but_not_cache_key():
    # the PR 2 seed-bug shape: same IN-list shape, different date literals,
    # different partition OID sets
    a = "SELECT count(*) FROM orders WHERE date IN ('05-15-2013', '06-15-2013')"
    b = "SELECT count(*) FROM orders WHERE date IN ('01-01-2012', '02-01-2012')"
    assert fingerprint(a) == fingerprint(b)
    assert statement_key(a) != statement_key(b)


def test_param_values_share_fingerprint_but_not_cache_key():
    q = "SELECT count(*) FROM orders WHERE date = $1"
    assert fingerprint(q) == fingerprint(q)
    assert statement_key(q, params=["05-15-2013"]) != statement_key(
        q, params=["01-01-2012"]
    )


def test_cache_key_still_aggregates_under_the_fingerprint(orders_db):
    """Different literal values = one \\stats entry, two cache entries."""
    store = orders_db.stats()
    store.reset()
    orders_db.cache.clear()
    a = "SELECT count(*) FROM orders WHERE date = '05-15-2013'"
    b = "SELECT count(*) FROM orders WHERE date = '07-04-2012'"
    orders_db.sql(a, cache="partitions")
    orders_db.sql(b, cache="partitions")
    assert len(store) == 1  # \stats aggregates the shape
    assert len(orders_db.cache.partitions) == 2  # the cache does not
    # and the two entries cache different partition OID sets — reusing
    # one for the other would scan the wrong month
    entries = [entry for _, entry in orders_db.cache.partitions.items()]
    assert entries[0].scoped != entries[1].scoped


# ---------------------------------------------------------------------------
# aggregation through the engine
# ---------------------------------------------------------------------------


def test_store_aggregates_same_shape_queries(orders_db):
    store = orders_db.stats()
    store.reset()
    orders_db.sql("SELECT count(*) FROM orders WHERE date = '05-15-2013'")
    orders_db.sql("SELECT count(*) FROM orders WHERE date = '07-04-2012'")
    orders_db.sql("SELECT count(*) FROM date_dim")
    assert len(store) == 2
    entry = store.get("SELECT count(*) FROM orders WHERE date = '11-11-2013'")
    assert entry is not None
    assert entry.calls == 2
    assert entry.rows == 2  # one count(*) row per call
    assert entry.total_seconds > 0.0
    assert entry.max_seconds <= entry.total_seconds
    assert entry.mean_seconds == entry.total_seconds / 2
    # one partition per call was opened; all 24 were eligible each time
    assert entry.partitions_scanned == 2
    assert entry.partitions_eligible == 48
    assert entry.retries == 0 and entry.failovers == 0


def test_store_records_every_statement_kind(orders_db):
    store = orders_db.stats()
    store.reset()
    orders_db.sql("SELECT count(*) FROM date_dim")
    assert len(store) == 1
    snapshot = store.to_dict()
    assert snapshot["queries"][0]["calls"] == 1


def test_store_reset(orders_db):
    store = orders_db.stats()
    orders_db.sql("SELECT count(*) FROM date_dim")
    assert len(store) > 0
    store.reset()
    assert len(store) == 0
    assert store.render() == "query statistics: empty (no statements recorded)"


def test_db_stats_returns_the_store(orders_db):
    assert orders_db.stats() is orders_db.query_stats
    assert isinstance(orders_db.stats(), QueryStatsStore)


# ---------------------------------------------------------------------------
# exports
# ---------------------------------------------------------------------------


def test_json_export_is_fingerprint_sorted(orders_db):
    store = orders_db.stats()
    store.reset()
    orders_db.sql("SELECT count(*) FROM orders WHERE date = '05-15-2013'")
    orders_db.sql("SELECT count(*) FROM date_dim")
    data = json.loads(store.to_json())
    fingerprints = [entry["fingerprint"] for entry in data["queries"]]
    assert fingerprints == sorted(fingerprints)
    for entry in data["queries"]:
        assert set(entry) == {
            "fingerprint",
            "calls",
            "total_seconds",
            "mean_seconds",
            "max_seconds",
            "rows",
            "rows_scanned",
            "partitions_scanned",
            "partitions_eligible",
            "retries",
            "failovers",
        }


def test_prometheus_export_parses(orders_db):
    store = orders_db.stats()
    store.reset()
    orders_db.sql("SELECT count(*) FROM orders WHERE date = '05-15-2013'")
    orders_db.sql("SELECT count(*) FROM date_dim")
    text = store.to_prometheus()
    assert text.endswith("\n")
    typed: set[str] = set()
    sampled: set[str] = set()
    for line in text.splitlines():
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            name, kind = line.split()[2:4]
            typed.add(name)
            assert kind in ("counter", "gauge")
            continue
        # every non-comment line is exactly one sample
        assert _SAMPLE_RE.match(line), line
        sampled.add(line.split("{")[0])
    # every sampled metric family was declared, and all nine exist
    assert sampled == typed
    assert len(typed) == 9
    assert "repro_query_calls_total" in typed
    assert "repro_query_partitions_eligible_total" in typed


def test_prometheus_label_escaping():
    store = QueryStatsStore()

    class _Result:
        rows = []
        elapsed_seconds = 0.001

        class metrics:
            total_rows_scanned = 0
            retry_count = 0
            failover_count = 0

            @staticmethod
            def partitions_scanned():
                return 0

            @staticmethod
            def table_stats():
                return {}

    store.record('SELECT "weird\\name" FROM t', _Result())
    text = store.to_prometheus()
    assert '\\\\' in text  # backslash escaped
    assert '\\"' in text  # quote escaped


def test_render_table(orders_db):
    store = orders_db.stats()
    store.reset()
    orders_db.sql("SELECT count(*) FROM orders WHERE date = '05-15-2013'")
    text = store.render()
    assert text.startswith("query statistics (1 fingerprints):")
    assert "calls" in text and "parts k/N" in text
    assert "1/24" in text
