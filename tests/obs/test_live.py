"""The live operations telemetry hub (repro.obs.live).

Units for the bounded building blocks (Histogram, GaugeSeries, the
activity registry) plus engine-level acceptance: an in-flight query is
visible with its current phase and partition progress, cancel-by-id
terminates it, and every completion feeds the histograms and the metrics
export's ``live`` section (schema v7)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import QueryCancelled
from repro.obs.live import (
    ActivityRegistry,
    GaugeSeries,
    Histogram,
    LiveTelemetry,
    linear_buckets,
    log_buckets,
)
from repro.resilience import CancelToken

from ..serving.conftest import make_orders_db

COUNT = "SELECT count(*) FROM orders"


# -- buckets / histogram -----------------------------------------------------


def test_log_buckets_geometric():
    bounds = log_buckets(0.001, 2.0, 4)
    assert bounds == [0.001, 0.002, 0.004, 0.008]
    with pytest.raises(ValueError):
        log_buckets(0.0, 2.0, 4)


def test_linear_buckets():
    assert linear_buckets(0.1, 0.1, 3) == pytest.approx([0.1, 0.2, 0.3])


def test_histogram_observe_and_quantiles():
    h = Histogram([0.01, 0.1, 1.0])
    assert h.quantile(0.5) == 0.0  # empty
    for value in (0.005, 0.005, 0.05, 0.5, 0.5, 0.5):
        h.observe(value)
    assert h.count == 6
    assert h.sum == pytest.approx(1.56)
    assert h.bucket_counts() == [2, 1, 3, 0]
    # nearest-rank over buckets: answers are bucket upper bounds
    assert h.quantile(0.5) == 0.1
    assert h.quantile(0.99) == 1.0
    assert h.percentiles() == {"p50_s": 0.1, "p95_s": 1.0, "p99_s": 1.0}


def test_histogram_overflow_bucket_answers_with_max():
    h = Histogram([1.0])
    h.observe(5.0)
    h.observe(9.0)
    assert h.bucket_counts() == [0, 2]
    assert h.quantile(0.99) == 9.0
    summary = h.to_dict()
    assert summary["min"] == 5.0 and summary["max"] == 9.0


def test_histogram_memory_is_bounded():
    h = Histogram(log_buckets())
    for i in range(10_000):
        h.observe(i * 0.001)
    assert len(h.bucket_counts()) == len(h.bounds) + 1
    assert h.count == 10_000


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram([])
    with pytest.raises(ValueError):
        Histogram([2.0, 1.0])


# -- gauge series ------------------------------------------------------------


def test_gauge_series_ring_buffer_bounds_memory():
    series = GaugeSeries(capacity=8)
    for i in range(100):
        series.sample(float(i))
    assert len(series) == 8
    assert series.last == 99.0
    samples = series.to_dict()["samples"]
    assert [s["value"] for s in samples] == [float(i) for i in range(92, 100)]
    # offsets are monotone
    offsets = [s["offset_s"] for s in samples]
    assert offsets == sorted(offsets)


# -- the activity registry ---------------------------------------------------


def test_registry_register_snapshot_finish():
    registry = ActivityRegistry()
    first = registry.register("SELECT 1", session="a")
    second = registry.register("SELECT 2")
    assert (first.query_id, second.query_id) == (1, 2)
    assert len(registry) == 2
    rows = registry.snapshot()
    assert [r["query_id"] for r in rows] == [1, 2]
    assert rows[0]["session"] == "a" and rows[1]["session"] is None
    assert rows[0]["phase"] == "submitted"
    registry.finish(first)
    assert [r["query_id"] for r in registry.snapshot()] == [2]


def test_registry_cancel_requires_a_token():
    registry = ActivityRegistry()
    plain = registry.register("SELECT 1")
    assert registry.cancel(plain.query_id) is False  # no token
    assert registry.cancel(999) is False  # unknown id
    token = CancelToken()
    armed = registry.register("SELECT 2", cancel=token)
    assert registry.cancel(armed.query_id) is True
    assert token.cancelled


def test_activity_phase_log_is_bounded_and_timed():
    registry = ActivityRegistry()
    activity = registry.register("SELECT 1")
    for i in range(500):
        activity.enter_phase(f"phase:{i}")
    assert len(activity.phase_log) == 256  # bounded
    assert activity.phase == "phase:499"  # current phase still tracks
    timings = activity.phase_timings()
    assert len(timings) == 256
    assert all(t["seconds"] >= 0.0 for t in timings)


def test_activity_render_table():
    registry = ActivityRegistry()
    assert "no queries in flight" in registry.render()
    registry.register("SELECT count(*) FROM orders", session="repl")
    text = registry.render()
    assert "1 in flight" in text
    assert "repl" in text and "submitted" in text


# -- the hub -----------------------------------------------------------------


def test_hub_complete_feeds_histograms_and_counters():
    hub = LiveTelemetry()
    activity = hub.begin("SELECT 1", session="s")
    activity.queued_seconds = 0.25
    summary = hub.complete(activity)
    assert hub.completed == 1 and hub.failed == 0
    assert hub.query_seconds.count == 1
    assert hub.queue_seconds.count == 1
    assert summary["query_id"] == activity.query_id
    assert summary["queued_seconds"] == 0.25
    failed = hub.begin("SELECT 2")
    hub.complete(failed, error=ValueError("boom"))
    assert hub.failed == 1
    assert len(hub.activity) == 0


def test_hub_sources_and_ticker():
    hub = LiveTelemetry()
    reads = {"n": 0}

    def source():
        reads["n"] += 1
        return float(reads["n"])

    hub.add_source("demo", source)
    hub.add_source("absent", lambda: None)
    hub.add_source("broken", lambda: 1 / 0)
    values = hub.sample_now()
    assert values["demo"] == 1.0
    assert values["absent"] is None
    assert values["broken"] is None  # a source must never kill the tick
    assert hub.series["demo"].last == 1.0
    assert hub.series["absent"].last is None
    hub.start_ticker(interval_s=0.01)
    hub.start_ticker()  # idempotent
    assert hub.ticker_running
    deadline = time.time() + 2.0
    while reads["n"] < 3 and time.time() < deadline:
        time.sleep(0.01)
    hub.stop_ticker()
    assert not hub.ticker_running
    assert reads["n"] >= 3


def test_hub_to_dict_shape():
    hub = LiveTelemetry()
    hub.complete(hub.begin("SELECT 1"))
    state = hub.to_dict()
    assert state["completed"] == 1
    assert state["in_flight"] == []
    assert set(state["histograms"]) == {
        "query_seconds", "queue_seconds", "partition_scan_ratio",
    }
    assert state["slow_log"]["enabled"] is False


# -- engine integration ------------------------------------------------------


def test_sql_records_live_section_and_clears_registry():
    db = make_orders_db(rows=300, num_segments=2)
    result = db.sql(COUNT)
    live = result.metrics.to_dict()["live"]
    assert live["query_id"] == 1
    assert live["session"] is None
    assert live["phases"][:3] == ["parse", "bind", "optimize"]
    assert "execute" in live["phases"]
    assert db.activity() == []
    assert db.live.completed == 1
    # the scan-ratio histogram saw partitions scanned / eligible
    assert db.live.scan_ratio.count == 1


def test_failed_sql_completes_activity():
    db = make_orders_db(rows=50, num_segments=2)
    with pytest.raises(Exception):
        db.sql("SELECT nope FROM orders")
    assert db.activity() == []
    assert db.live.failed == 1


def test_cached_hit_still_registers_live():
    db = make_orders_db(rows=50, num_segments=2)
    db.sql(COUNT, cache="results")
    result = db.sql(COUNT, cache="results")
    live = result.metrics.to_dict()["live"]
    assert live["phases"][-1] == "cache_hit"
    assert db.live.completed == 2


def test_concurrent_query_is_visible_and_cancellable():
    """The tentpole acceptance: a long-running serving query shows its
    live phase and partition progress in the registry, and
    cancel-by-query-id terminates exactly it."""
    db = make_orders_db(rows=2000, num_segments=2)
    db.storage.io_latency_s = 0.02
    session = db.session(name="bg")
    errors: list[type] = []
    started = threading.Event()

    def run():
        started.set()
        try:
            session.sql(COUNT)
        except Exception as error:  # noqa: BLE001 - recorded for assertion
            errors.append(type(error))

    thread = threading.Thread(target=run)
    thread.start()
    started.wait(1.0)
    row = None
    deadline = time.time() + 5.0
    while time.time() < deadline:
        rows = db.activity()
        if rows and rows[0]["partitions_scanned"] > 0:
            row = rows[0]
            break
        time.sleep(0.005)
    assert row is not None, "query never became visible mid-flight"
    assert row["session"] == "bg"
    assert row["phase"].startswith("slice:")
    assert row["cancellable"] is True
    assert 0 < row["partitions_scanned"] <= row["partitions_eligible"] == 24
    assert row["elapsed_s"] > 0.0 and row["queued_s"] is not None
    assert db.cancel_query(row["query_id"]) is True
    thread.join(timeout=10.0)
    assert errors == [QueryCancelled]
    assert db.activity() == []
    assert db.live.failed == 1
    db.serve().close()


def test_live_gauge_sources_cover_serving():
    db = make_orders_db(rows=100, num_segments=2)
    values = db.live.sample_now()
    # no server open: serving sources skip the tick rather than lie
    assert values["queue_depth"] is None
    assert values["pool_busy_fraction"] is None
    session = db.session(name="gauges")
    session.sql(COUNT)
    values = db.live.sample_now()
    assert values["queue_depth"] == 0.0
    assert values["inflight_admitted"] == 0.0
    assert values["pool_busy_fraction"] == 0.0
    session.sql(COUNT, cache="results")
    session.sql(COUNT, cache="results")
    values = db.live.sample_now()
    assert 0.0 < values["cache_hit_rate"] <= 1.0
    db.serve().close()
