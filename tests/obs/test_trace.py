"""Query-lifecycle tracing: spans, optimizer events, EXPLAIN (TRACE).

The acceptance scenario is a fixed two-table partitioned join (orders_fk
⋈ date_dim, the paper's Figure 3 shape): tracing it must yield all six
lifecycle phases in order, a populated optimizer search summary with at
least one PartitionSelector enforcer event, and a renderable
EXPLAIN (TRACE).
"""

from __future__ import annotations

import json

import pytest

from repro.obs import Tracer, activate
from repro.obs import opt_events
from repro.obs import trace as obs_trace

JOIN_SQL = (
    "SELECT count(*) FROM orders_fk, date_dim "
    "WHERE orders_fk.date_id = date_dim.date_id AND date_dim.year = 2013"
)

LIFECYCLE = [
    "parse",
    "bind",
    "optimize",
    "place_partition_selectors",
    "lower",
    "execute",
]


def _is_subsequence(needle: list[str], haystack: list[str]) -> bool:
    it = iter(haystack)
    return all(name in it for name in needle)


# ---------------------------------------------------------------------------
# Tracer unit behaviour
# ---------------------------------------------------------------------------


def test_tracing_off_by_default():
    assert obs_trace.current() is None
    # The off path hands back the shared no-op span: no allocation, no
    # recording.
    handle = obs_trace.span("anything", key="value")
    assert handle is obs_trace._NULL_SPAN
    with handle:
        pass
    assert obs_trace.current() is None


def test_activate_scopes_and_restores():
    outer, inner = Tracer(), Tracer()
    with activate(outer):
        assert obs_trace.current() is outer
        with activate(inner):
            assert obs_trace.current() is inner
        assert obs_trace.current() is outer
    assert obs_trace.current() is None


def test_activate_none_is_a_noop():
    with activate(None) as tracer:
        assert tracer is None
        assert obs_trace.current() is None


def test_nested_spans_record_parents_and_depth():
    tracer = Tracer()
    with activate(tracer):
        with obs_trace.span("outer", phase=1):
            with obs_trace.span("inner"):
                pass
        with obs_trace.span("sibling"):
            pass
    outer, inner, sibling = tracer.spans
    assert outer.parent_id is None and outer.depth == 0
    assert inner.parent_id == outer.span_id and inner.depth == 1
    assert sibling.parent_id is None
    assert outer.attrs == {"phase": 1}
    assert all(s.end_s is not None for s in tracer.spans)
    assert outer.duration_s >= inner.duration_s >= 0.0


def test_exception_unwind_closes_dangling_spans():
    tracer = Tracer()
    with activate(tracer):
        with pytest.raises(RuntimeError):
            with obs_trace.span("outer"):
                with obs_trace.span("inner"):
                    raise RuntimeError("boom")
    assert all(s.end_s is not None for s in tracer.spans)
    assert tracer._stack() == []


def test_jsonl_export_is_one_stable_object_per_span():
    tracer = Tracer()
    with activate(tracer):
        with obs_trace.span("a", n=1):
            with obs_trace.span("b"):
                pass
    lines = tracer.to_jsonl().splitlines()
    assert len(lines) == len(tracer.spans) == 2
    decoded = [json.loads(line) for line in lines]
    for record in decoded:
        assert set(record) == {
            "span_id",
            "parent_id",
            "name",
            "depth",
            "start_ms",
            "duration_ms",
            "attrs",
        }
        # stable export: keys serialized in sorted order
        assert list(record) == sorted(record)
    assert decoded[0]["name"] == "a"
    assert decoded[1]["parent_id"] == decoded[0]["span_id"]


# ---------------------------------------------------------------------------
# Acceptance: the full lifecycle on a partitioned join
# ---------------------------------------------------------------------------


def test_traced_join_covers_the_six_lifecycle_phases(orders_db):
    result = orders_db.sql(JOIN_SQL, trace=True)
    tracer = result.trace
    assert tracer is not None
    assert _is_subsequence(LIFECYCLE, tracer.phase_names())
    # phases carry real wall time
    for name in LIFECYCLE:
        found = tracer.find(name)
        assert found is not None and found.end_s is not None
    # per-slice child spans hang under execute
    execute = tracer.find("execute")
    slices = [s for s in tracer.spans if s.name.startswith("slice:")]
    assert slices, "per-slice spans recorded"
    assert all(s.parent_id == execute.span_id for s in slices)
    assert tracer.find("slice:0") is not None  # root slice
    # place_partition_selectors nests inside optimize
    placement = tracer.find("place_partition_selectors")
    assert placement.parent_id == tracer.find("optimize").span_id


def test_traced_join_optimizer_summary(orders_db):
    result = orders_db.sql(JOIN_SQL, trace=True)
    summary = result.trace.optimizer.summary()
    assert summary["groups"] > 0
    assert summary["group_expressions"] > summary["groups"]
    assert summary["rule_firings"], "at least one rule fired"
    assert sum(summary["rule_firings"].values()) > 0
    assert summary["property_requests"] > 0
    assert summary["winners_costed"] > 0
    assert summary["enforcers"].get(opt_events.PARTITION_SELECTOR, 0) >= 1
    assert summary["partition_selector_events"], (
        "PartitionSelector enforcer decisions are itemized"
    )
    assert summary["optimization_seconds"] > 0.0


def test_traced_metrics_export_carries_trace_sections(orders_db):
    result = orders_db.sql(JOIN_SQL, trace=True)
    data = json.loads(result.metrics.to_json())
    assert data["schema_version"] == 9
    # top-level phases (nested spans such as place_partition_selectors and
    # the slices live in the span list, under their parents)
    assert _is_subsequence(
        ["parse", "bind", "optimize", "lower", "execute"],
        data["trace"]["phases"],
    )
    names = [s["name"] for s in data["trace"]["spans"]]
    assert _is_subsequence(LIFECYCLE, names)
    assert len(data["trace"]["spans"]) == len(result.trace.spans)
    assert data["optimizer"]["groups"] > 0


def test_untraced_run_attaches_nothing(orders_db):
    result = orders_db.sql(JOIN_SQL)
    assert result.trace is None
    assert result.metrics.trace_summary is None
    assert result.metrics.optimizer_summary is None


def test_explain_trace_renders(orders_db):
    text = orders_db.explain_trace(JOIN_SQL)
    assert "Optimization trace:" in text
    assert "optimize:" in text
    assert "place_partition_selectors:" in text
    assert "Search summary:" in text
    assert "rule firings:" in text
    assert "enforcers:" in text
    assert "PartitionSelector" in text
    assert "optimization time:" in text


def test_trace_spans_on_static_elimination_query(orders_db):
    """A single-table query with a WHERE on the partition key still covers
    the lifecycle (static elimination; Figure 1 shape)."""
    result = orders_db.sql(
        "SELECT count(*) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013'",
        trace=True,
    )
    assert _is_subsequence(LIFECYCLE, result.trace.phase_names())
    assert result.trace.seconds("optimize") > 0.0
