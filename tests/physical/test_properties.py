"""Physical properties: distribution satisfaction and spec bookkeeping."""

import pytest

from repro import types as t
from repro.catalog import (
    Catalog,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.expr.ast import ColumnRef, Comparison, Literal
from repro.physical.properties import (
    DistributionSpec,
    PartitionPropagationSpec,
    PartSelectorSpec,
)

A = ColumnRef("a", "t")
B = ColumnRef("b", "t")


class TestDistributionSpec:
    def test_everything_satisfies_any(self):
        required = DistributionSpec.any()
        for spec in (
            DistributionSpec.hashed([A]),
            DistributionSpec.replicated(),
            DistributionSpec.singleton(),
        ):
            assert spec.satisfies(required)

    def test_hashed_matching(self):
        required = DistributionSpec.hashed([A])
        assert DistributionSpec.hashed([A]).satisfies(required)
        assert DistributionSpec.hashed([ColumnRef("a", "t")]).satisfies(required)
        assert not DistributionSpec.hashed([B]).satisfies(required)
        assert not DistributionSpec.hashed([A, B]).satisfies(required)

    def test_replicated_satisfies_hashed(self):
        """Every segment has all rows, so co-location holds trivially."""
        assert DistributionSpec.replicated().satisfies(
            DistributionSpec.hashed([A])
        )

    def test_singleton_only_satisfied_by_singleton(self):
        required = DistributionSpec.singleton()
        assert DistributionSpec.singleton().satisfies(required)
        assert not DistributionSpec.hashed([A]).satisfies(required)
        assert not DistributionSpec.replicated().satisfies(required)

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributionSpec("hashed")
        with pytest.raises(ValueError):
            DistributionSpec("replicated", [A])
        with pytest.raises(ValueError):
            DistributionSpec("bogus")

    def test_hash_and_equality(self):
        assert DistributionSpec.hashed([A]) == DistributionSpec.hashed([A])
        assert hash(DistributionSpec.replicated()) == hash(
            DistributionSpec.replicated()
        )


@pytest.fixture(scope="module")
def table():
    catalog = Catalog()
    return catalog.create_table(
        "t",
        TableSchema.of(("a", t.INT), ("b", t.INT)),
        partition_scheme=PartitionScheme([uniform_int_level("a", 0, 10, 2)]),
    )


class TestPartSelectorSpec:
    def test_for_table_initialises_empty_predicates(self, table):
        spec = PartSelectorSpec.for_table(3, table, "t")
        assert spec.part_scan_id == 3
        assert not spec.has_predicates
        assert spec.part_keys[0].name == "a"

    def test_with_predicates(self, table):
        spec = PartSelectorSpec.for_table(1, table, "t")
        pred = Comparison("<", A, Literal(5))
        updated = spec.with_predicates([pred])
        assert updated.has_predicates
        assert not spec.has_predicates  # immutable

    def test_level_count_enforced(self, table):
        with pytest.raises(ValueError):
            PartSelectorSpec(1, table, [A], [None, None])
        with pytest.raises(ValueError):
            PartSelectorSpec(1, table, [], [])

    def test_hashable(self, table):
        a = PartSelectorSpec.for_table(1, table, "t")
        b = PartSelectorSpec.for_table(1, table, "t")
        assert a == b and hash(a) == hash(b)
        assert a != a.with_predicates([Comparison("<", A, Literal(5))])


class TestPartitionPropagationSpec:
    def test_set_operations(self, table):
        spec_a = PartSelectorSpec.for_table(1, table, "t")
        spec_b = PartSelectorSpec.for_table(2, table, "t")
        props = PartitionPropagationSpec([spec_a])
        assert not props.is_empty
        assert props.scan_ids() == {1}
        grown = props.add(spec_b)
        assert grown.scan_ids() == {1, 2}
        shrunk = grown.remove(spec_a)
        assert shrunk.scan_ids() == {2}
        assert PartitionPropagationSpec.none().is_empty

    def test_iteration_is_deterministic(self, table):
        specs = [PartSelectorSpec.for_table(i, table, "t") for i in (3, 1, 2)]
        props = PartitionPropagationSpec(specs)
        assert [s.part_scan_id for s in props] == [1, 2, 3]

    def test_repr_matches_paper_notation(self, table):
        assert repr(PartitionPropagationSpec.none()) == "<>"
