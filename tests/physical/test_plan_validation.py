"""Plan invariants: the paper's Figure 12 Motion rule, producer/consumer
pairing, execution-order soundness, and the plan-size metrics."""

import pytest

from repro import types as t
from repro.catalog import (
    Catalog,
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.errors import InvalidPlanError
from repro.expr.ast import ColumnRef, Comparison, Literal
from repro.physical.ops import (
    BroadcastMotion,
    DynamicScan,
    Filter,
    GatherMotion,
    HashJoin,
    LeafScan,
    PartitionSelector,
    Scan,
    Sequence,
)
from repro.physical.plan import Plan
from repro.physical.properties import PartSelectorSpec


@pytest.fixture(scope="module")
def tables():
    catalog = Catalog()
    partitioned = catalog.create_table(
        "t",
        TableSchema.of(("pk", t.INT), ("v", t.INT)),
        distribution=DistributionPolicy.hashed("pk"),
        partition_scheme=PartitionScheme([uniform_int_level("pk", 0, 100, 4)]),
    )
    plain = catalog.create_table(
        "r",
        TableSchema.of(("a", t.INT), ("b", t.INT)),
        distribution=DistributionPolicy.hashed("a"),
    )
    return partitioned, plain


def _spec(table, predicate=None) -> PartSelectorSpec:
    key = ColumnRef("pk", "t")
    return PartSelectorSpec(1, table, [key], [predicate])


def _join_spec(table) -> PartSelectorSpec:
    key = ColumnRef("pk", "t")
    return PartSelectorSpec(1, table, [key], [
        Comparison("=", key, ColumnRef("a", "r"))
    ])


def test_valid_static_pattern(tables):
    partitioned, _ = tables
    plan = Plan(
        GatherMotion(
            PartitionSelector(_spec(partitioned), DynamicScan(partitioned, "t", 1))
        )
    )
    plan.validate()


def test_valid_sequence_pattern(tables):
    partitioned, _ = tables
    plan = Plan(
        Sequence(
            [
                PartitionSelector(_spec(partitioned)),
                DynamicScan(partitioned, "t", 1),
            ]
        )
    )
    plan.validate()


def test_valid_join_dpe_pattern(tables):
    """Figure 12 left / Figure 14 Plan 4: selector above the motion on the
    build side, consumer motion-free on the probe side."""
    partitioned, plain = tables
    build = PartitionSelector(_join_spec(partitioned), BroadcastMotion(Scan(plain, "r")))
    probe = DynamicScan(partitioned, "t", 1)
    plan = Plan(
        HashJoin(
            "inner",
            build,
            probe,
            [ColumnRef("a", "r")],
            [ColumnRef("pk", "t")],
        )
    )
    plan.validate()


def test_invalid_motion_between_pair(tables):
    """Figure 12 right: a Motion between the PartitionSelector and the
    join separates producer from consumer."""
    partitioned, plain = tables
    build = BroadcastMotion(
        PartitionSelector(_join_spec(partitioned), Scan(plain, "r"))
    )
    probe = DynamicScan(partitioned, "t", 1)
    plan = Plan(
        HashJoin(
            "inner",
            build,
            probe,
            [ColumnRef("a", "r")],
            [ColumnRef("pk", "t")],
        )
    )
    with pytest.raises(InvalidPlanError):
        plan.validate()


def test_invalid_motion_above_consumer_only(tables):
    """A Motion between the consumer and the pair's LCA is just as bad."""
    partitioned, plain = tables
    build = PartitionSelector(_join_spec(partitioned), Scan(plain, "r"))
    probe = GatherMotion(DynamicScan(partitioned, "t", 1))
    plan = Plan(
        HashJoin(
            "inner",
            build,
            probe,
            [ColumnRef("a", "r")],
            [ColumnRef("pk", "t")],
        )
    )
    with pytest.raises(InvalidPlanError):
        plan.validate()


def test_missing_producer_rejected(tables):
    partitioned, _ = tables
    plan = Plan(DynamicScan(partitioned, "t", 1))
    with pytest.raises(InvalidPlanError, match="no PartitionSelector"):
        plan.validate()


def test_orphan_producer_rejected(tables):
    partitioned, plain = tables
    plan = Plan(PartitionSelector(_spec(partitioned), Scan(plain, "r")))
    with pytest.raises(InvalidPlanError, match="no consumer"):
        plan.validate()


def test_consumer_before_producer_rejected(tables):
    """Streaming selector on the PROBE side of the join executes after the
    build-side consumer — producer would finish too late."""
    partitioned, plain = tables
    build = DynamicScan(partitioned, "t", 1)
    probe = PartitionSelector(_join_spec(partitioned), Scan(plain, "r"))
    plan = Plan(
        HashJoin(
            "inner",
            build,
            probe,
            [ColumnRef("pk", "t")],
            [ColumnRef("a", "r")],
        )
    )
    with pytest.raises(InvalidPlanError, match="before"):
        plan.validate()


def test_guarded_leaf_scans_count_as_consumers(tables):
    partitioned, plain = tables
    from repro.physical.ops import Append

    leaves = [
        LeafScan(partitioned, "t", oid, guard_scan_id=1)
        for oid in partitioned.all_leaf_oids()
    ]
    build = PartitionSelector(_join_spec(partitioned), Scan(plain, "r"))
    plan = Plan(
        HashJoin(
            "inner",
            build,
            Append(leaves),
            [ColumnRef("a", "r")],
            [ColumnRef("pk", "t")],
        )
    )
    plan.validate()


def test_plan_size_metrics(tables):
    partitioned, _ = tables
    plan = Plan(
        PartitionSelector(_spec(partitioned), DynamicScan(partitioned, "t", 1))
    )
    assert plan.node_count() == 2
    assert plan.size_bytes() > 0
    assert plan.dispatched_size_bytes() > plan.size_bytes()
    assert "DynamicScan" in plan.serialize()


def test_planner_style_plan_size_grows_with_leaves(tables):
    """The Append-of-LeafScans representation is linear in #partitions —
    the property Figure 18 measures."""
    partitioned, _ = tables
    from repro.physical.ops import Append

    all_leaves = Plan(
        Append([LeafScan(partitioned, "t", oid) for oid in partitioned.all_leaf_oids()])
    )
    one_leaf = Plan(
        Append([LeafScan(partitioned, "t", partitioned.all_leaf_oids()[0])])
    )
    assert all_leaves.size_bytes() > 3 * one_leaf.size_bytes()


def test_explain_contains_operators(tables):
    partitioned, _ = tables
    plan = Plan(
        Filter(
            PartitionSelector(_spec(partitioned), DynamicScan(partitioned, "t", 1)),
            Comparison("<", ColumnRef("v", "t"), Literal(5)),
        )
    )
    text = plan.explain()
    assert "Filter" in text and "PartitionSelector" in text
    assert "DynamicScan" in text
