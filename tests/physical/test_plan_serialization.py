"""Plan serialization: determinism, content, and the metadata annex."""

import json

import pytest

from repro.workloads.synthetic import JOIN_QUERY, build_rs_database


@pytest.fixture(scope="module")
def db():
    return build_rs_database(num_parts=6, rows_per_table=100)


def test_serialization_is_deterministic(db):
    plan_a = db.plan(JOIN_QUERY)
    plan_b = db.plan(JOIN_QUERY)
    assert plan_a.serialize() == plan_b.serialize()


def test_serialized_plan_is_valid_json(db):
    plan = db.plan(JOIN_QUERY)
    document = json.loads(plan.serialize())
    assert document["op"] in ("GatherMotion", "Project")

    def operators(node):
        yield node["op"]
        for child in node.get("children", ()):
            yield from operators(child)

    names = set(operators(document))
    assert "DynamicScan" in names
    assert "PartitionSelector" in names


def test_size_reflects_serialization(db):
    plan = db.plan(JOIN_QUERY)
    assert plan.size_bytes() == len(plan.serialize().encode("utf-8"))


def test_metadata_annex_lists_touched_tables_only(db):
    plan = db.plan("SELECT * FROM r WHERE b < 100")
    annex = plan.metadata_annex()
    tables = {entry["table"] for entry in annex.values()}
    assert tables == {"r"}
    (entry,) = annex.values()
    assert len(entry["leaves"]) == 6
    for leaf in entry["leaves"]:
        assert {"oid", "name", "constraints"} <= set(leaf)


def test_planner_plans_serialize_leaf_lists(db):
    plan = db.plan("SELECT * FROM r", optimizer="planner")
    document = json.loads(plan.serialize())
    text = plan.serialize()
    assert text.count("LeafScan") == 6
    assert "leaf_oid" in text


def test_explain_carries_row_estimates(db):
    text = db.plan(JOIN_QUERY).explain()
    assert "rows≈" in text
