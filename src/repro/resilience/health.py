"""Segment health tracking: the fault-tolerance service of the simulator.

Greenplum pairs every primary segment with a mirror and a fault-tolerance
service (FTS) that marks crashed primaries down and promotes their
mirrors.  :class:`SegmentHealth` is the minimal equivalent: one up/down
bit per primary and per mirror, plus counters for the failover events and
mirror reads the observability layer exports.

The storage layer consults health on every segment read: a down primary
is served from its mirror copy; a double fault (mirror also down) raises
an unrecoverable :class:`~repro.errors.SegmentFailure`.

Rejoining a downed copy is **not** instant: while a copy is down the
storage layer keeps writing the surviving copy and reports the skipped
mutations here (:meth:`record_missed`), so each copy carries the exact
set of WAL LSNs it missed.  :meth:`recover` routes through a *resync*
path — the copy is held in the ``resyncing`` state (reads still served
from the survivor) while a resync handler replays exactly the missed
mutations, and only then flips back ``up``.  Without a handler, a copy
that missed mutations refuses to rejoin with a typed
:class:`~repro.errors.ResyncRequired` instead of serving stale rows.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from ..errors import ResyncRequired, SegmentFailure

UP = "up"
DOWN = "down"
RESYNCING = "resyncing"

#: the two copies of a segment, as ``record_missed`` / handler arguments
PRIMARY = "primary"
MIRROR = "mirror"

#: handler(segment, copy, missed_lsns) replays the missed mutations into
#: the named copy; installed by the storage layer / durability manager
ResyncHandler = Callable[[int, str, "list[int]"], None]


class SegmentHealth:
    """Up/resyncing/down state of every primary segment and its mirror."""

    def __init__(self, num_segments: int):
        if num_segments <= 0:
            raise ValueError("num_segments must be positive")
        self.num_segments = num_segments
        self._primary_up = [True] * num_segments
        self._mirror_up = [True] * num_segments
        #: segments whose primary is currently replaying missed mutations
        self._resyncing: set[int] = set()
        #: serializes state transitions and read counters — storage reads
        #: and failovers arrive concurrently from segment worker threads
        self._lock = threading.Lock()
        #: chronological failover log: {"segment", "reason"[, "lsn"]}
        self.failover_events: list[dict] = []
        #: chronological resync log: {"segment", "primary_records",
        #: "mirror_records"}
        self.resync_events: list[dict] = []
        #: reads served from a mirror while its primary was down, per segment
        self.mirror_reads = [0] * num_segments
        #: exact WAL LSNs each down copy skipped, per segment
        self._missed_primary: list[set[int]] = [set() for _ in range(num_segments)]
        self._missed_mirror: list[set[int]] = [set() for _ in range(num_segments)]
        #: descending token source for opaque (no-WAL) missed-write marks
        self._opaque_lsn = 0
        #: replays missed mutations into a copy before it rejoins; when
        #: ``None``, :meth:`recover` refuses stale rejoins (ResyncRequired)
        self.resync_handler: ResyncHandler | None = None
        #: held across a resync so no writer can race the replay; the
        #: StorageManager shares its storage-wide write lock here (an
        #: RLock: the resync handler re-takes it when applying records)
        self.write_lock = threading.RLock()
        #: optional () -> int reporting the current WAL LSN, used to stamp
        #: failover events with the log position at promotion time
        self.lsn_provider: Callable[[], int] | None = None

    # -- queries ------------------------------------------------------------

    def is_up(self, segment: int) -> bool:
        return self._primary_up[segment] and segment not in self._resyncing

    def mirror_is_up(self, segment: int) -> bool:
        return self._mirror_up[segment]

    def is_resyncing(self, segment: int) -> bool:
        return segment in self._resyncing

    @property
    def down_segments(self) -> list[int]:
        return [s for s in range(self.num_segments) if not self.is_up(s)]

    @property
    def resyncing_segments(self) -> list[int]:
        return sorted(self._resyncing)

    @property
    def failover_count(self) -> int:
        return len(self.failover_events)

    @property
    def resync_count(self) -> int:
        return len(self.resync_events)

    def missed_lsns(self, segment: int, copy: str = PRIMARY) -> list[int]:
        """The WAL LSNs ``copy`` of ``segment`` skipped while down."""
        self._check_segment(segment)
        with self._lock:
            missed = (
                self._missed_primary if copy == PRIMARY else self._missed_mirror
            )
            return sorted(missed[segment])

    # -- transitions --------------------------------------------------------

    def failover(self, segment: int, reason: str = "") -> bool:
        """Mark ``segment``'s primary down, promoting its mirror.

        Returns ``True`` when the mirror can take over (reads keep
        working), ``False`` on a double fault.  Repeated failovers of an
        already-down segment are recorded once.
        """
        self._check_segment(segment)
        with self._lock:
            if self._primary_up[segment]:
                self._primary_up[segment] = False
                self._resyncing.discard(segment)
                event = {"segment": segment, "reason": reason}
                if self.lsn_provider is not None:
                    event["lsn"] = self.lsn_provider()
                self.failover_events.append(event)
            return self._mirror_up[segment]

    def mark_mirror_down(self, segment: int) -> None:
        self._check_segment(segment)
        with self._lock:
            self._mirror_up[segment] = False

    def record_missed(
        self, segment: int, copy: str, lsns: Iterable[int] | None = None
    ) -> None:
        """Record that ``copy`` of ``segment`` skipped the mutations at
        ``lsns`` because it was down — the storage write path calls this
        atomically with applying the write to the surviving copy, so the
        missed set is exact even under concurrent DML and failover.

        ``lsns=None`` records an *opaque* miss (no WAL configured): a
        unique negative token marking the copy stale, replayed only by a
        full-copy resync handler that ignores LSNs."""
        self._check_segment(segment)
        with self._lock:
            missed = (
                self._missed_primary if copy == PRIMARY else self._missed_mirror
            )
            if lsns is None:
                self._opaque_lsn -= 1
                missed[segment].add(self._opaque_lsn)
            else:
                missed[segment].update(lsns)

    def recover(self, segment: int) -> None:
        """Rejoin a segment's primary (and mirror) via resync.

        A copy that missed no mutations rejoins instantly.  A copy that
        *did* miss mutations enters ``resyncing``: reads stay on the
        surviving copy while :attr:`resync_handler` replays exactly the
        missed WAL records, then the copy flips ``up``.  Without a
        handler configured the rejoin refuses with
        :class:`~repro.errors.ResyncRequired` — never stale rows.
        """
        self._check_segment(segment)
        # the write lock first: no writer can add to the missed sets while
        # the replay runs, so clearing them afterwards loses nothing.  Lock
        # order everywhere is write_lock -> health lock (writers take the
        # write lock before consulting writable_copies).
        with self.write_lock:
            with self._lock:
                missed_primary = sorted(self._missed_primary[segment])
                missed_mirror = sorted(self._missed_mirror[segment])
                if not missed_primary and not missed_mirror:
                    self._primary_up[segment] = True
                    self._mirror_up[segment] = True
                    self._resyncing.discard(segment)
                    return
                if self.resync_handler is None:
                    raise ResyncRequired(
                        f"segment {segment} missed "
                        f"{len(missed_primary) or len(missed_mirror)} "
                        "mutations while down and no resync path is "
                        "configured; rejoining it would serve stale rows"
                    )
                # hold the copy in `resyncing` while the handler replays;
                # reads keep hitting the surviving copy via require_readable
                self._resyncing.add(segment)
            try:
                # handler runs outside the health lock (it calls back into
                # health) but inside the write lock (no concurrent DML)
                if missed_mirror:
                    self.resync_handler(segment, MIRROR, missed_mirror)
                if missed_primary:
                    self.resync_handler(segment, PRIMARY, missed_primary)
            except Exception:
                with self._lock:
                    self._resyncing.discard(segment)
                raise
            with self._lock:
                self._missed_primary[segment].clear()
                self._missed_mirror[segment].clear()
                self._primary_up[segment] = True
                self._mirror_up[segment] = True
                self._resyncing.discard(segment)
                self.resync_events.append(
                    {
                        "segment": segment,
                        "primary_records": len(missed_primary),
                        "mirror_records": len(missed_mirror),
                    }
                )

    def recover_all(self) -> None:
        for segment in range(self.num_segments):
            self.recover(segment)

    # -- the storage write path ---------------------------------------------

    def writable_copies(self, segment: int) -> tuple[bool, bool]:
        """Which copies of ``segment`` must receive a write right now.

        Returns ``(primary, mirror)`` booleans; a down copy is skipped
        (the caller then reports the skipped LSNs via
        :meth:`record_missed`).  Raises :class:`SegmentFailure` when
        neither copy can take the write — the double-fault case.
        """
        self._check_segment(segment)
        with self._lock:
            primary = (
                self._primary_up[segment] and segment not in self._resyncing
            )
            mirror = self._mirror_up[segment]
        if not primary and not mirror:
            raise SegmentFailure(
                f"segment {segment}: primary and mirror are both down",
                segment=segment,
                point="storage_write",
                transient=False,
            )
        return primary, mirror

    # -- the storage read path ---------------------------------------------

    def record_mirror_read(self, segment: int) -> None:
        with self._lock:
            self.mirror_reads[segment] += 1

    def require_readable(self, segment: int) -> bool:
        """Whether reads for ``segment`` must be served from the mirror.

        A resyncing primary is not yet readable — its mirror serves until
        the replay completes.  Raises :class:`SegmentFailure` when
        neither copy is available — the unrecoverable double-fault case.
        """
        self._check_segment(segment)
        if self._primary_up[segment] and segment not in self._resyncing:
            return False
        if self._mirror_up[segment]:
            return True
        raise SegmentFailure(
            f"segment {segment}: primary and mirror are both down",
            segment=segment,
            point="storage_read",
            transient=False,
        )

    # -- export -------------------------------------------------------------

    def status(self) -> dict:
        def primary_state(segment: int) -> str:
            if segment in self._resyncing:
                return RESYNCING
            return UP if self._primary_up[segment] else DOWN

        return {
            "primaries": [
                primary_state(s) for s in range(self.num_segments)
            ],
            "mirrors": [UP if up else DOWN for up in self._mirror_up],
            "down_segments": self.down_segments,
            "resyncing_segments": self.resyncing_segments,
            "failover_count": self.failover_count,
            "resync_count": self.resync_count,
            "mirror_reads": list(self.mirror_reads),
        }

    def _check_segment(self, segment: int) -> None:
        if not 0 <= segment < self.num_segments:
            raise ValueError(f"segment {segment} out of range")

    def __repr__(self) -> str:
        down = self.down_segments
        state = f"{len(down)} down {down}" if down else "all up"
        if self._resyncing:
            state += f", resyncing {sorted(self._resyncing)}"
        return f"SegmentHealth({self.num_segments} segments, {state})"
