"""Segment health tracking: the fault-tolerance service of the simulator.

Greenplum pairs every primary segment with a mirror and a fault-tolerance
service (FTS) that marks crashed primaries down and promotes their
mirrors.  :class:`SegmentHealth` is the minimal equivalent: one up/down
bit per primary and per mirror, plus counters for the failover events and
mirror reads the observability layer exports.

The storage layer consults health on every segment read: a down primary
is served from its mirror copy; a double fault (mirror also down) raises
an unrecoverable :class:`~repro.errors.SegmentFailure`.
"""

from __future__ import annotations

import threading

from ..errors import SegmentFailure

UP = "up"
DOWN = "down"


class SegmentHealth:
    """Up/down state of every primary segment and its mirror."""

    def __init__(self, num_segments: int):
        if num_segments <= 0:
            raise ValueError("num_segments must be positive")
        self.num_segments = num_segments
        self._primary_up = [True] * num_segments
        self._mirror_up = [True] * num_segments
        #: serializes state transitions and read counters — storage reads
        #: and failovers arrive concurrently from segment worker threads
        self._lock = threading.Lock()
        #: chronological failover log: {"segment", "reason"}
        self.failover_events: list[dict] = []
        #: reads served from a mirror while its primary was down, per segment
        self.mirror_reads = [0] * num_segments

    # -- queries ------------------------------------------------------------

    def is_up(self, segment: int) -> bool:
        return self._primary_up[segment]

    def mirror_is_up(self, segment: int) -> bool:
        return self._mirror_up[segment]

    @property
    def down_segments(self) -> list[int]:
        return [s for s in range(self.num_segments) if not self._primary_up[s]]

    @property
    def failover_count(self) -> int:
        return len(self.failover_events)

    # -- transitions --------------------------------------------------------

    def failover(self, segment: int, reason: str = "") -> bool:
        """Mark ``segment``'s primary down, promoting its mirror.

        Returns ``True`` when the mirror can take over (reads keep
        working), ``False`` on a double fault.  Repeated failovers of an
        already-down segment are recorded once.
        """
        self._check_segment(segment)
        with self._lock:
            if self._primary_up[segment]:
                self._primary_up[segment] = False
                self.failover_events.append(
                    {"segment": segment, "reason": reason}
                )
            return self._mirror_up[segment]

    def mark_mirror_down(self, segment: int) -> None:
        self._check_segment(segment)
        with self._lock:
            self._mirror_up[segment] = False

    def recover(self, segment: int) -> None:
        """Bring a segment's primary (and mirror) back up — instant resync,
        since mirrors are synchronously replicated in this simulator."""
        self._check_segment(segment)
        self._primary_up[segment] = True
        self._mirror_up[segment] = True

    def recover_all(self) -> None:
        for segment in range(self.num_segments):
            self.recover(segment)

    # -- the storage read path ---------------------------------------------

    def record_mirror_read(self, segment: int) -> None:
        with self._lock:
            self.mirror_reads[segment] += 1

    def require_readable(self, segment: int) -> bool:
        """Whether reads for ``segment`` must be served from the mirror.

        Raises :class:`SegmentFailure` when neither copy is available —
        the unrecoverable double-fault case.
        """
        self._check_segment(segment)
        if self._primary_up[segment]:
            return False
        if self._mirror_up[segment]:
            return True
        raise SegmentFailure(
            f"segment {segment}: primary and mirror are both down",
            segment=segment,
            point="storage_read",
            transient=False,
        )

    # -- export -------------------------------------------------------------

    def status(self) -> dict:
        return {
            "primaries": [
                UP if up else DOWN for up in self._primary_up
            ],
            "mirrors": [UP if up else DOWN for up in self._mirror_up],
            "down_segments": self.down_segments,
            "failover_count": self.failover_count,
            "mirror_reads": list(self.mirror_reads),
        }

    def _check_segment(self, segment: int) -> None:
        if not 0 <= segment < self.num_segments:
            raise ValueError(f"segment {segment} out of range")

    def __repr__(self) -> str:
        down = self.down_segments
        state = f"{len(down)} down {down}" if down else "all up"
        return f"SegmentHealth({self.num_segments} segments, {state})"
