"""Fault-tolerant execution: fault injection, segment mirroring/failover,
and per-query guardrails.

Real MPP deployments survive segment crashes; this package gives the
simulator the same failure path.  Three pieces:

* :class:`FaultInjector` — deterministic, seedable fault injection at
  named executor points (``slice_start``, ``motion_send``, ``scan_row``,
  ``channel_close``), modelled on Greenplum's ``gp_inject_fault``;
* :class:`SegmentHealth` — per-segment primary/mirror up-down state; the
  storage layer serves reads for a down primary from its mirror copy and
  the executor retries the failed slice (paper Figure 12 guarantees the
  slice's partition-OID channels are rebuildable locally, because no
  Motion ever separates a PartitionSelector from its DynamicScan);
* :class:`QueryLimits` / :class:`CancelToken` / :class:`RetryPolicy` —
  per-query timeout, buffered-row budget, cooperative cancellation and
  the bounded-retry/backoff policy.
"""

from .faults import (
    ALWAYS,
    CHANNEL_CLOSE,
    CHECKPOINT_WRITE,
    DELETE_ROWS,
    FAIL_N,
    FAIL_ONCE,
    INJECTION_POINTS,
    INSERT_ROW,
    MOTION_SEND,
    RECOVERY_REPLAY,
    SCAN_ROW,
    SLICE_START,
    TRIGGER_MODES,
    WAL_APPEND,
    WAL_FSYNC,
    FaultInjector,
    FaultSpec,
)
from .guardrails import NO_LIMITS, CancelToken, QueryLimits, RetryPolicy
from .health import DOWN, MIRROR, PRIMARY, RESYNCING, UP, SegmentHealth

__all__ = [
    "ALWAYS",
    "CHANNEL_CLOSE",
    "CHECKPOINT_WRITE",
    "DELETE_ROWS",
    "DOWN",
    "FAIL_N",
    "FAIL_ONCE",
    "INJECTION_POINTS",
    "INSERT_ROW",
    "MIRROR",
    "MOTION_SEND",
    "NO_LIMITS",
    "PRIMARY",
    "RECOVERY_REPLAY",
    "RESYNCING",
    "SCAN_ROW",
    "SLICE_START",
    "TRIGGER_MODES",
    "UP",
    "WAL_APPEND",
    "WAL_FSYNC",
    "CancelToken",
    "FaultInjector",
    "FaultSpec",
    "QueryLimits",
    "RetryPolicy",
    "SegmentHealth",
]
