"""Per-query guardrails: timeout, buffered-row budget, cancellation, retry.

:class:`QueryLimits` is the cooperative enforcement object one execution
carries on its :class:`~repro.executor.context.ExecContext`.  Iterators
call :meth:`QueryLimits.tick` once per row (cheap: one attribute check,
with the wall-clock read amortized over ``check_interval`` rows) and
blocking operators charge their materialized rows through
:meth:`QueryLimits.charge_rows` — the engine's memory-consumption proxy.
Each violation raises its own typed error so callers can distinguish a
cancelled query from a timed-out or over-budget one.

:class:`RetryPolicy` bounds how the executor retries a failed slice:
``max_retries`` attempts with exponential backoff starting at
``base_delay_seconds``, decorrelated-jittered by default so concurrent
instances that failed together do not retry in lockstep.
"""

from __future__ import annotations

import random
import threading
import time

from ..errors import QueryCancelled, QueryTimeout, ResourceLimitExceeded


class CancelToken:
    """Cooperative cancellation handle shared with the caller.

    ``cancel_after_checks`` is a deterministic test/simulation hook: the
    token cancels itself once the query has passed that many guardrail
    checkpoints, emulating a user hitting Ctrl-C mid-flight without
    needing threads.
    """

    __slots__ = ("_cancelled", "_checks", "cancel_after_checks")

    def __init__(self, cancel_after_checks: int | None = None):
        self._cancelled = False
        self._checks = 0
        self.cancel_after_checks = cancel_after_checks

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True

    def _note_check(self) -> None:
        if self.cancel_after_checks is None or self._cancelled:
            return
        self._checks += 1
        if self._checks >= self.cancel_after_checks:
            self._cancelled = True

    def _note_checks(self, count: int) -> None:
        """Batch equivalent of ``count`` sequential :meth:`_note_check`
        calls: the token cancels on the batch containing the threshold
        checkpoint, so deterministic-cancel tests fire regardless of
        batch size."""
        if self.cancel_after_checks is None or self._cancelled:
            return
        self._checks += count
        if self._checks >= self.cancel_after_checks:
            self._cancelled = True


class QueryLimits:
    """Guardrail state for one query execution."""

    def __init__(
        self,
        timeout_seconds: float | None = None,
        max_rows: int | None = None,
        cancel: CancelToken | None = None,
        check_interval: int = 128,
    ):
        if timeout_seconds is not None and timeout_seconds < 0:
            raise ValueError("timeout_seconds must be >= 0")
        if max_rows is not None and max_rows < 0:
            raise ValueError("max_rows must be >= 0")
        self.timeout_seconds = timeout_seconds
        self.max_rows = max_rows
        self.cancel_token = cancel
        self.check_interval = max(1, check_interval)
        self._deadline: float | None = None
        self._ticks = 0
        self._buffered_rows = 0
        #: guards the buffered-row budget — blocking operators on
        #: different segment workers charge it concurrently.  ``tick``'s
        #: ``_ticks`` counter stays lock-free on purpose: a lost increment
        #: only shifts *when* the amortized deadline check happens, never
        #: whether limits are enforced.
        self._charge_lock = threading.Lock()

    @property
    def active(self) -> bool:
        """Whether any guardrail is configured (hot-path gate)."""
        return (
            self.timeout_seconds is not None
            or self.max_rows is not None
            or self.cancel_token is not None
        )

    @property
    def buffered_rows(self) -> int:
        return self._buffered_rows

    def start(self) -> None:
        """Arm the deadline at query start."""
        if self.timeout_seconds is not None:
            self._deadline = time.monotonic() + self.timeout_seconds

    # -- checkpoints ---------------------------------------------------------

    def check(self) -> None:
        """Full checkpoint: cancellation and deadline, unconditionally.

        Called at slice boundaries, where the cost of a clock read is
        negligible."""
        token = self.cancel_token
        if token is not None:
            token._note_check()
            if token.cancelled:
                raise QueryCancelled("query cancelled")
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise QueryTimeout(
                f"query exceeded timeout of {self.timeout_seconds}s"
            )

    def tick(self) -> None:
        """Per-row checkpoint: cancellation every row, deadline every
        ``check_interval`` rows."""
        token = self.cancel_token
        if token is not None:
            token._note_check()
            if token.cancelled:
                raise QueryCancelled("query cancelled")
        if self._deadline is None:
            return
        self._ticks += 1
        if self._ticks % self.check_interval == 0:
            if time.monotonic() > self._deadline:
                raise QueryTimeout(
                    f"query exceeded timeout of {self.timeout_seconds}s"
                )

    def tick_rows(self, count: int) -> None:
        """Batch checkpoint: exactly what ``count`` sequential
        :meth:`tick` calls would enforce, in O(1).  The cancel token is
        advanced by ``count`` checkpoints, and the amortized deadline
        read fires iff one of the covered ticks would have crossed a
        ``check_interval`` boundary."""
        if count <= 0:
            return
        token = self.cancel_token
        if token is not None:
            token._note_checks(count)
            if token.cancelled:
                raise QueryCancelled("query cancelled")
        if self._deadline is None:
            return
        before = self._ticks
        self._ticks = before + count
        if before // self.check_interval != self._ticks // self.check_interval:
            if time.monotonic() > self._deadline:
                raise QueryTimeout(
                    f"query exceeded timeout of {self.timeout_seconds}s"
                )

    def charge_rows(self, count: int) -> None:
        """Account ``count`` rows buffered by a blocking operator (sort
        input, hash-join build side, motion receive buffers, ...)."""
        if self.max_rows is None:
            return
        with self._charge_lock:
            self._buffered_rows += count
        if self._buffered_rows > self.max_rows:
            raise ResourceLimitExceeded(
                f"query buffered {self._buffered_rows} rows in blocking "
                f"operators, exceeding max_rows={self.max_rows}"
            )

    def charge_rows_batch(self, count: int, per_row: int = 1) -> None:
        """Batch equivalent of ``count`` sequential
        ``charge_rows(per_row)`` calls.

        Row-at-a-time execution charges buffered rows one at a time and
        stops at the first charge that crosses ``max_rows`` — the
        remaining rows of the batch are never accounted.  To keep
        ``buffered_rows`` (and the error message) identical at any batch
        size, this charges only up to and including the first crossing
        charge, then raises.
        """
        if self.max_rows is None or count <= 0:
            return
        with self._charge_lock:
            total = count * per_row
            if self._buffered_rows + total > self.max_rows:
                headroom = self.max_rows - self._buffered_rows
                full = max(0, headroom) // per_row
                crossing = min(full + 1, count)
                self._buffered_rows += crossing * per_row
            else:
                self._buffered_rows += total
        if self._buffered_rows > self.max_rows:
            raise ResourceLimitExceeded(
                f"query buffered {self._buffered_rows} rows in blocking "
                f"operators, exceeding max_rows={self.max_rows}"
            )


#: limits object used when the caller sets no guardrail — all no-ops
NO_LIMITS = QueryLimits()


class RetryPolicy:
    """Bounds on the executor's slice-retry loop.

    ``jitter=True`` (the default) applies *decorrelated jitter* to the
    exponential envelope: each wait is drawn uniformly from
    ``[base, min(cap, 3 * previous_wait)]``, where the previous wait
    seeds the next draw.  Under the parallel scheduler — and under the
    serving layer's many concurrent queries — several instances of one
    slice often fail at the same instant (a segment going down hits all
    of them); deterministic exponential backoff would wake them all on
    the same schedule and synchronize the re-runs into a retry storm.
    Jittered waits stay inside the same ``[base, max]`` bounds but spread
    the wakeups.  ``jitter=False`` restores the deterministic doubling
    (used by tests that assert exact delays).
    """

    __slots__ = (
        "max_retries",
        "base_delay_seconds",
        "max_delay_seconds",
        "jitter",
        "_rng",
        "_rng_lock",
    )

    def __init__(
        self,
        max_retries: int = 2,
        base_delay_seconds: float = 0.001,
        max_delay_seconds: float = 0.1,
        jitter: bool = True,
        seed: int | None = None,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = max_retries
        self.base_delay_seconds = base_delay_seconds
        self.max_delay_seconds = max_delay_seconds
        self.jitter = jitter
        #: policy objects are shared across worker threads; random.Random
        #: is not thread-safe, so draws take this lock (cold path: one
        #: draw per retry, never per row)
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()

    def delay_for(self, attempt: int) -> float:
        """The deterministic exponential envelope: attempt 1 waits the
        base delay, each further attempt doubles it, capped at
        ``max_delay_seconds``."""
        if self.base_delay_seconds <= 0:
            return 0.0
        delay = self.base_delay_seconds * (2 ** (attempt - 1))
        return min(delay, self.max_delay_seconds)

    def jittered_delay(
        self, attempt: int, previous: float | None = None
    ) -> float:
        """One decorrelated-jitter draw for ``attempt``.

        ``previous`` is the wait the same retry loop slept last time
        (None on the first retry).  The result is always within
        ``[base_delay_seconds, max_delay_seconds]``; with ``jitter=False``
        it is exactly :meth:`delay_for`.
        """
        if not self.jitter:
            return self.delay_for(attempt)
        base = self.base_delay_seconds
        if base <= 0:
            return 0.0
        anchor = previous if previous and previous > 0 else base
        upper = min(self.max_delay_seconds, 3.0 * anchor)
        upper = max(upper, base)
        with self._rng_lock:
            return self._rng.uniform(base, upper)

    def backoff(self, attempt: int, previous: float | None = None) -> float:
        """Sleep one retry wait and return it (callers feed it back as
        ``previous`` on the next attempt to decorrelate the sequence)."""
        delay = self.jittered_delay(attempt, previous)
        if delay > 0:
            time.sleep(delay)
        return delay
