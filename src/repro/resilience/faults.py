"""Deterministic fault injection, modelled on Greenplum's ``gp_inject_fault``.

A :class:`FaultInjector` holds a set of armed :class:`FaultSpec` entries,
each naming an **injection point** — a well-known place in the executor
where real MPP systems die (a segment process starting its slice, a Motion
send, a scan producing a row, a partition-OID channel closing).  The
executor calls :meth:`FaultInjector.maybe_fire` at every point; when an
armed spec matches, a typed :class:`~repro.errors.SegmentFailure` is
raised, which the executor's retry/failover machinery then handles exactly
as it would a real crash.

Injection is deterministic: triggers are counter-based (``fail_once``,
``fail_n``, ``always``, with an optional number of hits to ``skip``
first), and the optional ``probability`` mode draws from a seeded RNG so
a run is reproducible from ``FaultInjector(seed=...)``.
"""

from __future__ import annotations

import random
import threading

from ..errors import ExecutionError, SegmentFailure

#: a (slice, segment) instance begins running
SLICE_START = "slice_start"
#: a Motion routes one row to a target segment
MOTION_SEND = "motion_send"
#: a scan produces one row from storage
SCAN_ROW = "scan_row"
#: a partition-OID channel is about to close
CHANNEL_CLOSE = "channel_close"
#: a row is about to be inserted into a segment's buckets (mutation path)
INSERT_ROW = "insert_row"
#: rows are about to be deleted from a segment's leaf (mutation path)
DELETE_ROWS = "delete_rows"
#: a WAL record is about to be appended (segment, or -1 for shared logs)
WAL_APPEND = "wal_append"
#: a WAL file is about to be fsynced
WAL_FSYNC = "wal_fsync"
#: a checkpoint snapshot is about to be written to disk
CHECKPOINT_WRITE = "checkpoint_write"
#: a WAL record is about to be replayed during restart recovery / resync
RECOVERY_REPLAY = "recovery_replay"

INJECTION_POINTS = (
    SLICE_START,
    MOTION_SEND,
    SCAN_ROW,
    CHANNEL_CLOSE,
    INSERT_ROW,
    DELETE_ROWS,
    WAL_APPEND,
    WAL_FSYNC,
    CHECKPOINT_WRITE,
    RECOVERY_REPLAY,
)

FAIL_ONCE = "fail_once"
FAIL_N = "fail_n"
ALWAYS = "always"

TRIGGER_MODES = (FAIL_ONCE, FAIL_N, ALWAYS)


class FaultSpec:
    """One armed fault: where it fires, how often, and how it presents."""

    __slots__ = (
        "point",
        "segment",
        "mode",
        "n",
        "skip",
        "transient",
        "probability",
        "hits",
        "fired",
    )

    def __init__(
        self,
        point: str,
        segment: int | None = None,
        mode: str = FAIL_ONCE,
        n: int = 1,
        skip: int = 0,
        transient: bool = False,
        probability: float = 1.0,
    ):
        if point not in INJECTION_POINTS:
            raise ExecutionError(
                f"unknown injection point {point!r} "
                f"(one of {', '.join(INJECTION_POINTS)})"
            )
        if mode not in TRIGGER_MODES:
            raise ExecutionError(
                f"unknown fault trigger {mode!r} "
                f"(one of {', '.join(TRIGGER_MODES)})"
            )
        if n < 1:
            raise ExecutionError("fail_n requires n >= 1")
        if skip < 0:
            raise ExecutionError("skip must be >= 0")
        if not 0.0 < probability <= 1.0:
            raise ExecutionError("probability must be in (0, 1]")
        self.point = point
        self.segment = segment
        self.mode = mode
        self.n = n
        self.skip = skip
        self.transient = transient
        self.probability = probability
        #: matching evaluations of this spec (including skipped ones)
        self.hits = 0
        #: times this spec actually raised
        self.fired = 0

    def matches(self, point: str, segment: int) -> bool:
        return self.point == point and (
            self.segment is None or self.segment == segment
        )

    @property
    def exhausted(self) -> bool:
        if self.mode == ALWAYS:
            return False
        limit = 1 if self.mode == FAIL_ONCE else self.n
        return self.fired >= limit

    def __repr__(self) -> str:
        where = "any" if self.segment is None else str(self.segment)
        return (
            f"FaultSpec({self.point}, seg={where}, {self.mode}, "
            f"fired={self.fired})"
        )


class FaultInjector:
    """The set of armed faults plus per-point hit accounting."""

    def __init__(self, seed: int = 0):
        self._specs: list[FaultSpec] = []
        self._rng = random.Random(seed)
        #: serializes trigger evaluation so counter-based modes stay exact
        #: when segment instances race on worker threads (two threads must
        #: not both fire a FAIL_ONCE spec); the fault-free fast path in
        #: :meth:`maybe_fire` never takes it
        self._lock = threading.Lock()
        #: injection point -> evaluations that matched an armed spec
        self.hits_by_point: dict[str, int] = {}
        #: injection point -> faults actually raised
        self.fired_by_point: dict[str, int] = {}

    @property
    def active(self) -> bool:
        """Cheap guard for hot paths: anything armed at all?"""
        return bool(self._specs)

    def arm(
        self,
        point: str,
        segment: int | None = None,
        mode: str = FAIL_ONCE,
        n: int = 1,
        skip: int = 0,
        transient: bool = False,
        probability: float = 1.0,
    ) -> FaultSpec:
        """Arm one fault; returns the spec so tests can inspect counters."""
        spec = FaultSpec(point, segment, mode, n, skip, transient, probability)
        self._specs.append(spec)
        return spec

    def disarm(self, point: str | None = None) -> int:
        """Disarm faults at ``point`` (all points when ``None``); returns
        how many specs were removed.  Hit counters are preserved."""
        kept = [
            s for s in self._specs if point is not None and s.point != point
        ]
        removed = len(self._specs) - len(kept)
        self._specs = kept
        return removed

    def reset(self) -> None:
        """Disarm everything and clear all counters."""
        self._specs.clear()
        self.hits_by_point.clear()
        self.fired_by_point.clear()

    def specs(self) -> list[FaultSpec]:
        return list(self._specs)

    def maybe_fire(self, point: str, segment: int) -> None:
        """Raise :class:`SegmentFailure` when an armed spec decides to fire.

        Called by the executor at every injection point; a no-op unless a
        matching spec is armed and its trigger condition is met.
        """
        if not self._specs:
            return
        with self._lock:
            for spec in self._specs:
                if not spec.matches(point, segment) or spec.exhausted:
                    continue
                spec.hits += 1
                self.hits_by_point[point] = (
                    self.hits_by_point.get(point, 0) + 1
                )
                if spec.hits <= spec.skip:
                    continue
                if (
                    spec.probability < 1.0
                    and self._rng.random() >= spec.probability
                ):
                    continue
                spec.fired += 1
                self.fired_by_point[point] = (
                    self.fired_by_point.get(point, 0) + 1
                )
                raise SegmentFailure(
                    f"injected fault at {point} on segment {segment} "
                    f"({spec.mode}, fault #{spec.fired})",
                    segment=segment,
                    point=point,
                    transient=spec.transient,
                )

    def snapshot(self) -> dict:
        """Per-point counters for the metrics export (schema v2)."""
        points = sorted(
            set(self.hits_by_point) | set(self.fired_by_point)
        )
        return {
            point: {
                "hits": self.hits_by_point.get(point, 0),
                "fired": self.fired_by_point.get(point, 0),
            }
            for point in points
        }
