"""Plan wrapper: explain, canonical serialization, size metrics, validation.

Two structural invariants from the paper are enforced here:

1. **Pairing** — every DynamicScan (and every guarded LeafScan) has a
   PartitionSelector producer with the same part scan id, and vice versa.
2. **Motion interaction** (Figure 12) — no Motion may sit between a
   PartitionSelector, its DynamicScan, and their lowest common ancestor,
   because the pair communicates through process-local shared memory.

Validation additionally simulates the engine's execution order (children
left to right; a streaming PartitionSelector finishes producing only when
its input is exhausted) and rejects plans where a consumer would start
before its producer has finished — e.g. a PartitionSelector placed on the
*inner* side of a join whose consumer is on the outer side.

The **plan size metric** of Section 4.4 is the length of the canonical
serialized plan.  ``size_bytes`` measures the pure plan;
``dispatched_size_bytes`` adds the partition-metadata annex that a real
system ships to segment nodes for the partition-selection built-ins — the
paper notes this annex is why Orca's *measured* plan size still shows a
slight dependence on the partition count (Section 4.4.2).
"""

from __future__ import annotations

import json
from typing import Iterator

from ..errors import InvalidPlanError
from ..expr.ast import column_refs
from .ops import (
    DynamicScan,
    LeafScan,
    Motion,
    PartitionSelector,
    PhysicalOp,
)
from .properties import PartSelectorSpec


def _producer_id(op: PhysicalOp) -> int | None:
    """The part scan id this operator produces OIDs for, if any.

    PartitionSelector is the canonical producer; the Section 3.2 lowering
    operators expose ``produces_part_scan_id`` instead.
    """
    if isinstance(op, PartitionSelector):
        return op.part_scan_id
    return getattr(op, "produces_part_scan_id", None)


def _producer_is_streaming(op: PhysicalOp) -> bool:
    if isinstance(op, PartitionSelector):
        return bool(op.children) and _is_streaming_selector(op.spec)
    return bool(getattr(op, "streaming_producer", False))


def _is_streaming_selector(spec: PartSelectorSpec) -> bool:
    """Whether the selector's predicates reference streamed (non-key)
    columns — i.e. dynamic, per-tuple partition selection."""
    for key, predicate in zip(spec.part_keys, spec.part_predicates):
        if predicate is None:
            continue
        for ref in column_refs(predicate):
            if not ref.matches(key):
                return True
    return False


class Plan:
    """A complete physical plan."""

    def __init__(self, root: PhysicalOp, parameter_count: int = 0):
        self.root = root
        self.parameter_count = parameter_count

    # -- inspection -----------------------------------------------------------

    def walk(self) -> Iterator[PhysicalOp]:
        return self.root.walk()

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    def explain(self) -> str:
        lines: list[str] = []

        def emit(op: PhysicalOp, indent: int) -> None:
            line = "  " * indent + op.name
            detail = op.describe()
            if detail:
                line += f" ({detail})"
            if op.distribution is not None:
                line += f" [{op.distribution!r}]"
            if op.estimated_rows is not None:
                line += f" rows≈{op.estimated_rows:.0f}"
            lines.append(line)
            for child in op.children:
                emit(child, indent + 1)

        emit(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Plan:\n{self.explain()}"

    # -- serialization and size metrics -------------------------------------

    def to_dict(self) -> dict:
        def convert(op: PhysicalOp) -> dict:
            node = {"op": op.name}
            node.update(op.serial_fields())
            if op.children:
                node["children"] = [convert(c) for c in op.children]
            return node

        return convert(self.root)

    def serialize(self) -> str:
        """Canonical compact JSON rendering of the plan."""
        return json.dumps(self.to_dict(), separators=(",", ":"), default=str)

    def size_bytes(self) -> int:
        """Size of the pure plan — the paper's plan-size metric."""
        return len(self.serialize().encode("utf-8"))

    def metadata_annex(self) -> dict:
        """Partition metadata shipped alongside the plan.

        For each partitioned table touched through the dynamic-scan
        machinery, the segment-side partition-selection built-ins (paper
        Table 1) need the leaf OIDs and their check constraints.
        """
        tables = {}
        for op in self.walk():
            if isinstance(op, (DynamicScan, PartitionSelector)):
                table = op.table
                if table.oid in tables or not table.is_partitioned:
                    continue
                scheme = table.partition_scheme
                assert scheme is not None
                leaves = []
                for leaf in scheme.leaf_ids():
                    leaves.append(
                        {
                            "oid": table.leaf_oid(leaf),
                            "name": scheme.leaf_name(leaf),
                            "constraints": {
                                key: repr(cons)
                                for key, cons in scheme.leaf_constraints(
                                    leaf
                                ).items()
                            },
                        }
                    )
                tables[table.oid] = {"table": table.name, "leaves": leaves}
        return tables

    def dispatched_size_bytes(self) -> int:
        """Plan size including the partition-metadata annex (what actually
        travels to segment nodes)."""
        annex = json.dumps(
            self.metadata_annex(), separators=(",", ":"), default=str
        )
        return self.size_bytes() + len(annex.encode("utf-8"))

    # -- validation -------------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants; raises :class:`InvalidPlanError`."""
        self._check_pairing()
        self._check_motion_rule(self.root)
        self._check_execution_order()

    def _check_pairing(self) -> None:
        producers: dict[int, int] = {}
        consumers: dict[int, int] = {}
        for op in self.walk():
            produced_id = _producer_id(op)
            if produced_id is not None:
                producers[produced_id] = producers.get(produced_id, 0) + 1
            elif isinstance(op, DynamicScan):
                consumers[op.part_scan_id] = (
                    consumers.get(op.part_scan_id, 0) + 1
                )
            elif isinstance(op, LeafScan) and op.guard_scan_id is not None:
                # All guarded leaves of one Append share one producer.
                consumers.setdefault(op.guard_scan_id, 1)
        missing = sorted(set(consumers) - set(producers))
        if missing:
            raise InvalidPlanError(
                f"DynamicScan(s) {missing} have no PartitionSelector producer"
            )
        orphaned = sorted(set(producers) - set(consumers))
        if orphaned:
            raise InvalidPlanError(
                f"PartitionSelector(s) {orphaned} have no consumer"
            )
        doubled = sorted(k for k, v in consumers.items() if v > 1)
        if doubled:
            raise InvalidPlanError(
                f"part scan id(s) {doubled} used by multiple DynamicScans"
            )

    def _check_motion_rule(self, op: PhysicalOp) -> dict[int, list[int]]:
        """Bottom-up count of producers/consumers per scan id; at every
        Motion, each id seen below must be fully paired below it."""
        counts: dict[int, list[int]] = {}
        for child in op.children:
            for scan_id, (prod, cons) in self._check_motion_rule(child).items():
                entry = counts.setdefault(scan_id, [0, 0])
                entry[0] += prod
                entry[1] += cons

        produced_id = _producer_id(op)
        if produced_id is not None:
            counts.setdefault(produced_id, [0, 0])[0] += 1
        elif isinstance(op, DynamicScan):
            counts.setdefault(op.part_scan_id, [0, 0])[1] += 1
        elif isinstance(op, LeafScan) and op.guard_scan_id is not None:
            counts.setdefault(op.guard_scan_id, [0, 0])[1] += 1

        if isinstance(op, Motion):
            for scan_id, (prod, cons) in counts.items():
                if (prod > 0) != (cons > 0):
                    role = "producer" if prod else "consumer"
                    raise InvalidPlanError(
                        f"{op.name} separates the {role} of part scan "
                        f"{scan_id} from its peer (paper Figure 12)"
                    )
        return {k: list(v) for k, v in counts.items()}

    def _check_execution_order(self) -> None:
        """Every producer must finish before its consumer starts, under the
        engine's left-to-right execution order."""
        events: list[tuple[str, int]] = []

        def simulate(op: PhysicalOp) -> None:
            produced_id = _producer_id(op)
            if produced_id is not None:
                if op.children and _producer_is_streaming(op):
                    simulate(op.children[0])
                    events.append(("produce", produced_id))
                else:
                    events.append(("produce", produced_id))
                    for child in op.children:
                        simulate(child)
                return
            if isinstance(op, DynamicScan):
                events.append(("consume", op.part_scan_id))
                return
            if isinstance(op, LeafScan) and op.guard_scan_id is not None:
                events.append(("consume", op.guard_scan_id))
                return
            for child in op.children:
                simulate(child)

        simulate(self.root)
        produced: set[int] = set()
        for kind, scan_id in events:
            if kind == "produce":
                produced.add(scan_id)
            elif scan_id not in produced:
                raise InvalidPlanError(
                    f"consumer of part scan {scan_id} would execute before "
                    f"its PartitionSelector finishes producing"
                )
