"""Physical plan operators.

The operator set follows the paper:

* ``DynamicScan`` / ``PartitionSelector`` / ``Sequence`` — the partitioned
  table query model of Section 2.2 (producer/consumer over an OID channel).
* ``GatherMotion`` / ``RedistributeMotion`` / ``BroadcastMotion`` — the MPP
  Motion operators of Section 3.1 (process boundaries between slices).
* ``LeafScan`` + ``Append`` — how the legacy Planner represents partitioned
  scans: every leaf partition enumerated explicitly in the plan, which is
  what makes Planner plan size grow with the partition count (Section 4.4).
  A ``LeafScan`` may carry a ``guard_scan_id``: Planner's rudimentary
  dynamic elimination checks the leaf's OID against a run-time OID set
  before scanning (the "parameter" mechanism of Section 4.4.2).
* Conventional operators: Filter, Project, HashJoin, NLJoin, HashAgg, Sort,
  Limit, Update.

**Execution-order convention**: the left child of every join is executed to
completion before the right child starts (hash join: left = build side).
This realises the paper's "implicit execution order of join children (left
to right)" and is what makes a PartitionSelector on the left side a valid
producer for a DynamicScan on the right side.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..catalog import TableDescriptor
from ..expr.ast import AggCall, ColumnRef, Expression
from ..expr.eval import RowLayout
from .properties import DistributionSpec, PartSelectorSpec


class PhysicalOp:
    """Base class for physical plan operators."""

    children: tuple["PhysicalOp", ...] = ()
    #: delivered distribution, filled in by the optimizer (explain only)
    distribution: DistributionSpec | None = None
    #: cardinality estimate, filled in by the optimizer (explain only)
    estimated_rows: float | None = None

    def output_layout(self) -> RowLayout:
        raise NotImplementedError

    def walk(self) -> Iterator["PhysicalOp"]:
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def name(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        return ""

    def serial_fields(self) -> dict:
        """Operator-specific attributes included in the serialized plan.

        The serialized form is the basis of the paper's plan-size metric
        (Section 4.4); fields must therefore reflect everything a real
        system would ship to segments for this node.
        """
        return {}

    def with_children(self, children: Sequence["PhysicalOp"]) -> "PhysicalOp":
        """Shallow copy with new children (used by plan rewrites)."""
        import copy

        clone = copy.copy(self)
        clone.children = tuple(children)
        return clone


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------


class Scan(PhysicalOp):
    """Full scan of an unpartitioned table (each segment scans local rows)."""

    def __init__(self, table: TableDescriptor, alias: str):
        self.table = table
        self.alias = alias

    def output_layout(self) -> RowLayout:
        return RowLayout.for_table(self.alias, self.table.schema.column_names)

    def describe(self) -> str:
        return self.table.name if self.alias == self.table.name else (
            f"{self.table.name} AS {self.alias}"
        )

    def serial_fields(self) -> dict:
        return {"table_oid": self.table.oid, "alias": self.alias}


class LeafScan(PhysicalOp):
    """Scan of one explicitly named leaf partition (Planner-style plans).

    ``guard_scan_id`` marks Planner's parameter-based dynamic elimination:
    at run time the leaf is skipped unless its OID appears in the OID set
    computed for that scan id.
    """

    def __init__(
        self,
        table: TableDescriptor,
        alias: str,
        leaf_oid: int,
        guard_scan_id: int | None = None,
    ):
        self.table = table
        self.alias = alias
        self.leaf_oid = leaf_oid
        self.guard_scan_id = guard_scan_id

    def output_layout(self) -> RowLayout:
        return RowLayout.for_table(self.alias, self.table.schema.column_names)

    def describe(self) -> str:
        guard = (
            f", guarded by scan {self.guard_scan_id}"
            if self.guard_scan_id is not None
            else ""
        )
        return f"{self.table.name} leaf oid={self.leaf_oid}{guard}"

    def serial_fields(self) -> dict:
        fields = {
            "table_oid": self.table.oid,
            "alias": self.alias,
            "leaf_oid": self.leaf_oid,
            # A real executor ships the leaf's physical locator and check
            # constraint text with each explicitly listed partition.
            "leaf_name": self.table.partition_scheme.leaf_name(  # type: ignore[union-attr]
                self.table.leaf_id(self.leaf_oid)
            ),
        }
        if self.guard_scan_id is not None:
            fields["guard_scan_id"] = self.guard_scan_id
        return fields


class EmptyScan(PhysicalOp):
    """A scan that produces no rows: the plan-time result of static
    elimination pruning *every* partition (predicate disjoint from the
    whole table)."""

    def __init__(self, table: TableDescriptor, alias: str):
        self.table = table
        self.alias = alias

    def output_layout(self) -> RowLayout:
        return RowLayout.for_table(self.alias, self.table.schema.column_names)

    def describe(self) -> str:
        return f"{self.table.name} AS {self.alias} (no partitions selected)"

    def serial_fields(self) -> dict:
        return {"table_oid": self.table.oid, "alias": self.alias}


class DynamicScan(PhysicalOp):
    """Scan of a partitioned table driven by run-time partition OIDs
    (Section 2.2).  Consumes OIDs from the PartitionSelector with the same
    ``part_scan_id``; the plan never enumerates the partitions."""

    def __init__(self, table: TableDescriptor, alias: str, part_scan_id: int):
        self.table = table
        self.alias = alias
        self.part_scan_id = part_scan_id

    def output_layout(self) -> RowLayout:
        return RowLayout.for_table(self.alias, self.table.schema.column_names)

    def describe(self) -> str:
        return f"{self.part_scan_id}, {self.table.name} AS {self.alias}"

    def serial_fields(self) -> dict:
        return {
            "table_oid": self.table.oid,
            "alias": self.alias,
            "part_scan_id": self.part_scan_id,
        }


class PartitionSelector(PhysicalOp):
    """Computes partition OIDs for a DynamicScan (Section 2.2).

    With no child it is a standalone producer (run under a Sequence before
    the consumer).  With a child it is a pass-through: tuples flow
    unchanged while the selector applies its predicates — per-tuple for
    join predicates (dynamic elimination), once for constant predicates.
    """

    def __init__(
        self,
        spec: PartSelectorSpec,
        child: PhysicalOp | None = None,
    ):
        self.spec = spec
        self.children = (child,) if child is not None else ()

    @property
    def part_scan_id(self) -> int:
        return self.spec.part_scan_id

    @property
    def table(self) -> TableDescriptor:
        return self.spec.table

    def output_layout(self) -> RowLayout:
        if self.children:
            return self.children[0].output_layout()
        return RowLayout(())

    def describe(self) -> str:
        return repr(self.spec)

    def serial_fields(self) -> dict:
        return {
            "part_scan_id": self.spec.part_scan_id,
            "table_oid": self.spec.table.oid,
            "part_keys": [repr(k) for k in self.spec.part_keys],
            "part_predicates": [
                None if p is None else repr(p)
                for p in self.spec.part_predicates
            ],
        }


class Sequence(PhysicalOp):
    """Executes children left to right, returns the last child's rows
    (Section 2.2)."""

    def __init__(self, children: Sequence[PhysicalOp]):
        if len(children) < 2:
            raise ValueError("Sequence needs at least two children")
        self.children = tuple(children)

    def output_layout(self) -> RowLayout:
        return self.children[-1].output_layout()


# ---------------------------------------------------------------------------
# Row-at-a-time operators
# ---------------------------------------------------------------------------


class Filter(PhysicalOp):
    """Pass rows satisfying a predicate."""

    def __init__(self, child: PhysicalOp, predicate: Expression):
        self.children = (child,)
        self.predicate = predicate

    def output_layout(self) -> RowLayout:
        return self.children[0].output_layout()

    def describe(self) -> str:
        return repr(self.predicate)

    def serial_fields(self) -> dict:
        return {"predicate": repr(self.predicate)}


class Project(PhysicalOp):
    """Compute output columns ``(expression, name)``."""

    def __init__(
        self, child: PhysicalOp, items: Sequence[tuple[Expression, str]]
    ):
        self.children = (child,)
        self.items: tuple[tuple[Expression, str], ...] = tuple(items)

    def output_layout(self) -> RowLayout:
        return RowLayout([(None, name) for _, name in self.items])

    def describe(self) -> str:
        return ", ".join(f"{expr!r} AS {name}" for expr, name in self.items)

    def serial_fields(self) -> dict:
        return {"items": [f"{e!r} AS {n}" for e, n in self.items]}


class HashJoin(PhysicalOp):
    """Hash join; **left child = build side** (executed first), right child
    = probe side.  Inner joins emit build_row ++ probe_row; semi joins emit
    the probe row when at least one build row matches."""

    def __init__(
        self,
        kind: str,
        build: PhysicalOp,
        probe: PhysicalOp,
        build_keys: Sequence[Expression],
        probe_keys: Sequence[Expression],
        residual: Expression | None = None,
    ):
        if kind not in ("inner", "semi"):
            raise ValueError(f"unsupported hash join kind {kind!r}")
        if len(build_keys) != len(probe_keys) or not build_keys:
            raise ValueError("hash join needs matching, non-empty key lists")
        self.kind = kind
        self.children = (build, probe)
        self.build_keys: tuple[Expression, ...] = tuple(build_keys)
        self.probe_keys: tuple[Expression, ...] = tuple(probe_keys)
        self.residual = residual

    @property
    def build(self) -> PhysicalOp:
        return self.children[0]

    @property
    def probe(self) -> PhysicalOp:
        return self.children[1]

    def output_layout(self) -> RowLayout:
        if self.kind == "semi":
            return self.probe.output_layout()
        return self.build.output_layout().concat(self.probe.output_layout())

    def describe(self) -> str:
        keys = ", ".join(
            f"{b!r}={p!r}" for b, p in zip(self.build_keys, self.probe_keys)
        )
        res = f", residual {self.residual!r}" if self.residual else ""
        return f"{self.kind}, {keys}{res}"

    def serial_fields(self) -> dict:
        return {
            "kind": self.kind,
            "keys": [
                f"{b!r}={p!r}"
                for b, p in zip(self.build_keys, self.probe_keys)
            ],
            "residual": repr(self.residual) if self.residual else None,
        }


class NLJoin(PhysicalOp):
    """Block nested-loop join; left child (outer) is materialized first,
    preserving the left-before-right execution order."""

    def __init__(
        self,
        kind: str,
        outer: PhysicalOp,
        inner: PhysicalOp,
        predicate: Expression | None,
    ):
        if kind not in ("inner", "semi"):
            raise ValueError(f"unsupported NL join kind {kind!r}")
        self.kind = kind
        self.children = (outer, inner)
        self.predicate = predicate

    @property
    def outer(self) -> PhysicalOp:
        return self.children[0]

    @property
    def inner(self) -> PhysicalOp:
        return self.children[1]

    def output_layout(self) -> RowLayout:
        if self.kind == "semi":
            return self.outer.output_layout()
        return self.outer.output_layout().concat(self.inner.output_layout())

    def describe(self) -> str:
        return f"{self.kind}, {self.predicate!r}"

    def serial_fields(self) -> dict:
        return {
            "kind": self.kind,
            "predicate": repr(self.predicate) if self.predicate else None,
        }


class HashAgg(PhysicalOp):
    """Hash aggregation; empty ``group_keys`` = scalar aggregation."""

    def __init__(
        self,
        child: PhysicalOp,
        group_keys: Sequence[ColumnRef],
        aggregates: Sequence[tuple[AggCall, str]],
        mode: str = "single",
    ):
        if mode not in ("single", "partial", "final"):
            raise ValueError(f"unknown agg mode {mode!r}")
        self.children = (child,)
        self.group_keys: tuple[ColumnRef, ...] = tuple(group_keys)
        self.aggregates: tuple[tuple[AggCall, str], ...] = tuple(aggregates)
        self.mode = mode

    def output_layout(self) -> RowLayout:
        slots: list[tuple[str | None, str]] = [
            (key.qualifier, key.name) for key in self.group_keys
        ]
        slots.extend((None, name) for _, name in self.aggregates)
        return RowLayout(slots)

    def describe(self) -> str:
        keys = ", ".join(repr(k) for k in self.group_keys)
        aggs = ", ".join(f"{a!r} AS {n}" for a, n in self.aggregates)
        mode = "" if self.mode == "single" else f"{self.mode}, "
        return f"{mode}keys=[{keys}], aggs=[{aggs}]"

    def serial_fields(self) -> dict:
        return {
            "mode": self.mode,
            "group_keys": [repr(k) for k in self.group_keys],
            "aggregates": [f"{a!r} AS {n}" for a, n in self.aggregates],
        }


class Sort(PhysicalOp):
    """Full sort by ``(expression, ascending)`` keys."""

    def __init__(
        self, child: PhysicalOp, keys: Sequence[tuple[Expression, bool]]
    ):
        self.children = (child,)
        self.keys: tuple[tuple[Expression, bool], ...] = tuple(keys)

    def output_layout(self) -> RowLayout:
        return self.children[0].output_layout()

    def describe(self) -> str:
        return ", ".join(
            f"{e!r} {'ASC' if asc else 'DESC'}" for e, asc in self.keys
        )

    def serial_fields(self) -> dict:
        return {
            "keys": [f"{e!r} {'ASC' if asc else 'DESC'}" for e, asc in self.keys]
        }


class Limit(PhysicalOp):
    """Keep the first ``count`` rows."""

    def __init__(self, child: PhysicalOp, count: int):
        self.children = (child,)
        self.count = count

    def output_layout(self) -> RowLayout:
        return self.children[0].output_layout()

    def describe(self) -> str:
        return str(self.count)

    def serial_fields(self) -> dict:
        return {"count": self.count}


class Append(PhysicalOp):
    """Concatenation of children with identical layouts (Planner's
    representation of a partitioned scan: one child per listed leaf)."""

    def __init__(self, children: Sequence[PhysicalOp]):
        if not children:
            raise ValueError("Append needs at least one child")
        self.children = tuple(children)

    def output_layout(self) -> RowLayout:
        return self.children[0].output_layout()

    def describe(self) -> str:
        return f"{len(self.children)} children"


# ---------------------------------------------------------------------------
# Motions (Section 3.1) — process/slice boundaries
# ---------------------------------------------------------------------------


class Motion(PhysicalOp):
    """Base class for motions: the boundary between two active processes
    potentially on different hosts.  Slicing cuts plans at Motion nodes."""

    def __init__(self, child: PhysicalOp):
        self.children = (child,)

    def output_layout(self) -> RowLayout:
        return self.children[0].output_layout()


class GatherMotion(Motion):
    """Gather all segments' rows to the single coordinator process."""


class BroadcastMotion(Motion):
    """Replicate every input row to every segment."""


class RedistributeMotion(Motion):
    """Re-hash rows to segments by the given key expressions."""

    def __init__(self, child: PhysicalOp, hash_exprs: Sequence[Expression]):
        super().__init__(child)
        if not hash_exprs:
            raise ValueError("redistribute needs hash expressions")
        self.hash_exprs: tuple[Expression, ...] = tuple(hash_exprs)

    def describe(self) -> str:
        return ", ".join(repr(e) for e in self.hash_exprs)

    def serial_fields(self) -> dict:
        return {"hash_exprs": [repr(e) for e in self.hash_exprs]}


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


class Delete(PhysicalOp):
    """Delete each input row from the target table.

    The child layout must expose the full target row under
    ``target_alias``; rows are located via ``f_T`` and the distribution
    hash.  Emits a single count row from the coordinator.
    """

    def __init__(
        self,
        child: PhysicalOp,
        target: TableDescriptor,
        target_alias: str,
    ):
        self.children = (child,)
        self.target = target
        self.target_alias = target_alias

    def output_layout(self) -> RowLayout:
        return RowLayout([(None, "deleted")])

    def describe(self) -> str:
        return self.target.name

    def serial_fields(self) -> dict:
        return {"table_oid": self.target.oid}


class Update(PhysicalOp):
    """Apply SET assignments to the target table for each input row.

    The child layout must expose the full target row under ``target_alias``;
    updated rows are re-routed through ``f_T`` (an update may move a row to
    a different partition and, for distribution-key updates, to a different
    segment).  Emits a single count row from the coordinator.
    """

    def __init__(
        self,
        child: PhysicalOp,
        target: TableDescriptor,
        target_alias: str,
        assignments: Sequence[tuple[str, Expression]],
    ):
        self.children = (child,)
        self.target = target
        self.target_alias = target_alias
        self.assignments: tuple[tuple[str, Expression], ...] = tuple(assignments)

    def output_layout(self) -> RowLayout:
        return RowLayout([(None, "updated")])

    def describe(self) -> str:
        sets = ", ".join(f"{c}={e!r}" for c, e in self.assignments)
        return f"{self.target.name} SET {sets}"

    def serial_fields(self) -> dict:
        return {
            "table_oid": self.target.oid,
            "assignments": [f"{c}={e!r}" for c, e in self.assignments],
        }
