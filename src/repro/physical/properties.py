"""Physical plan properties: data distribution and partition selection.

The paper models both as *physical properties* handled by Orca's property
enforcement framework (Section 3.1): a plan either delivers a required
property on its own, or an enforcer operator (Motion for distribution,
PartitionSelector for partition propagation) is plugged in.

* :class:`DistributionSpec` — how a tuple stream is spread over segments.
* :class:`PartSelectorSpec` — the paper's Figure 7 / Figure 11 structure:
  which DynamicScan needs a selector, on which partition key(s), with which
  (optional) partition-filtering predicate per level.
* :class:`PartitionPropagationSpec` — the set of outstanding
  PartSelectorSpecs in an optimization request.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..catalog import TableDescriptor
from ..expr.ast import ColumnRef, Expression


class DistributionSpec:
    """Distribution of a tuple stream across segments.

    Kinds (paper Section 3.1): ``hashed`` — rows placed by hash of key
    columns; ``replicated`` — full copy on every segment; ``singleton`` —
    the whole stream gathered on one host; ``any`` — no requirement (only
    meaningful as a *required* spec).
    """

    ANY = "any"
    HASHED = "hashed"
    REPLICATED = "replicated"
    SINGLETON = "singleton"

    __slots__ = ("kind", "columns")

    def __init__(self, kind: str, columns: Sequence[ColumnRef] = ()):
        if kind not in (self.ANY, self.HASHED, self.REPLICATED, self.SINGLETON):
            raise ValueError(f"unknown distribution kind {kind!r}")
        if kind == self.HASHED and not columns:
            raise ValueError("hashed distribution requires key columns")
        if kind != self.HASHED and columns:
            raise ValueError(f"{kind} distribution takes no columns")
        self.kind = kind
        self.columns: tuple[ColumnRef, ...] = tuple(columns)

    @staticmethod
    def any() -> "DistributionSpec":
        return _ANY

    @staticmethod
    def hashed(columns: Sequence[ColumnRef]) -> "DistributionSpec":
        return DistributionSpec(DistributionSpec.HASHED, columns)

    @staticmethod
    def replicated() -> "DistributionSpec":
        return _REPLICATED

    @staticmethod
    def singleton() -> "DistributionSpec":
        return _SINGLETON

    def satisfies(self, required: "DistributionSpec") -> bool:
        """Whether a stream with this (delivered) distribution meets the
        requirement without an enforcer.

        Replicated data satisfies any hashed requirement: every segment
        already holds all rows, so co-location is trivially met.
        """
        if required.kind == self.ANY:
            return True
        if required.kind == self.HASHED:
            if self.kind == self.REPLICATED:
                return True
            return self.kind == self.HASHED and _same_columns(
                self.columns, required.columns
            )
        return self.kind == required.kind

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistributionSpec):
            return NotImplemented
        return self.kind == other.kind and self.columns == other.columns

    def __hash__(self) -> int:
        return hash((self.kind, self.columns))

    def __repr__(self) -> str:
        if self.kind == self.HASHED:
            cols = ", ".join(repr(c) for c in self.columns)
            return f"Hashed({cols})"
        return self.kind.capitalize()


def _same_columns(
    a: Sequence[ColumnRef], b: Sequence[ColumnRef]
) -> bool:
    if len(a) != len(b):
        return False
    return all(x.matches(y) for x, y in zip(a, b))


_ANY = DistributionSpec(DistributionSpec.ANY)
_REPLICATED = DistributionSpec(DistributionSpec.REPLICATED)
_SINGLETON = DistributionSpec(DistributionSpec.SINGLETON)


class PartSelectorSpec:
    """The paper's PartSelectorSpec (Figure 7, extended per Figure 11).

    One spec describes the PartitionSelector that must be placed for the
    DynamicScan identified by ``part_scan_id``: the partitioned table, one
    partition key per level, and an optional partition-filtering predicate
    per level (``None`` = no predicate on that level, Figure 11's "some
    elements of the partPredicates list may be empty").
    """

    __slots__ = ("part_scan_id", "table", "part_keys", "part_predicates")

    def __init__(
        self,
        part_scan_id: int,
        table: TableDescriptor,
        part_keys: Sequence[ColumnRef],
        part_predicates: Sequence[Expression | None] | None = None,
    ):
        if not part_keys:
            raise ValueError("PartSelectorSpec needs at least one key")
        if part_predicates is None:
            part_predicates = [None] * len(part_keys)
        if len(part_predicates) != len(part_keys):
            raise ValueError(
                "part_predicates must have one entry per partitioning level"
            )
        self.part_scan_id = part_scan_id
        self.table = table
        self.part_keys: tuple[ColumnRef, ...] = tuple(part_keys)
        self.part_predicates: tuple[Expression | None, ...] = tuple(
            part_predicates
        )

    @staticmethod
    def for_table(
        part_scan_id: int, table: TableDescriptor, alias: str
    ) -> "PartSelectorSpec":
        """The initial spec for a DynamicScan: keys from the table's
        partition scheme, no predicates yet (Algorithm 1's input list)."""
        keys = [ColumnRef(key, alias) for key in table.partition_keys]
        return PartSelectorSpec(part_scan_id, table, keys)

    def with_predicates(
        self, predicates: Sequence[Expression | None]
    ) -> "PartSelectorSpec":
        return PartSelectorSpec(
            self.part_scan_id, self.table, self.part_keys, predicates
        )

    @property
    def has_predicates(self) -> bool:
        return any(p is not None for p in self.part_predicates)

    def _key(self) -> tuple:
        return (
            self.part_scan_id,
            self.table.oid,
            self.part_keys,
            self.part_predicates,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartSelectorSpec):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        preds = ", ".join(
            "Φ" if p is None else repr(p) for p in self.part_predicates
        )
        keys = ", ".join(repr(k) for k in self.part_keys)
        return f"<{self.part_scan_id}, [{keys}], [{preds}]>"


class PartitionPropagationSpec:
    """The partition-selection component of an optimization request: the set
    of PartSelectorSpecs still to be resolved in (or on top of) a subtree.

    The empty spec — paper notation ``<>`` — means no outstanding selector.
    """

    __slots__ = ("specs",)

    def __init__(self, specs: Iterable[PartSelectorSpec] = ()):
        self.specs: frozenset[PartSelectorSpec] = frozenset(specs)

    @staticmethod
    def none() -> "PartitionPropagationSpec":
        return _NO_PROPAGATION

    @property
    def is_empty(self) -> bool:
        return not self.specs

    def scan_ids(self) -> set[int]:
        return {spec.part_scan_id for spec in self.specs}

    def add(self, spec: PartSelectorSpec) -> "PartitionPropagationSpec":
        return PartitionPropagationSpec(self.specs | {spec})

    def remove(self, spec: PartSelectorSpec) -> "PartitionPropagationSpec":
        return PartitionPropagationSpec(self.specs - {spec})

    def union(
        self, other: "PartitionPropagationSpec"
    ) -> "PartitionPropagationSpec":
        return PartitionPropagationSpec(self.specs | other.specs)

    def __iter__(self) -> Iterator[PartSelectorSpec]:
        # Deterministic order for stable plans and explain output.
        return iter(sorted(self.specs, key=lambda s: s.part_scan_id))

    def __len__(self) -> int:
        return len(self.specs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionPropagationSpec):
            return NotImplemented
        return self.specs == other.specs

    def __hash__(self) -> int:
        return hash(self.specs)

    def __repr__(self) -> str:
        if self.is_empty:
            return "<>"
        return "{" + ", ".join(repr(s) for s in self) + "}"


_NO_PROPAGATION = PartitionPropagationSpec()
