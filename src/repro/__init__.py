"""repro — a reproduction of "Optimizing Queries over Partitioned Tables
in MPP Systems" (Antova et al., SIGMOD 2014).

The package provides a complete, pure-Python MPP database simulator built
around the paper's contribution: a unified PartitionSelector/DynamicScan
query model for partitioned tables, placement algorithms for static and
dynamic partition elimination, and an Orca-style Cascades optimizer that
models partition selection as an enforced physical property alongside data
distribution.

Quickstart::

    from repro import Database
    from repro.catalog import TableSchema, PartitionScheme, monthly_range_level
    from repro import types as t

    db = Database(num_segments=4)
    db.create_table(
        "orders",
        TableSchema.of(("order_id", t.INT), ("amount", t.FLOAT), ("date", t.DATE)),
        partition_scheme=PartitionScheme(
            [monthly_range_level("date", datetime.date(2012, 1, 1), 24)]
        ),
    )
    db.insert("orders", rows)
    db.analyze()
    result = db.sql(
        "SELECT avg(amount) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013'"
    )
"""

from .engine import ORCA, PLANNER, Database
from .errors import ReproError

__version__ = "1.0.0"

__all__ = ["Database", "ORCA", "PLANNER", "ReproError", "__version__"]
