"""Recursive-descent SQL parser.

Grammar (the fragment used throughout the paper):

.. code-block:: text

    statement    := select | update | delete | insert
    select       := SELECT [DISTINCT] items FROM table_list join*
                    [WHERE expr] [GROUP BY col_list]
                    [ORDER BY order_list] [LIMIT n]
    items        := '*' | item (',' item)*
    item         := expr [[AS] ident]
    table_list   := table_ref (',' table_ref)*
    table_ref    := ident [[AS] ident]
    join         := [INNER] JOIN table_ref ON expr
    update       := UPDATE table_ref SET ident '=' expr (',' ...)*
                    [FROM table_list] [WHERE expr]
    delete       := DELETE FROM table_ref [USING table_list] [WHERE expr]
    insert       := INSERT INTO ident (VALUES row (',' row)* | select)
    expr         := or_expr
    or_expr      := and_expr (OR and_expr)*
    and_expr     := not_expr (AND not_expr)*
    not_expr     := NOT not_expr | predicate
    predicate    := additive [comparison | BETWEEN | IN | IS [NOT] NULL]
    additive     := term (('+'|'-') term)*
    term         := factor (('*'|'/'|'%') factor)*
    factor       := literal | param | column | agg | '(' expr_or_select ')'

``IN (SELECT ...)`` produces an :class:`~repro.sql.ast.InSubquery`
expression; ``IN (v1, v2)`` produces a plain
:class:`~repro.expr.ast.InList`.
"""

from __future__ import annotations

from typing import Any

from ..errors import SqlError
from ..expr.ast import (
    AggCall,
    Arithmetic,
    Between,
    BoolExpr,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
    Parameter,
)
from ..types import date_value
from .ast import (
    DeleteStmt,
    InsertStmt,
    InSubquery,
    SelectItem,
    SelectStmt,
    Statement,
    TableRef,
    UpdateStmt,
)
from .lexer import EOF, IDENT, KEYWORD, NUMBER, OP, PARAM, PUNCT, STRING, Token, tokenize

_AGG_KEYWORDS = ("avg", "sum", "count", "min", "max")


def parse(text: str) -> Statement:
    """Parse one SQL statement (an optional trailing ``;`` is allowed)."""
    return _Parser(tokenize(text)).parse_statement()


def parse_expression(text: str) -> Expression:
    """Parse a standalone scalar expression (handy in tests and configs)."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind != EOF:
            self._pos += 1
        return token

    def error(self, message: str) -> SqlError:
        return SqlError(
            f"{message} (near position {self.current.position})",
            self.current.position,
        )

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word.upper()}")

    def accept_punct(self, char: str) -> bool:
        token = self.current
        if token.kind == PUNCT and token.value == char:
            self.advance()
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            raise self.error(f"expected {char!r}")

    def expect_ident(self) -> str:
        token = self.current
        if token.kind != IDENT:
            raise self.error("expected identifier")
        self.advance()
        return token.value

    def expect_eof(self) -> None:
        self.accept_punct(";")
        if self.current.kind != EOF:
            raise self.error("unexpected trailing input")

    # -- statements -------------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self.current
        if token.is_keyword("select"):
            stmt: Statement = self.parse_select()
        elif token.is_keyword("update"):
            stmt = self.parse_update()
        elif token.is_keyword("insert"):
            stmt = self.parse_insert()
        elif token.is_keyword("delete"):
            stmt = self.parse_delete()
        else:
            raise self.error("expected SELECT, UPDATE, DELETE or INSERT")
        self.expect_eof()
        return stmt

    def parse_select(self) -> SelectStmt:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        items = self._parse_select_items()
        self.expect_keyword("from")
        tables = [self._parse_table_ref()]
        while self.accept_punct(","):
            tables.append(self._parse_table_ref())
        joins: list[tuple[TableRef, Expression]] = []
        while True:
            if self.accept_keyword("inner"):
                self.expect_keyword("join")
            elif not self.accept_keyword("join"):
                break
            table = self._parse_table_ref()
            self.expect_keyword("on")
            joins.append((table, self.parse_expr()))
        where = self.parse_expr() if self.accept_keyword("where") else None
        group_by: list[Expression] = []
        order_by: list[tuple[Expression, bool]] = []
        limit = None
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self.accept_punct(","):
                order_by.append(self._parse_order_item())
        if self.accept_keyword("limit"):
            token = self.current
            if token.kind != NUMBER or not isinstance(token.value, int):
                raise self.error("expected integer LIMIT")
            self.advance()
            limit = token.value
        return SelectStmt(
            items, tables, joins, where, group_by, order_by, limit, distinct
        )

    def _parse_select_items(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self.accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if self.accept_punct("*"):
            return SelectItem(None)
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.kind == IDENT:
            alias = self.expect_ident()
        return SelectItem(expr, alias)

    def _parse_order_item(self) -> tuple[Expression, bool]:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return expr, ascending

    def _parse_table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.kind == IDENT:
            alias = self.expect_ident()
        return TableRef(name, alias)

    def parse_update(self) -> UpdateStmt:
        self.expect_keyword("update")
        target = self._parse_table_ref()
        self.expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self.accept_punct(","):
            assignments.append(self._parse_assignment())
        from_tables: list[TableRef] = []
        if self.accept_keyword("from"):
            from_tables.append(self._parse_table_ref())
            while self.accept_punct(","):
                from_tables.append(self._parse_table_ref())
        where = self.parse_expr() if self.accept_keyword("where") else None
        return UpdateStmt(target, assignments, from_tables, where)

    def _parse_assignment(self) -> tuple[str, Expression]:
        column = self.expect_ident()
        token = self.current
        if token.kind != OP or token.value != "=":
            raise self.error("expected '=' in SET assignment")
        self.advance()
        return column, self.parse_expr()

    def parse_delete(self) -> DeleteStmt:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        target = self._parse_table_ref()
        using_tables: list[TableRef] = []
        if self.accept_keyword("using"):
            using_tables.append(self._parse_table_ref())
            while self.accept_punct(","):
                using_tables.append(self._parse_table_ref())
        where = self.parse_expr() if self.accept_keyword("where") else None
        return DeleteStmt(target, using_tables, where)

    def parse_insert(self) -> InsertStmt:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = TableRef(self.expect_ident())
        if self.current.is_keyword("select"):
            return InsertStmt(table, rows=[], select=self.parse_select())
        self.expect_keyword("values")
        rows = [self._parse_value_row()]
        while self.accept_punct(","):
            rows.append(self._parse_value_row())
        return InsertStmt(table, rows)

    def _parse_value_row(self) -> list[Any]:
        self.expect_punct("(")
        values = [self._parse_literal_value()]
        while self.accept_punct(","):
            values.append(self._parse_literal_value())
        self.expect_punct(")")
        return values

    def _parse_literal_value(self) -> Any:
        token = self.current
        if token.kind == NUMBER:
            self.advance()
            return token.value
        if token.kind == STRING:
            self.advance()
            return token.value
        if token.is_keyword("null"):
            self.advance()
            return None
        if token.is_keyword("true"):
            self.advance()
            return True
        if token.is_keyword("false"):
            self.advance()
            return False
        if token.kind == OP and token.value == "-":
            self.advance()
            number = self.current
            if number.kind != NUMBER:
                raise self.error("expected number after '-'")
            self.advance()
            return -number.value
        raise self.error("expected literal value")

    def _parse_in_value(self) -> Any:
        """A literal inside an IN list.

        Unlike INSERT VALUES (where the column's declared type decides, and
        a TEXT column must keep ``'2013-05-15'`` as a string), IN lists are
        comparands — date-shaped strings get the same coercion that
        comparison and BETWEEN literals receive in ``_parse_factor``.
        """
        value = self._parse_literal_value()
        if isinstance(value, str):
            return _maybe_date(value)
        return value

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        args = [self._parse_and()]
        while self.accept_keyword("or"):
            args.append(self._parse_and())
        if len(args) == 1:
            return args[0]
        return BoolExpr(BoolExpr.OR, args)

    def _parse_and(self) -> Expression:
        args = [self._parse_not()]
        while self.accept_keyword("and"):
            args.append(self._parse_not())
        if len(args) == 1:
            return args[0]
        return BoolExpr(BoolExpr.AND, args)

    def _parse_not(self) -> Expression:
        if self.accept_keyword("not"):
            return BoolExpr(BoolExpr.NOT, [self._parse_not()])
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self.current
        if token.kind == OP and token.value in ("=", "<>", "<", "<=", ">", ">="):
            self.advance()
            right = self._parse_additive()
            return Comparison(token.value, left, right)
        if token.is_keyword("between"):
            self.advance()
            lo = self._parse_additive()
            self.expect_keyword("and")
            hi = self._parse_additive()
            return Between(left, lo, hi)
        negated = False
        if token.is_keyword("not"):
            # lookahead for NOT IN
            nxt = self._tokens[self._pos + 1]
            if nxt.is_keyword("in"):
                self.advance()
                negated = True
                token = self.current
        if token.is_keyword("in"):
            self.advance()
            self.expect_punct("(")
            if self.current.is_keyword("select"):
                subquery = self.parse_select()
                self.expect_punct(")")
                if negated:
                    raise self.error("NOT IN (subquery) is not supported")
                return InSubquery(left, subquery)
            values = [self._parse_in_value()]
            while self.accept_punct(","):
                values.append(self._parse_in_value())
            self.expect_punct(")")
            in_list: Expression = InList(left, values)
            if negated:
                return BoolExpr(BoolExpr.NOT, [in_list])
            return in_list
        if token.is_keyword("is"):
            self.advance()
            negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return IsNull(left, negated)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_term()
        while True:
            token = self.current
            if token.kind == OP and token.value in ("+", "-"):
                self.advance()
                left = Arithmetic(token.value, left, self._parse_term())
            else:
                return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while True:
            token = self.current
            if token.kind == OP and token.value in ("/", "%"):
                self.advance()
                left = Arithmetic(token.value, left, self._parse_factor())
            elif token.kind == PUNCT and token.value == "*":
                self.advance()
                left = Arithmetic("*", left, self._parse_factor())
            else:
                return left

    def _parse_factor(self) -> Expression:
        token = self.current
        if token.kind == NUMBER:
            self.advance()
            return Literal(token.value)
        if token.kind == STRING:
            self.advance()
            return Literal(_maybe_date(token.value))
        if token.kind == PARAM:
            self.advance()
            return Parameter(token.value)
        if token.is_keyword("null"):
            self.advance()
            return Literal(None)
        if token.is_keyword("true"):
            self.advance()
            return Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return Literal(False)
        if token.kind == OP and token.value == "-":
            self.advance()
            inner = self._parse_factor()
            return Arithmetic("-", Literal(0), inner)
        if token.kind == KEYWORD and token.value in _AGG_KEYWORDS:
            return self._parse_aggregate(token.value)
        if token.kind == IDENT:
            return self._parse_column()
        if self.accept_punct("("):
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        raise self.error("expected expression")

    def _parse_aggregate(self, func: str) -> Expression:
        self.advance()
        self.expect_punct("(")
        if func == "count" and self.accept_punct("*"):
            self.expect_punct(")")
            return AggCall("count", None)
        arg = self.parse_expr()
        self.expect_punct(")")
        return AggCall(func, arg)

    def _parse_column(self) -> Expression:
        first = self.expect_ident()
        if self.accept_punct("."):
            second = self.expect_ident()
            return ColumnRef(second, qualifier=first)
        return ColumnRef(first)


def _maybe_date(text: str) -> Any:
    """String literals shaped like dates become date values.

    The paper writes ``date BETWEEN '10-01-2013' AND '12-31-2013'`` —
    without a type system on literals, recognising date shapes keeps such
    comparisons well-typed against DATE columns.
    """
    parts = text.split("-")
    if len(parts) == 3 and all(p.isdigit() for p in parts):
        lengths = sorted(len(p) for p in parts)
        if lengths in ([2, 2, 4], [1, 2, 4], [1, 1, 4]):
            try:
                return date_value(text)
            except Exception:  # noqa: BLE001 - fall back to plain string
                return text
    return text
