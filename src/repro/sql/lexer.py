"""SQL lexer.

Produces a stream of :class:`Token` objects for the parser.  The dialect is
the fragment the paper's queries need: identifiers, quoted strings, numeric
literals, parameters (``$1``), comparison operators, punctuation, and the
keyword set below.  Keywords are case-insensitive; identifiers are folded
to lower case (like PostgreSQL without quoting).
"""

from __future__ import annotations

from typing import Iterator

from ..errors import SqlError

KEYWORDS = {
    "select", "from", "where", "group", "order", "by", "limit", "as",
    "and", "or", "not", "between", "in", "is", "null", "asc", "desc",
    "join", "inner", "on", "update", "set", "insert", "into", "values",
    "distinct", "true", "false", "avg", "sum", "count", "min", "max",
    "delete", "using",
}

# token kinds
IDENT = "IDENT"
KEYWORD = "KEYWORD"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
PUNCT = "PUNCT"
PARAM = "PARAM"
EOF = "EOF"

_PUNCT = set("(),.;*")
_OP_CHARS = set("<>=!")


class Token:
    """One lexical token with its source position (for error messages)."""

    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value, position: int):
        self.kind = kind
        self.value = value
        self.position = position

    def is_keyword(self, word: str) -> bool:
        return self.kind == KEYWORD and self.value == word

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`SqlError` on lexical errors."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        if ch == "-" and text.startswith("--", pos):
            newline = text.find("\n", pos)
            pos = length if newline < 0 else newline + 1
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            word = text[start:pos].lower()
            kind = KEYWORD if word in KEYWORDS else IDENT
            yield Token(kind, word, start)
            continue
        if ch.isdigit() or (
            ch == "." and pos + 1 < length and text[pos + 1].isdigit()
        ):
            start = pos
            seen_dot = False
            while pos < length and (
                text[pos].isdigit() or (text[pos] == "." and not seen_dot)
            ):
                if text[pos] == ".":
                    # A trailing '.' followed by non-digit belongs to
                    # qualified names, not numbers.
                    if pos + 1 >= length or not text[pos + 1].isdigit():
                        break
                    seen_dot = True
                pos += 1
            literal = text[start:pos]
            value = float(literal) if "." in literal else int(literal)
            yield Token(NUMBER, value, start)
            continue
        if ch == "'":
            start = pos
            pos += 1
            chunks: list[str] = []
            while True:
                if pos >= length:
                    raise SqlError("unterminated string literal", start)
                if text[pos] == "'":
                    if pos + 1 < length and text[pos + 1] == "'":
                        chunks.append("'")
                        pos += 2
                        continue
                    pos += 1
                    break
                chunks.append(text[pos])
                pos += 1
            yield Token(STRING, "".join(chunks), start)
            continue
        if ch == "$":
            start = pos
            pos += 1
            digits_start = pos
            while pos < length and text[pos].isdigit():
                pos += 1
            if pos == digits_start:
                raise SqlError("expected parameter number after '$'", start)
            yield Token(PARAM, int(text[digits_start:pos]), start)
            continue
        if ch in _OP_CHARS:
            start = pos
            two = text[pos : pos + 2]
            if two in ("<=", ">=", "<>", "!="):
                yield Token(OP, "<>" if two == "!=" else two, start)
                pos += 2
                continue
            if ch in "<>=":
                yield Token(OP, ch, start)
                pos += 1
                continue
            raise SqlError(f"unexpected character {ch!r}", start)
        if ch in _PUNCT:
            yield Token(PUNCT, ch, pos)
            pos += 1
            continue
        if ch in "+-/%":
            yield Token(OP, ch, pos)
            pos += 1
            continue
        raise SqlError(f"unexpected character {ch!r}", pos)
    yield Token(EOF, None, length)
