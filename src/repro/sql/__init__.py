"""SQL front end: lexer, parser, binder."""

from .ast import InsertStmt, InSubquery, SelectItem, SelectStmt, Statement, TableRef, UpdateStmt
from .binder import Binder
from .parser import parse, parse_expression

__all__ = [
    "Binder",
    "InsertStmt",
    "InSubquery",
    "SelectItem",
    "SelectStmt",
    "Statement",
    "TableRef",
    "UpdateStmt",
    "parse",
    "parse_expression",
]
