"""Statement-level AST produced by the parser.

Scalar expressions reuse :mod:`repro.expr.ast` (unbound: column references
carry whatever qualifier the query wrote).  The only SQL-specific expression
node is :class:`InSubquery`, which the binder rewrites to a semi-join —
that is how the paper's Figure 4 query acquires its join-based dynamic
partition elimination opportunity.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..expr.ast import Expression


class InSubquery(Expression):
    """``subject IN (SELECT ...)`` — rewritten to a semi-join by the binder."""

    __slots__ = ("subject", "subquery")

    def __init__(self, subject: Expression, subquery: "SelectStmt"):
        self.subject = subject
        self.subquery = subquery

    def children(self) -> tuple[Expression, ...]:
        return (self.subject,)

    def _key(self) -> tuple:
        return (self.subject, id(self.subquery))

    def __repr__(self) -> str:
        return f"({self.subject!r} IN (subquery))"


class TableRef:
    """A table mention in FROM, with its effective alias."""

    __slots__ = ("name", "alias")

    def __init__(self, name: str, alias: str | None = None):
        self.name = name
        self.alias = alias or name

    def __repr__(self) -> str:
        if self.alias != self.name:
            return f"{self.name} AS {self.alias}"
        return self.name


class SelectItem:
    """One entry of the select list; ``expr is None`` encodes ``*``."""

    __slots__ = ("expr", "alias")

    def __init__(self, expr: Expression | None, alias: str | None = None):
        self.expr = expr
        self.alias = alias

    @property
    def is_star(self) -> bool:
        return self.expr is None

    def __repr__(self) -> str:
        if self.is_star:
            return "*"
        if self.alias:
            return f"{self.expr!r} AS {self.alias}"
        return repr(self.expr)


class Statement:
    """Base class for parsed statements."""


class SelectStmt(Statement):
    """A SELECT query.

    ``tables`` holds comma-list FROM entries; ``joins`` holds explicit
    ``JOIN ... ON`` clauses applied left-deep after ``tables``.
    """

    def __init__(
        self,
        items: Sequence[SelectItem],
        tables: Sequence[TableRef],
        joins: Sequence[tuple[TableRef, Expression]] = (),
        where: Expression | None = None,
        group_by: Sequence[Expression] = (),
        order_by: Sequence[tuple[Expression, bool]] = (),
        limit: int | None = None,
        distinct: bool = False,
    ):
        self.items = list(items)
        self.tables = list(tables)
        self.joins = list(joins)
        self.where = where
        self.group_by = list(group_by)
        self.order_by = list(order_by)
        self.limit = limit
        self.distinct = distinct

    def __repr__(self) -> str:
        return (
            f"SelectStmt(items={self.items!r}, tables={self.tables!r}, "
            f"where={self.where!r})"
        )


class UpdateStmt(Statement):
    """``UPDATE target SET ... [FROM tables] [WHERE ...]``."""

    def __init__(
        self,
        target: TableRef,
        assignments: Sequence[tuple[str, Expression]],
        from_tables: Sequence[TableRef] = (),
        where: Expression | None = None,
    ):
        self.target = target
        self.assignments = list(assignments)
        self.from_tables = list(from_tables)
        self.where = where

    def __repr__(self) -> str:
        return f"UpdateStmt(target={self.target!r}, sets={self.assignments!r})"


class DeleteStmt(Statement):
    """``DELETE FROM target [USING tables] [WHERE ...]``."""

    def __init__(
        self,
        target: TableRef,
        using_tables: Sequence[TableRef] = (),
        where: Expression | None = None,
    ):
        self.target = target
        self.using_tables = list(using_tables)
        self.where = where

    def __repr__(self) -> str:
        return f"DeleteStmt(target={self.target!r}, where={self.where!r})"


class InsertStmt(Statement):
    """``INSERT INTO table VALUES (...)`` over literal rows, or
    ``INSERT INTO table SELECT ...``."""

    def __init__(
        self,
        table: TableRef,
        rows: Sequence[Sequence[Any]],
        select: "SelectStmt | None" = None,
    ):
        self.table = table
        self.rows = [list(r) for r in rows]
        self.select = select

    def __repr__(self) -> str:
        if self.select is not None:
            return f"InsertStmt({self.table!r}, SELECT ...)"
        return f"InsertStmt({self.table!r}, {len(self.rows)} rows)"
