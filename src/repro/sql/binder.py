"""Binder: statement AST → logical operator tree.

Responsibilities:

* resolve table names against the catalog and column references against the
  visible scope, **fully qualifying** every column reference (so later
  phases can match columns by alias deterministically);
* build a canonical left-deep join tree in FROM order, distributing WHERE
  conjuncts: single-relation conjuncts become Selects directly over their
  relation, join conjuncts attach to the first join that covers them —
  this reproduces the shape of the paper's Figure 8(a);
* rewrite ``x IN (SELECT ...)`` into a **semi-join** (the paper's Figure 4
  query becomes a join and thus a dynamic-partition-elimination
  opportunity);
* split aggregation queries into GroupBy + Project, and DISTINCT into a
  grouping on the output columns;
* bind UPDATE ... FROM into a join tree beneath a LogicalUpdate.
"""

from __future__ import annotations

from typing import Sequence

from ..catalog import Catalog
from ..errors import BindError
from ..expr.analysis import conj, conjuncts
from ..expr.ast import (
    AggCall,
    Arithmetic,
    Between,
    BoolExpr,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
    column_refs,
    contains_aggregate,
)
from ..logical.ops import (
    INNER,
    SEMI,
    LogicalDelete,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalOp,
    LogicalProject,
    LogicalSelect,
    LogicalSort,
    LogicalUpdate,
)
from .ast import (
    DeleteStmt,
    InsertStmt,
    InSubquery,
    SelectStmt,
    TableRef,
    UpdateStmt,
)


class _Scope:
    """Visible relations: alias → column names."""

    def __init__(self) -> None:
        self._relations: dict[str, tuple[str, ...]] = {}

    def add(self, alias: str, columns: Sequence[str]) -> None:
        if alias in self._relations:
            raise BindError(f"duplicate table alias {alias!r}")
        self._relations[alias] = tuple(columns)

    def aliases(self) -> list[str]:
        return list(self._relations)

    def columns(self, alias: str) -> tuple[str, ...]:
        return self._relations[alias]

    def qualify(self, ref: ColumnRef) -> ColumnRef:
        """Return a fully qualified copy of ``ref``; raise on unknown or
        ambiguous references."""
        if ref.qualifier is not None:
            cols = self._relations.get(ref.qualifier)
            if cols is None:
                raise BindError(f"unknown table alias {ref.qualifier!r}")
            if ref.name not in cols:
                raise BindError(
                    f"column {ref.name!r} not found in {ref.qualifier!r}"
                )
            return ref
        owners = [
            alias for alias, cols in self._relations.items() if ref.name in cols
        ]
        if not owners:
            raise BindError(f"unknown column {ref.name!r}")
        if len(owners) > 1:
            raise BindError(
                f"column {ref.name!r} is ambiguous (in {', '.join(owners)})"
            )
        return ColumnRef(ref.name, owners[0])

    def relations_of(self, expr: Expression) -> set[str]:
        """Aliases referenced by a (qualified) expression."""
        return {ref.qualifier for ref in column_refs(expr) if ref.qualifier}


class Binder:
    """Binds parsed statements against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._subquery_counter = 0

    # -- public entry points -------------------------------------------------

    def bind(self, statement) -> LogicalOp:
        if isinstance(statement, SelectStmt):
            return self.bind_select(statement)
        if isinstance(statement, UpdateStmt):
            return self.bind_update(statement)
        if isinstance(statement, DeleteStmt):
            return self.bind_delete(statement)
        raise BindError(
            f"cannot bind statement of type {type(statement).__name__}"
        )

    def bind_select(self, stmt: SelectStmt) -> LogicalOp:
        scope = _Scope()
        gets: list[LogicalGet] = []
        for table_ref in stmt.tables:
            gets.append(self._bind_table(table_ref, scope))
        join_preds: list[Expression] = []
        explicit_joins: list[tuple[LogicalGet, Expression]] = []
        for table_ref, on_expr in stmt.joins:
            get = self._bind_table(table_ref, scope)
            explicit_joins.append((get, on_expr))

        where = stmt.where
        semi_joins: list[tuple[LogicalOp, Expression]] = []
        residual: list[Expression] = []
        table_filters: dict[str, list[Expression]] = {}
        if where is not None:
            for conjunct in conjuncts(where):
                bound = self._bind_scalar(conjunct, scope, semi_joins)
                if isinstance(bound, Literal) and bound.value is True:
                    continue  # an IN-subquery conjunct, now a semi-join
                refs = scope.relations_of(bound)
                if len(refs) == 1:
                    table_filters.setdefault(next(iter(refs)), []).append(bound)
                elif len(refs) > 1:
                    join_preds.append(bound)
                else:
                    residual.append(bound)

        # Assemble the left-deep tree in FROM order.
        plan = self._with_filters(gets[0], table_filters)
        joined_aliases = {gets[0].alias}
        pending = list(join_preds)
        for get in gets[1:]:
            right = self._with_filters(get, table_filters)
            joined_aliases.add(get.alias)
            usable, pending = _split_covered(pending, joined_aliases, scope)
            plan = LogicalJoin(INNER, plan, right, conj(usable))
        for get, on_expr in explicit_joins:
            right = self._with_filters(get, table_filters)
            joined_aliases.add(get.alias)
            bound_on = self._bind_scalar(on_expr, scope, semi_joins)
            usable, pending = _split_covered(pending, joined_aliases, scope)
            plan = LogicalJoin(INNER, plan, right, conj([bound_on] + usable))
        if pending:
            plan = LogicalSelect(plan, conj(pending))  # type: ignore[arg-type]
        for sub_plan, predicate in semi_joins:
            plan = LogicalJoin(SEMI, plan, sub_plan, predicate)
        if residual:
            plan = LogicalSelect(plan, conj(residual))  # type: ignore[arg-type]

        plan = self._bind_projection(stmt, plan, scope)

        if stmt.order_by:
            output = plan.output_layout()
            keys = []
            for expr, ascending in stmt.order_by:
                bound = self._qualify_against_layout(expr, output, scope)
                keys.append((bound, ascending))
            plan = LogicalSort(plan, keys)
        if stmt.limit is not None:
            plan = LogicalLimit(plan, stmt.limit)
        return plan

    def bind_update(self, stmt: UpdateStmt) -> LogicalOp:
        scope = _Scope()
        target_get = self._bind_table(stmt.target, scope)
        gets = [target_get]
        for table_ref in stmt.from_tables:
            gets.append(self._bind_table(table_ref, scope))

        semi_joins: list[tuple[LogicalOp, Expression]] = []
        join_preds: list[Expression] = []
        table_filters: dict[str, list[Expression]] = {}
        if stmt.where is not None:
            for conjunct in conjuncts(stmt.where):
                bound = self._bind_scalar(conjunct, scope, semi_joins)
                refs = scope.relations_of(bound)
                if len(refs) == 1:
                    table_filters.setdefault(next(iter(refs)), []).append(bound)
                else:
                    join_preds.append(bound)
        if semi_joins:
            raise BindError("IN (subquery) is not supported in UPDATE")

        plan: LogicalOp = self._with_filters(gets[0], table_filters)
        joined_aliases = {gets[0].alias}
        pending = list(join_preds)
        for get in gets[1:]:
            right = self._with_filters(get, table_filters)
            joined_aliases.add(get.alias)
            usable, pending = _split_covered(pending, joined_aliases, scope)
            plan = LogicalJoin(INNER, plan, right, conj(usable))
        if pending:
            plan = LogicalSelect(plan, conj(pending))  # type: ignore[arg-type]

        assignments = []
        target_schema = target_get.table.schema
        for column, value in stmt.assignments:
            if not target_schema.has_column(column):
                raise BindError(
                    f"column {column!r} not in table {target_get.table.name!r}"
                )
            assignments.append(
                (column, self._bind_scalar(value, scope, semi_joins))
            )
        return LogicalUpdate(
            plan, target_get.table, target_get.alias, assignments
        )

    def bind_delete(self, stmt: DeleteStmt) -> LogicalOp:
        scope = _Scope()
        target_get = self._bind_table(stmt.target, scope)
        gets = [target_get]
        for table_ref in stmt.using_tables:
            gets.append(self._bind_table(table_ref, scope))

        semi_joins: list[tuple[LogicalOp, Expression]] = []
        join_preds: list[Expression] = []
        table_filters: dict[str, list[Expression]] = {}
        if stmt.where is not None:
            for conjunct in conjuncts(stmt.where):
                bound = self._bind_scalar(conjunct, scope, semi_joins)
                if isinstance(bound, Literal) and bound.value is True:
                    continue
                refs = scope.relations_of(bound)
                if len(refs) == 1:
                    table_filters.setdefault(next(iter(refs)), []).append(bound)
                else:
                    join_preds.append(bound)

        plan: LogicalOp = self._with_filters(gets[0], table_filters)
        joined_aliases = {gets[0].alias}
        pending = list(join_preds)
        for get in gets[1:]:
            right = self._with_filters(get, table_filters)
            joined_aliases.add(get.alias)
            usable, pending = _split_covered(pending, joined_aliases, scope)
            plan = LogicalJoin(INNER, plan, right, conj(usable))
        if pending:
            plan = LogicalSelect(plan, conj(pending))  # type: ignore[arg-type]
        for sub_plan, predicate in semi_joins:
            plan = LogicalJoin(SEMI, plan, sub_plan, predicate)
        return LogicalDelete(plan, target_get.table, target_get.alias)

    def bind_insert_rows(self, stmt: InsertStmt) -> tuple[str, list[list]]:
        """INSERTs bypass planning; validate the table exists and return
        ``(table name, rows)`` for direct storage insertion."""
        descriptor = self.catalog.table(stmt.table.name)
        return descriptor.name, stmt.rows

    # -- helpers --------------------------------------------------------------

    def _bind_table(self, table_ref: TableRef, scope: _Scope) -> LogicalGet:
        descriptor = self.catalog.table(table_ref.name)
        scope.add(table_ref.alias, descriptor.schema.column_names)
        return LogicalGet(descriptor, table_ref.alias)

    def _with_filters(
        self, get: LogicalGet, table_filters: dict[str, list[Expression]]
    ) -> LogicalOp:
        filters = table_filters.get(get.alias)
        if not filters:
            return get
        predicate = conj(filters)
        assert predicate is not None
        return LogicalSelect(get, predicate)

    def _bind_scalar(
        self,
        expr: Expression,
        scope: _Scope,
        semi_joins: list[tuple[LogicalOp, Expression]],
    ) -> Expression:
        """Qualify column refs; rewrite IN-subqueries to pending semi-joins."""
        if isinstance(expr, ColumnRef):
            return scope.qualify(expr)
        if isinstance(expr, InSubquery):
            subject = self._bind_scalar(expr.subject, scope, semi_joins)
            sub_plan, output_ref = self._bind_subquery(expr.subquery)
            predicate = Comparison("=", subject, output_ref)
            semi_joins.append((sub_plan, predicate))
            # The semi-join itself is the predicate; nothing remains inline.
            return Literal(True)
        if isinstance(expr, Comparison):
            return Comparison(
                expr.op,
                self._bind_scalar(expr.left, scope, semi_joins),
                self._bind_scalar(expr.right, scope, semi_joins),
            )
        if isinstance(expr, BoolExpr):
            if expr.op != BoolExpr.AND and any(
                isinstance(node, InSubquery) for node in expr.walk()
            ):
                raise BindError(
                    "IN (subquery) is only supported in AND-ed conjuncts"
                )
            return BoolExpr(
                expr.op,
                [self._bind_scalar(a, scope, semi_joins) for a in expr.args],
            )
        if isinstance(expr, Between):
            return Between(
                self._bind_scalar(expr.subject, scope, semi_joins),
                self._bind_scalar(expr.lo, scope, semi_joins),
                self._bind_scalar(expr.hi, scope, semi_joins),
            )
        if isinstance(expr, InList):
            return InList(
                self._bind_scalar(expr.subject, scope, semi_joins), expr.values
            )
        if isinstance(expr, IsNull):
            return IsNull(
                self._bind_scalar(expr.subject, scope, semi_joins), expr.negated
            )
        if isinstance(expr, Arithmetic):
            return Arithmetic(
                expr.op,
                self._bind_scalar(expr.left, scope, semi_joins),
                self._bind_scalar(expr.right, scope, semi_joins),
            )
        if isinstance(expr, AggCall):
            arg = (
                self._bind_scalar(expr.arg, scope, semi_joins)
                if expr.arg is not None
                else None
            )
            return AggCall(expr.func, arg)
        return expr  # Literal, Parameter

    def _bind_subquery(self, stmt: SelectStmt) -> tuple[LogicalOp, ColumnRef]:
        """Bind an IN-subquery; its single output column is renamed to a
        unique name so the semi-join predicate cannot be ambiguous."""
        sub_plan = self.bind_select(stmt)
        layout = sub_plan.output_layout()
        if len(layout) != 1:
            raise BindError(
                "IN (subquery) requires a single-column subquery"
            )
        self._subquery_counter += 1
        unique = f"__subq{self._subquery_counter}"
        qualifier, name = layout.slots[0]
        inner_ref = ColumnRef(name, qualifier)
        renamed = LogicalProject(sub_plan, [(inner_ref, unique)])
        return renamed, ColumnRef(unique)

    def _bind_projection(
        self, stmt: SelectStmt, plan: LogicalOp, scope: _Scope
    ) -> LogicalOp:
        # Expand stars and qualify item expressions.
        items: list[tuple[Expression, str]] = []
        used_names: set[str] = set()
        for item in stmt.items:
            if item.is_star:
                for alias in scope.aliases():
                    for col in scope.columns(alias):
                        items.append(
                            (ColumnRef(col, alias), _fresh(col, used_names))
                        )
                continue
            bound = self._bind_scalar(item.expr, scope, [])
            name = item.alias or _default_name(bound)
            items.append((bound, _fresh(name, used_names)))

        has_aggs = bool(stmt.group_by) or any(
            contains_aggregate(expr) for expr, _ in items
        )
        if not has_aggs:
            plan = LogicalProject(plan, items)
            if stmt.distinct:
                output = plan.output_layout()
                keys = [ColumnRef(name, q) for q, name in output.slots]
                plan = LogicalGroupBy(plan, keys, [])
            return plan

        group_keys: list[ColumnRef] = []
        for expr in stmt.group_by:
            bound = self._bind_scalar(expr, scope, [])
            if not isinstance(bound, ColumnRef):
                raise BindError("GROUP BY supports plain columns only")
            group_keys.append(bound)

        agg_map: dict[AggCall, str] = {}
        final_items: list[tuple[Expression, str]] = []
        for expr, name in items:
            final_items.append((_extract_aggs(expr, agg_map, group_keys), name))
        aggregates = [(agg, agg_name) for agg, agg_name in agg_map.items()]
        grouped = LogicalGroupBy(plan, group_keys, aggregates)
        projected: LogicalOp = LogicalProject(grouped, final_items)
        if stmt.distinct:
            output = projected.output_layout()
            keys = [ColumnRef(name, q) for q, name in output.slots]
            projected = LogicalGroupBy(projected, keys, [])
        return projected

    def _qualify_against_layout(self, expr, layout, scope: _Scope):
        """Bind ORDER BY expressions against the projection output.

        A qualified reference (``c.state``) also matches the output column
        of the same bare name, since projection outputs drop qualifiers.
        Ordering by columns that are not in the select list is not
        supported (project them explicitly).
        """
        if isinstance(expr, ColumnRef):
            if layout.has(expr):
                return expr
            bare = ColumnRef(expr.name)
            if layout.has(bare):
                return bare
            raise BindError(
                f"ORDER BY column {expr!r} must appear in the select list"
            )
        return self._bind_scalar(expr, scope, [])


def _split_covered(
    predicates: list[Expression], aliases: set[str], scope: _Scope
) -> tuple[list[Expression], list[Expression]]:
    covered = [p for p in predicates if scope.relations_of(p) <= aliases]
    rest = [p for p in predicates if scope.relations_of(p) - aliases]
    return covered, rest


def _fresh(name: str, used: set[str]) -> str:
    candidate = name
    suffix = 1
    while candidate in used:
        candidate = f"{name}_{suffix}"
        suffix += 1
    used.add(candidate)
    return candidate


def _default_name(expr: Expression) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, AggCall):
        return expr.func
    return "expr"


def _extract_aggs(
    expr: Expression,
    agg_map: dict[AggCall, str],
    group_keys: list[ColumnRef],
) -> Expression:
    """Replace AggCall nodes with references to generated aggregate columns
    and verify non-aggregate columns are grouping keys."""
    if isinstance(expr, AggCall):
        if expr not in agg_map:
            agg_map[expr] = f"__agg{len(agg_map)}"
        return ColumnRef(agg_map[expr])
    if isinstance(expr, ColumnRef):
        if not any(expr.matches(key) for key in group_keys):
            raise BindError(
                f"column {expr!r} must appear in GROUP BY or an aggregate"
            )
        return expr
    if isinstance(expr, Arithmetic):
        return Arithmetic(
            expr.op,
            _extract_aggs(expr.left, agg_map, group_keys),
            _extract_aggs(expr.right, agg_map, group_keys),
        )
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op,
            _extract_aggs(expr.left, agg_map, group_keys),
            _extract_aggs(expr.right, agg_map, group_keys),
        )
    return expr
