"""Interactive shell for the repro engine.

Run with ``python -m repro``.  Provides a psql-flavoured REPL over an
in-memory :class:`~repro.engine.Database`:

.. code-block:: text

    repro=# \\demo                     -- load the paper's orders demo
    repro=# SELECT avg(amount) FROM orders
            WHERE date BETWEEN '10-01-2013' AND '12-31-2013';
    repro=# \\explain SELECT ...       -- show the physical plan
    repro=# \\optimizer planner        -- switch to the legacy baseline
    repro=# \\d                        -- list tables
    repro=# \\q

The :class:`ReplSession` class holds all the logic and returns plain
strings, so it is unit-testable without a terminal.
"""

from __future__ import annotations

import datetime
import random
import re

from .engine import ORCA, PLANNER, Database
from .errors import ReproError
from .resilience import INJECTION_POINTS, TRIGGER_MODES

PROMPT = "repro=# "
CONTINUATION = "repro-# "

_HELP = """\
Meta commands:
  \\d                 list tables (name, rows, partitions, distribution)
  \\d NAME            describe one table
  \\demo              load the demo schema (paper Figures 1-4)
  \\explain SQL       show the physical plan for SQL
  \\optimizer [NAME]  show or switch the optimizer (orca | planner)
  \\timing            toggle per-query timing output
  \\health            show segment health (primaries, mirrors, failovers)
  \\stats             cumulative per-query statistics (calls, time, rows,
                     partitions scanned/eligible, retries, failovers)
  \\stats prometheus  the same store in Prometheus text format
  \\stats reset       clear the statistics store
  \\cache             cache counters (hits, misses, invalidations, bytes)
                     and the cached statements
  \\cache prometheus  the cache counters in Prometheus text format
  \\cache clear       drop every cached entry
  \\sessions          serving-tier sessions and admission state (with a
                     running server; \\stats prometheus then also emits
                     the repro_serving_* families)
  \\activity          in-flight queries (pg_stat_activity-style: id,
                     session, phase, elapsed, rows, partitions k/N)
  \\activity cancel ID cancel one in-flight query by its id
  \\checkpoint        take a durability checkpoint now (snapshot buckets,
                     truncate the WAL; needs --data-dir)
  \\wal               WAL/checkpoint status (records, bytes, sync mode,
                     last checkpoint LSN; needs --data-dir)
  \\help              this text
  \\q                 quit
SET statements configure the session:
  SET inject_fault POINT [segment=N] [mode=fail_once|fail_n|always]
                   [n=K] [skip=K] [transient];      arm a fault
  SET inject_fault off;                             disarm all faults
  SET timeout_seconds V;   SET timeout_seconds off; per-query timeout
  SET max_rows N;          SET max_rows off;        buffered-row budget
  SET workers N;           SET workers off;         parallel segment
                   execution on N worker threads (results identical to
                   serial; off = serial)
  SET batch_size N;        SET batch_size off;      vectorized batch
                   width (N >= 1; 1 or off = row-at-a-time; results
                   identical at any width)
  SET cache off|partitions|results;                 statement caching:
                   'partitions' replays partition-selector OID sets for
                   repeat statements, 'results' additionally serves repeat
                   SELECTs from cached results; DML invalidates entries
                   per touched partition (see docs/caching.md)
  SET slow_log SECONDS [PATH];  SET slow_log off;   structured slow-query
                   log: statements at/above the threshold append one JSON
                   line (phase timings, partition counters) to PATH
  SET wal sync|async;                               fsync the WAL on every
                   commit (sync, the default) or leave flushing to the OS
                   (async — faster, loses the tail on a machine crash)
SQL statements additionally support the EXPLAIN, EXPLAIN ANALYZE and
EXPLAIN (TRACE) prefixes (ANALYZE executes the query and annotates the
plan with per-node actual rows, partitions scanned and Motion traffic;
TRACE plans it under a tracer and shows the lifecycle span tree plus the
optimizer's search summary).
Everything else is executed as SQL (end with ';' or a blank line)."""

_EXPLAIN_RE = re.compile(
    r"^explain\b(?:\s+(analyze)\b|\s*\(\s*(trace)\s*\)|\s+(trace)\b)?(.*)$",
    re.IGNORECASE | re.DOTALL,
)
_SET_RE = re.compile(r"^set\s+(\w+)\b(.*)$", re.IGNORECASE | re.DOTALL)


class ReplSession:
    """State and command handling for one interactive session."""

    def __init__(self, db: Database | None = None, serving_session=None):
        self.db = db or Database(num_segments=4)
        #: when set (the ``--serve`` network mode, or tests), SQL routes
        #: through this :class:`~repro.serving.Session` — admission
        #: control, the shared worker pool, per-session fault scope —
        #: instead of calling :meth:`Database.sql` directly
        self.serving_session = serving_session
        self.optimizer = ORCA
        self.timing = False
        self.done = False
        #: count of statements that ended in an ERROR line — scripted
        #: invocations (``python -m repro < file.sql``) exit non-zero when
        #: any statement failed
        self.errors = 0
        #: session guardrails applied to every query
        self.timeout_seconds: float | None = None
        self.max_rows: int | None = None
        #: segment-scheduler pool size (None = the Database default, serial)
        self.workers: int | None = None
        #: vectorized batch width (None = the Database default)
        self.batch_size: int | None = None
        #: cache mode for every query (None = the Database default)
        self.cache: str | None = None
        self._buffer: list[str] = []

    # -- line protocol -----------------------------------------------------

    @property
    def prompt(self) -> str:
        return CONTINUATION if self._buffer else PROMPT

    def handle_line(self, line: str) -> str:
        """Process one input line; returns text to display (may be '')."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith("\\"):
            return self._meta(stripped)
        if not stripped and not self._buffer:
            return ""
        self._buffer.append(line)
        text = "\n".join(self._buffer).strip()
        if text.endswith(";") or not stripped:
            self._buffer.clear()
            return self._run_sql(text.rstrip(";"))
        return ""

    # -- meta commands ---------------------------------------------------------

    def _meta(self, command: str) -> str:
        name, _, argument = command.partition(" ")
        argument = argument.strip()
        if name in ("\\q", "\\quit"):
            self.done = True
            return "bye"
        if name in ("\\help", "\\?"):
            return _HELP
        if name == "\\d":
            return self._describe(argument)
        if name == "\\demo":
            return self._load_demo()
        if name == "\\explain":
            return self._explain(argument)
        if name == "\\optimizer":
            if argument:
                if argument not in (ORCA, PLANNER):
                    return f"unknown optimizer {argument!r} (orca | planner)"
                self.optimizer = argument
            return f"optimizer: {self.optimizer}"
        if name == "\\timing":
            self.timing = not self.timing
            return f"timing is {'on' if self.timing else 'off'}"
        if name == "\\health":
            status = self.db.health.status()
            lines = [
                "segment health:",
                f"  primaries: {' '.join(status['primaries'])}",
                f"  mirrors:   {' '.join(status['mirrors'])}",
                f"  failovers: {status['failover_count']}",
            ]
            if any(status["mirror_reads"]):
                lines.append(f"  mirror reads: {status['mirror_reads']}")
            return "\n".join(lines)
        if name == "\\stats":
            return self._stats(argument)
        if name == "\\cache":
            return self._cache(argument)
        if name == "\\sessions":
            return self._sessions()
        if name == "\\activity":
            return self._activity(argument)
        if name == "\\checkpoint":
            return self._checkpoint()
        if name == "\\wal":
            return self._wal()
        return f"unknown command {name!r}; try \\help"

    def _checkpoint(self) -> str:
        """``\\checkpoint`` — snapshot every segment's buckets and (when
        all copies are caught up) truncate the WAL."""
        try:
            summary = self.db.checkpoint()
        except ReproError as exc:
            return self._error(exc)
        truncated = "truncated" if summary["wal_truncated"] else "kept"
        return (
            f"checkpoint at lsn {summary['lsn']}: "
            f"{summary['bytes']} B in {summary['seconds'] * 1000:.2f} ms, "
            f"wal {truncated}"
        )

    def _wal(self) -> str:
        """``\\wal`` — the durability subsystem's WAL/checkpoint status."""
        manager = self.db.durability
        if manager is None:
            return "durability is off (start with --data-dir PATH)"
        stats = manager.stats_dict()
        lines = [
            f"wal ({stats['wal_sync']}): {stats['wal_records']} records, "
            f"{stats['wal_bytes']} B appended, "
            f"{manager.wal_size_bytes()} B on disk, "
            f"{stats['wal_fsyncs']} fsyncs",
            f"checkpoints: {stats['checkpoints']} "
            f"(last at lsn {stats['last_checkpoint_lsn']}, "
            f"{stats['last_checkpoint_bytes']} B), "
            f"{stats['wal_truncations']} truncations",
        ]
        if stats["recovery_replayed_records"] or stats["resync_replayed_records"]:
            lines.append(
                f"replay: {stats['recovery_replayed_records']} records at "
                f"restart, {stats['resync_replayed_records']} into "
                "rejoining copies"
            )
        resyncing = self.db.health.resyncing_segments
        if resyncing:
            lines.append(f"resyncing segments: {resyncing}")
        return "\n".join(lines)

    def _activity(self, argument: str) -> str:
        """``\\activity`` — the live in-flight registry; ``\\activity
        cancel ID`` cancels one query by its id."""
        if not argument:
            return self.db.live.activity.render()
        action, _, raw_id = argument.partition(" ")
        if action.lower() != "cancel":
            return "usage: \\activity [cancel ID]"
        try:
            query_id = int(raw_id.strip())
        except ValueError:
            return f"ERROR (sql): invalid query id {raw_id.strip()!r}"
        if self.db.cancel_query(query_id):
            return f"cancel requested for query {query_id}"
        return (
            f"no cancellable in-flight query with id {query_id} "
            "(only queries running with a cancel token can be cancelled)"
        )

    def _stats(self, argument: str) -> str:
        store = self.db.stats()
        cache = self.db.cache
        if not argument:
            text = store.render()
            totals = cache.stats_dict()
            mode = self.cache if self.cache is not None else cache.config.mode
            if totals["hits"] or totals["misses"] or totals["bytes"]:
                text += (
                    f"\ncache ({mode}): {totals['hits']} hits, "
                    f"{totals['misses']} misses, "
                    f"{totals['invalidations']} invalidations, "
                    f"{totals['bytes']} B cached (\\cache for detail)"
                )
            return text
        if argument.lower() == "reset":
            store.reset()
            return "query statistics reset"
        if argument.lower() == "prometheus":
            # the one consolidated scrape body (identical to GET /metrics):
            # query stats, cache, serving (while a server runs), live
            from .obs.prom import export_prometheus

            return export_prometheus(self.db)
        return "usage: \\stats [reset | prometheus]"

    def _sessions(self) -> str:
        """``\\sessions`` — the serving tier's sessions and admission
        state (requires a running server, i.e. ``Database.serve()``)."""
        server = self.db._server
        if server is None or server.closed:
            return "no server running (Database.serve() starts one)"
        snapshot = server.stats_dict()
        admission = snapshot["admission"]
        rejected = admission["rejected"]
        lines = [
            f"serving: {admission['inflight']} in flight, "
            f"{admission['queue_depth']} queued, "
            f"{admission['admitted']} admitted, "
            f"{sum(rejected.values())} rejected "
            f"(full={rejected['queue_full']}, "
            f"timeout={rejected['queue_timeout']}), "
            f"{admission['degraded_grants']} degraded grants",
        ]
        if not snapshot["open_sessions"]:
            lines.append("no open sessions")
            return "\n".join(lines)
        lines.append(
            f"{'session':<16} {'inflight':>8} {'submitted':>9} "
            f"{'admitted':>8} {'rejected':>8} {'p50 ms':>8} {'p99 ms':>8}"
        )
        latency = snapshot["latency"]
        for name in sorted(snapshot["open_sessions"]):
            counters = snapshot["open_sessions"][name]
            quantiles = latency.get(name, {"p50_s": 0.0, "p99_s": 0.0})
            lines.append(
                f"{name:<16} {counters['inflight']:>8} "
                f"{counters['submitted']:>9} {counters['admitted']:>8} "
                f"{counters['rejected']:>8} "
                f"{quantiles['p50_s'] * 1000:>8.2f} "
                f"{quantiles['p99_s'] * 1000:>8.2f}"
            )
        return "\n".join(lines)

    def _cache(self, argument: str) -> str:
        manager = self.db.cache
        if not argument:
            mode = self.cache if self.cache is not None else manager.config.mode
            return f"session cache mode: {mode}\n{manager.render()}"
        if argument.lower() == "clear":
            dropped = manager.clear()
            return f"cache cleared ({dropped} entries dropped)"
        if argument.lower() == "prometheus":
            return manager.to_prometheus()
        return "usage: \\cache [clear | prometheus]"

    def _describe(self, name: str) -> str:
        if name:
            try:
                table = self.db.catalog.table(name)
            except ReproError as exc:
                return str(exc)
            lines = [f"Table {table.name} (oid {table.oid})"]
            for column in table.schema:
                lines.append(f"  {column.name:<20} {column.data_type}")
            lines.append(f"  distribution: {table.distribution!r}")
            if table.is_partitioned:
                scheme = table.partition_scheme
                lines.append(
                    f"  partitioned: {scheme!r} ({table.num_leaves} leaves)"
                )
            return "\n".join(lines)
        tables = list(self.db.catalog.tables())
        if not tables:
            return "no tables (try \\demo)"
        lines = ["tables:"]
        for table in tables:
            stats = self.db.statistics.get(table)
            parts = f", {table.num_leaves} parts" if table.is_partitioned else ""
            lines.append(
                f"  {table.name:<20} ~{stats.row_count} rows{parts}"
            )
        return "\n".join(lines)

    def _error(self, exc: ReproError) -> str:
        """Render a failed statement: ``ERROR (<stage>): <message>``.

        The stage comes from the error class (sql, bind, optimizer,
        execution, ...) so a user can tell a parse failure from a runtime
        one without a traceback."""
        self.errors += 1
        stage = getattr(exc, "stage", "engine")
        return f"ERROR ({stage}): {exc}"

    def _explain(self, sql: str) -> str:
        if not sql:
            return "usage: \\explain SELECT ..."
        try:
            return self.db.explain(sql.rstrip(";"), optimizer=self.optimizer)
        except ReproError as exc:
            return self._error(exc)

    def _run_sql(self, sql: str) -> str:
        if not sql:
            return ""
        explain = _EXPLAIN_RE.match(sql.strip())
        if explain is not None:
            body = explain.group(4).strip().rstrip(";")
            if not body:
                return "usage: EXPLAIN [ANALYZE | (TRACE)] SELECT ..."
            try:
                if explain.group(1):
                    # ANALYZE executes the query, so session guardrails
                    # apply just as they do to a plain statement.
                    return self.db.explain_analyze(
                        body,
                        optimizer=self.optimizer,
                        timeout=self.timeout_seconds,
                        max_rows=self.max_rows,
                        workers=self.workers,
                        batch_size=self.batch_size,
                        cache=self.cache,
                    )
                if explain.group(2) or explain.group(3):
                    return self.db.explain_trace(body, optimizer=self.optimizer)
                return self.db.explain(body, optimizer=self.optimizer)
            except ReproError as exc:
                return self._error(exc)
        setting = _SET_RE.match(sql.strip())
        if setting is not None:
            output = self._set(setting.group(1).lower(), setting.group(2).strip())
            if output.startswith("ERROR"):
                # _set renders its own ERROR lines (they never raise), but a
                # failed SET must still fail a scripted run.
                self.errors += 1
            return output
        try:
            if self.serving_session is not None:
                result = self.serving_session.sql(
                    sql,
                    optimizer=self.optimizer,
                    timeout=self.timeout_seconds,
                    max_rows=self.max_rows,
                    workers=self.workers,
                    batch_size=self.batch_size,
                    cache=self.cache,
                )
            else:
                result = self.db.sql(
                    sql,
                    optimizer=self.optimizer,
                    timeout=self.timeout_seconds,
                    max_rows=self.max_rows,
                    workers=self.workers,
                    batch_size=self.batch_size,
                    cache=self.cache,
                )
        except ReproError as exc:
            return self._error(exc)
        lines = []
        if result.column_names:
            lines.append(" | ".join(result.column_names))
        for row in result.rows[:50]:
            lines.append(" | ".join(_render(value) for value in row))
        if len(result.rows) > 50:
            lines.append(f"... ({len(result.rows)} rows total)")
        else:
            lines.append(f"({len(result.rows)} rows)")
        scanned = result.metrics.partitions_scanned()
        if scanned:
            lines.append(f"partitions scanned: {scanned}")
        if result.metrics.retry_count or result.metrics.failover_count:
            lines.append(
                f"resilience: {result.metrics.retry_count} retries, "
                f"{result.metrics.failover_count} failovers"
            )
        if self.timing:
            lines.append(f"time: {result.elapsed_seconds * 1000:.2f} ms")
        return "\n".join(lines)

    # -- SET statements ------------------------------------------------------

    def _set(self, name: str, argument: str) -> str:
        argument = argument.rstrip(";").strip()
        if argument.startswith("="):
            argument = argument[1:].strip()
        if name == "inject_fault":
            return self._set_inject_fault(argument)
        if name == "timeout_seconds":
            if argument.lower() in ("off", "none", ""):
                self.timeout_seconds = None
                return "timeout_seconds is off"
            try:
                value = float(argument)
            except ValueError:
                return f"ERROR (sql): invalid timeout_seconds {argument!r}"
            self.timeout_seconds = value
            return f"timeout_seconds is {value}"
        if name == "max_rows":
            if argument.lower() in ("off", "none", ""):
                self.max_rows = None
                return "max_rows is off"
            try:
                value = int(argument)
            except ValueError:
                return f"ERROR (sql): invalid max_rows {argument!r}"
            self.max_rows = value
            return f"max_rows is {value}"
        if name == "workers":
            if argument.lower() in ("off", "none", "serial", ""):
                self.workers = None
                return "workers is off (serial execution)"
            try:
                value = int(argument)
            except ValueError:
                return f"ERROR (sql): invalid workers {argument!r}"
            if value < 1:
                return "ERROR (sql): workers must be >= 1"
            self.workers = value
            return f"workers is {value}"
        if name == "batch_size":
            if argument.lower() in ("off", "none", "default", ""):
                self.batch_size = None
                return "batch_size follows the database default"
            try:
                value = int(argument)
            except ValueError:
                return f"ERROR (sql): invalid batch_size {argument!r}"
            if value < 1:
                return "ERROR (sql): batch_size must be >= 1"
            self.batch_size = value
            return f"batch_size is {value}"
        if name == "cache":
            from .cache import CACHE_MODES

            value = argument.lower()
            if value in ("none", "default", ""):
                self.cache = None
                return "cache follows the database default"
            if value not in CACHE_MODES:
                return (
                    f"ERROR (sql): unknown cache mode {argument!r} "
                    f"(one of: {', '.join(CACHE_MODES)})"
                )
            self.cache = value
            return f"cache is {value}"
        if name == "slow_log":
            return self._set_slow_log(argument)
        if name == "wal":
            return self._set_wal(argument)
        return f"ERROR (sql): unknown setting {name!r}"

    def _set_wal(self, argument: str) -> str:
        """``SET wal sync|async`` — fsync the WAL on every commit, or
        leave flushing to the OS page cache."""
        from .durability import ASYNC, SYNC

        manager = self.db.durability
        if manager is None:
            return (
                "ERROR (durability): durability is off "
                "(start with --data-dir PATH)"
            )
        value = argument.lower()
        if value not in (SYNC, ASYNC):
            return f"ERROR (sql): invalid wal mode {argument!r} (sync | async)"
        manager.wal_sync = value
        return f"wal is {value}"

    def _set_slow_log(self, argument: str) -> str:
        """``SET slow_log SECONDS [PATH]`` enables the structured
        slow-query log (JSONL, rotated); ``SET slow_log off`` disables
        it.  The sink is database-wide (every session's statements are
        eligible), matching ``log_min_duration_statement`` semantics."""
        slow_log = self.db.live.slow_log
        if not argument or argument.lower() in ("off", "none"):
            slow_log.configure(threshold_s=None)
            return "slow_log is off"
        words = argument.split(None, 1)
        try:
            threshold = float(words[0])
        except ValueError:
            return f"ERROR (sql): invalid slow_log threshold {words[0]!r}"
        path = words[1].strip() if len(words) > 1 else slow_log.path
        if path is None:
            return (
                "ERROR (sql): slow_log needs a sink "
                "(SET slow_log SECONDS PATH)"
            )
        slow_log.configure(threshold_s=threshold, path=path)
        return f"slow_log is {threshold}s -> {path}"

    def _set_inject_fault(self, argument: str) -> str:
        """``SET inject_fault POINT [segment=N] [mode=M] [n=K] [skip=K]
        [transient]`` — or ``SET inject_fault off`` to disarm.

        With a serving session attached, faults arm on that session's
        isolated injector — other sessions' queries never see them."""
        faults = (
            self.serving_session.faults
            if self.serving_session is not None
            else self.db.faults
        )
        if not argument:
            specs = faults.specs()
            if not specs:
                return "no faults armed"
            return "\n".join(f"armed: {spec}" for spec in specs)
        words = argument.split()
        if words[0].lower() in ("off", "reset", "none"):
            faults.disarm()
            return "faults disarmed"
        point = words[0].lower()
        if point not in INJECTION_POINTS:
            return (
                f"ERROR (sql): unknown injection point {point!r} "
                f"(one of: {', '.join(sorted(INJECTION_POINTS))})"
            )
        kwargs: dict = {}
        for word in words[1:]:
            key, eq, value = word.partition("=")
            key = key.lower()
            if not eq:
                if key == "transient":
                    kwargs["transient"] = True
                    continue
                return f"ERROR (sql): malformed fault option {word!r}"
            if key == "segment":
                try:
                    kwargs["segment"] = int(value)
                except ValueError:
                    return f"ERROR (sql): invalid segment {value!r}"
            elif key == "mode":
                if value.lower() not in TRIGGER_MODES:
                    return (
                        f"ERROR (sql): unknown mode {value!r} "
                        f"(one of: {', '.join(sorted(TRIGGER_MODES))})"
                    )
                kwargs["mode"] = value.lower()
            elif key in ("n", "skip"):
                try:
                    kwargs[key] = int(value)
                except ValueError:
                    return f"ERROR (sql): invalid {key} {value!r}"
            else:
                return f"ERROR (sql): unknown fault option {key!r}"
        spec = faults.arm(point, **kwargs)
        return f"armed: {spec}"

    def _load_demo(self) -> str:
        from .catalog import (
            DistributionPolicy,
            PartitionScheme,
            TableSchema,
            monthly_range_level,
            uniform_int_level,
        )
        from . import types as t

        if self.db.catalog.has_table("orders"):
            return "demo already loaded"
        self.db.create_table(
            "orders",
            TableSchema.of(
                ("order_id", t.INT), ("amount", t.FLOAT), ("date", t.DATE)
            ),
            distribution=DistributionPolicy.hashed("order_id"),
            partition_scheme=PartitionScheme(
                [monthly_range_level("date", datetime.date(2012, 1, 1), 24)]
            ),
        )
        self.db.create_table(
            "date_dim",
            TableSchema.of(
                ("date_id", t.INT), ("year", t.INT), ("month", t.INT)
            ),
            distribution=DistributionPolicy.hashed("date_id"),
        )
        self.db.create_table(
            "orders_fk",
            TableSchema.of(
                ("order_id", t.INT), ("amount", t.FLOAT), ("date_id", t.INT)
            ),
            distribution=DistributionPolicy.hashed("order_id"),
            partition_scheme=PartitionScheme(
                [uniform_int_level("date_id", 0, 730, 24)]
            ),
        )
        rng = random.Random(2014)
        start = datetime.date(2012, 1, 1)
        self.db.insert(
            "orders",
            (
                (
                    i,
                    round(rng.uniform(5, 500), 2),
                    start + datetime.timedelta(days=rng.randrange(730)),
                )
                for i in range(5000)
            ),
        )
        self.db.insert(
            "date_dim",
            (
                (
                    offset,
                    (start + datetime.timedelta(days=offset)).year,
                    (start + datetime.timedelta(days=offset)).month,
                )
                for offset in range(730)
            ),
        )
        self.db.insert(
            "orders_fk",
            (
                (i, round(rng.uniform(5, 500), 2), rng.randrange(730))
                for i in range(5000)
            ),
        )
        self.db.analyze()
        return (
            "loaded: orders (24 monthly parts), orders_fk (24 parts on "
            "date_id), date_dim — try:\n"
            "  SELECT avg(amount) FROM orders WHERE date BETWEEN "
            "'10-01-2013' AND '12-31-2013';"
        )


def _render(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def serve_main(argv: list[str]) -> int:  # pragma: no cover - network loop
    """``python -m repro --serve [PORT] [--metrics-port N] [--data-dir D]``
    — the multi-client TCP mode.

    Each connection gets its own REPL over its own serving session; all
    connections share one database through admission control.
    ``--metrics-port`` additionally binds the HTTP scrape sidecar
    (``/metrics``, ``/healthz``, ``/activity``) and starts the live
    telemetry ticker.  ``--data-dir`` enables the durability subsystem:
    the WAL and checkpoints live under that directory and a restart with
    the same path recovers the previous state (docs/durability.md)."""
    import sys

    from .serving import NetServer

    port = 0
    metrics_port: int | None = None
    data_dir: str | None = None
    positional: list[str] = []
    words = list(argv)
    while words:
        word = words.pop(0)
        if word in ("--metrics-port", "--data-dir"):
            if not words:
                print(f"{word} needs a value", file=sys.stderr)
                return 2
            word = f"{word}={words.pop(0)}"
        if word.startswith("--metrics-port="):
            try:
                metrics_port = int(word.split("=", 1)[1])
            except ValueError:
                print(f"invalid metrics port {word!r}", file=sys.stderr)
                return 2
        elif word.startswith("--data-dir="):
            data_dir = word.split("=", 1)[1]
            if not data_dir:
                print("--data-dir needs a value", file=sys.stderr)
                return 2
        else:
            positional.append(word)
    if positional:
        try:
            port = int(positional[0])
        except ValueError:
            print(f"invalid port {positional[0]!r}", file=sys.stderr)
            return 2
    db = Database(num_segments=4, data_dir=data_dir)
    server = NetServer(db, port=port).start()
    print(
        f"repro serving on {server.host}:{server.port} "
        "(newline-delimited REPL lines; \\x04 frames responses; Ctrl-C stops)"
    )
    scrape = None
    if metrics_port is not None:
        scrape = db.serve_scrape(port=metrics_port)
        print(
            f"repro scrape endpoints on {scrape.address} "
            "(/metrics /healthz /activity)"
        )
    try:
        while True:
            server._accept_thread.join(timeout=1.0)
            if not server._accept_thread.is_alive():
                break
    except KeyboardInterrupt:
        print()
    finally:
        if scrape is not None:
            scrape.close()
        server.close()
        server.server.close()
    return 0


def main() -> int:  # pragma: no cover - interactive loop
    import sys

    if len(sys.argv) > 1 and sys.argv[1] == "--serve":
        return serve_main(sys.argv[2:])
    data_dir: str | None = None
    words = sys.argv[1:]
    while words:
        word = words.pop(0)
        if word == "--data-dir":
            if not words:
                print("--data-dir needs a value", file=sys.stderr)
                return 2
            word = f"--data-dir={words.pop(0)}"
        if word.startswith("--data-dir="):
            data_dir = word.split("=", 1)[1]
            if not data_dir:
                print("--data-dir needs a value", file=sys.stderr)
                return 2
        else:
            print(f"unknown argument {word!r}", file=sys.stderr)
            return 2
    session = ReplSession(
        Database(num_segments=4, data_dir=data_dir) if data_dir else None
    )
    interactive = sys.stdin.isatty()
    if interactive:
        print("repro shell — \\help for commands, \\demo for sample data")
    while not session.done:
        try:
            line = input(session.prompt if interactive else "")
        except (EOFError, KeyboardInterrupt):
            if interactive:
                print()
            break
        output = session.handle_line(line)
        if output:
            print(output)
    # Scripted runs (stdin not a tty) signal failure to the caller; the
    # interactive shell already showed each ERROR line.
    if not interactive and session.errors:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
