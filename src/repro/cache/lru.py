"""Bounded, thread-safe LRU store shared by both caches.

Both the partition-selection cache and the result cache are maps from
:class:`~repro.cache.keys.StatementKey` to an immutable entry, bounded two
ways: a maximum entry count and a maximum byte budget (entries carry their
own size estimate).  Eviction is least-recently-*used*: a ``get`` hit
refreshes recency, a ``put`` inserts at the young end and evicts from the
old end until both bounds hold.

Invalidation walks every entry with a caller-supplied predicate.  That is
O(entries), which the bounds keep small by construction — the point of
this cache is a handful of hot fingerprints, not an unbounded statement
history.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Generic, Iterator, TypeVar

from .keys import StatementKey

E = TypeVar("E")


class CacheStats:
    """Monotonic counters one cache exposes (snapshot via :meth:`to_dict`)."""

    __slots__ = ("hits", "misses", "invalidations", "evictions", "stores")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.stores = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "stores": self.stores,
        }


class LruCache(Generic[E]):
    """StatementKey -> entry, LRU-bounded by entries and bytes."""

    def __init__(self, max_entries: int, max_bytes: int):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[StatementKey, E] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # Subclass hook: the byte size of one entry.
    @staticmethod
    def entry_bytes(entry: E) -> int:  # pragma: no cover - overridden
        return 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def get(self, key: StatementKey) -> E | None:
        """Counted lookup: refreshes recency on hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def peek(self, key: StatementKey) -> E | None:
        """Uncounted lookup (no recency change) — for tests and views."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: StatementKey, entry: E) -> None:
        size = self.entry_bytes(entry)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= self.entry_bytes(old)
            self._entries[key] = entry
            self._bytes += size
            self.stats.stores += 1
            while self._entries and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                victim_key, victim = self._entries.popitem(last=False)
                self._bytes -= self.entry_bytes(victim)
                self.stats.evictions += 1
                if victim_key == key:
                    break  # the new entry itself exceeded the byte budget

    def invalidate_where(self, predicate: Callable[[E], bool]) -> int:
        """Drop every entry the predicate matches; returns the count."""
        with self._lock:
            victims = [
                key
                for key, entry in self._entries.items()
                if predicate(entry)
            ]
            for key in victims:
                entry = self._entries.pop(key)
                self._bytes -= self.entry_bytes(entry)
            self.stats.invalidations += len(victims)
            return len(victims)

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            self.stats.invalidations += count
            return count

    def items(self) -> Iterator[tuple[StatementKey, E]]:
        """Snapshot of (key, entry) pairs, oldest first."""
        with self._lock:
            return iter(list(self._entries.items()))

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                **self.stats.to_dict(),
            }
