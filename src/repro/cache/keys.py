"""Cache keys: the contract that makes caching sound.

:func:`repro.obs.stats_store.fingerprint` deliberately erases literal
*values* — ``WHERE a = 42`` and ``WHERE a = 99`` share one fingerprint so
``pg_stat_statements``-style aggregation works.  A cache must never make
that identification: the two statements select different partition OID
sets and return different rows.  The cache-key contract is therefore

    **fingerprint + normalized literal vector + parameter vector
    + plan-shaping options (optimizer, selector lowering)**

realised by :class:`StatementKey`.  Two statements share a key iff they
lex to the same token shape *and* every literal and parameter value is
identical *and* they are planned the same way — which is exactly the
condition under which the engine produces the same physical plan with the
same ``part_scan_id`` assignment and the same partition OID sets.

Literals are normalized to ``(kind, repr(value))`` pairs so ``'05-15-2013'``
(a string that later coerces to a date) and ``05152013`` (a number) can
never collide, and so unhashable raw values are impossible by
construction.  Statements that do not lex fall back to the
whitespace-collapsed statement text as a single opaque literal — never a
shared key with a different statement.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Sequence

from ..errors import ReproError
from ..sql import lexer
from ..obs.stats_store import fingerprint


class StatementKey(NamedTuple):
    """One cacheable statement identity (hashable, order-stable)."""

    fingerprint: str
    literals: tuple[str, ...]
    params: tuple[str, ...]
    optimizer: str
    lowered: bool

    def describe(self) -> str:
        """Short human-readable form for logs and the ``\\cache`` view."""
        text = self.fingerprint
        if len(text) > 48:
            text = text[:45] + "..."
        extras = []
        if self.literals:
            extras.append(f"{len(self.literals)} literal(s)")
        if self.params:
            extras.append(f"{len(self.params)} param(s)")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        return f"{text}{suffix}"


def normalized_literals(query: str) -> tuple[str, ...]:
    """The statement's literal vector, in token order.

    Every value the fingerprint erased comes back here, tagged with its
    token kind: ``NUMBER:42``, ``STRING:'05-15-2013'``.  Identifiers,
    keywords and parameters are not literals and do not contribute.
    """
    try:
        tokens = lexer.tokenize(query)
    except ReproError:
        # Unlexable statements key on their collapsed text: no token shape
        # means no literal positions, so the whole text is the "literal".
        return ("RAW:" + " ".join(query.split()),)
    literals: list[str] = []
    for token in tokens:
        if token.kind == lexer.EOF:
            break
        if token.kind in (lexer.NUMBER, lexer.STRING):
            literals.append(f"{token.kind}:{token.value!r}")
    return tuple(literals)


def _normalize_param(value: Any) -> str:
    """One parameter value, type-tagged like a literal so ``1`` (int),
    ``1.0`` (float) and ``'1'`` (str) never collide."""
    return f"{type(value).__name__}:{value!r}"


def statement_key(
    query: str,
    params: Sequence[Any] | None = None,
    optimizer: str = "orca",
    lowered: bool = False,
) -> StatementKey:
    """Build the cache key for one statement execution."""
    return StatementKey(
        fingerprint=fingerprint(query),
        literals=normalized_literals(query),
        params=tuple(
            _normalize_param(value) for value in (params or ())
        ),
        optimizer=optimizer,
        lowered=bool(lowered),
    )
