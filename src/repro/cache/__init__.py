"""Fingerprint-keyed partition-selection and result caching.

The paper's core win is pruning partitions at plan/run time; for heavy
repeated traffic the next lever is not re-deriving that pruning on every
call.  This package joins the two halves the engine already has — the
statement fingerprints of :mod:`repro.obs.stats_store` and the partition
OID sets the executor computes per DynamicScan — into two caches with
DML-driven, partition-scoped invalidation:

* :class:`PartitionSelectionCache` — replays selector OID sets, skipping
  selector-program evaluation on repeat statements (``cache='partitions'``).
* :class:`ResultCache` — whole result sets for repeat SELECTs
  (``cache='results'``).

Both are keyed by :class:`StatementKey` — fingerprint **plus** normalized
literal and parameter vectors plus plan-shaping options — so a cached OID
set is never reused across different constants (see keys.py for the
contract).  :class:`CacheManager` owns both, listens to storage mutations
and guards in-flight executions with a mutation epoch.  Design notes and
knobs: ``docs/caching.md``.
"""

from .keys import StatementKey, normalized_literals, statement_key
from .lru import CacheStats, LruCache
from .manager import (
    CACHE_MODES,
    CacheConfig,
    CacheManager,
    CacheSession,
    classify_plan,
    result_footprint,
)
from .partition_cache import PartitionSelectionCache, SelectionEntry
from .result_cache import ResultCache, ResultEntry

__all__ = [
    "CACHE_MODES",
    "CacheConfig",
    "CacheManager",
    "CacheSession",
    "CacheStats",
    "LruCache",
    "PartitionSelectionCache",
    "ResultCache",
    "ResultEntry",
    "SelectionEntry",
    "StatementKey",
    "classify_plan",
    "normalized_literals",
    "result_footprint",
    "statement_key",
]
