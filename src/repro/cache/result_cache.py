"""Whole-result caching with partition-scoped DML invalidation.

A :class:`ResultEntry` stores the rows and column names one SELECT
produced, plus the **footprint** that makes invalidation sound: for every
table the plan referenced, the set of leaf partition OIDs the execution
actually opened — or ``None`` meaning the whole table (unpartitioned
scans, full scans, or any case where per-partition attribution is not
available).  DML into partition ``P`` of table ``T`` drops exactly the
entries whose footprint for ``T`` is ``None`` or intersects ``P``; DML on
a table outside the footprint leaves the entry alone.

The footprint over-approximates sensitivity in one direction only (an
empty-but-selected partition is *in* the footprint, because the
DynamicScan opened it), so a cached result is never served after a write
that could have changed it.  Rows are stored as an immutable tuple of
tuples; readers receive fresh list copies.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .keys import StatementKey
from .lru import LruCache

_ENTRY_OVERHEAD = 256


def _rows_bytes(rows: Sequence[tuple]) -> int:
    """Same cheap estimate the Motion byte counters use."""
    return sum(
        sum(len(repr(value)) for value in row) + 8 * len(row)
        for row in rows
    )


class ResultEntry:
    """One cached result set and its invalidation footprint."""

    __slots__ = ("key", "rows", "column_names", "footprint", "size_bytes")

    def __init__(
        self,
        key: StatementKey,
        rows: Sequence[tuple],
        column_names: Sequence[str],
        footprint: Mapping[int, frozenset[int] | None],
    ):
        self.key = key
        self.rows: tuple[tuple, ...] = tuple(tuple(row) for row in rows)
        self.column_names = tuple(column_names)
        #: root OID -> opened leaf OIDs, or None = whole-table sensitivity
        self.footprint: dict[int, frozenset[int] | None] = {
            oid: (None if leaves is None else frozenset(leaves))
            for oid, leaves in footprint.items()
        }
        self.size_bytes = _ENTRY_OVERHEAD + _rows_bytes(self.rows)

    def stale_after(
        self, root_oid: int, leaf_oids: frozenset[int] | None
    ) -> bool:
        if root_oid not in self.footprint:
            return False
        scoped = self.footprint[root_oid]
        if scoped is None or leaf_oids is None:
            return True
        return bool(scoped & leaf_oids)

    def __repr__(self) -> str:
        return (
            f"ResultEntry({self.key.describe()}, {len(self.rows)} rows, "
            f"{self.size_bytes} B)"
        )


class ResultCache(LruCache[ResultEntry]):
    """StatementKey -> :class:`ResultEntry`, LRU + byte bounded."""

    @staticmethod
    def entry_bytes(entry: ResultEntry) -> int:
        return entry.size_bytes

    def store(self, entry: ResultEntry) -> None:
        self.put(entry.key, entry)

    def invalidate(
        self, root_oid: int, leaf_oids: frozenset[int] | None
    ) -> int:
        return self.invalidate_where(
            lambda entry: entry.stale_after(root_oid, leaf_oids)
        )
