"""The cache manager: one per Database, owning both caches.

The manager ties the pieces together:

* It owns the :class:`~repro.cache.partition_cache.PartitionSelectionCache`
  and :class:`~repro.cache.result_cache.ResultCache` and their shared
  configuration (:class:`CacheConfig`).
* It subscribes to storage mutations
  (:meth:`~repro.storage.StorageManager.add_mutation_listener`): every
  INSERT/UPDATE/DELETE/TRUNCATE event carries the target root OID and the
  touched leaf OIDs, bumps the global **mutation epoch**, and drops exactly
  the entries the event stales (the partition-intersection rule).
* Each query execution runs against a :class:`CacheSession` that captures
  the epoch at statement start.  A freshly computed entry is committed only
  if the epoch is unchanged — a DML racing the execution silently turns the
  store into a no-op, so a cache can never hold results derived from a
  half-mutated table.  DML statements bump the epoch through their own
  writes, which also keeps them from poisoning their own session.

Cache modes (per query, defaulting to the Database-level setting):

* ``off`` — no lookups, no stores.
* ``partitions`` — cache partition-selector OID sets only: a hit skips
  building and evaluating the selector programs (the dominant cost for
  wide IN-lists over many partitions) but re-runs the scans, so answers
  always reflect current table contents.
* ``results`` — additionally cache whole result sets; a hit skips
  execution entirely.  Only SELECT statements are ever cached.

Invalidation classification (details in partition_cache.py): tables whose
selectors *target* them are ``scoped`` (invalidated only by DML whose leaf
set intersects the cached OID set — selection is data-independent of the
target's own rows); every other table read by the plan is ``volatile``
(its rows drive selection, so any DML on it drops the entry).
"""

from __future__ import annotations

import threading
from typing import Mapping, Sequence

from ..physical import ops as phys
from .keys import StatementKey
from .partition_cache import PartitionSelectionCache, SelectionEntry
from .result_cache import ResultCache, ResultEntry

CACHE_MODES = ("off", "partitions", "results")


class CacheConfig:
    """Bounds and the Database-level default mode."""

    __slots__ = (
        "mode",
        "max_entries",
        "max_bytes",
        "result_max_entries",
        "result_max_bytes",
    )

    def __init__(
        self,
        mode: str = "off",
        max_entries: int = 256,
        max_bytes: int = 8 * 1024 * 1024,
        result_max_entries: int = 128,
        result_max_bytes: int = 32 * 1024 * 1024,
    ):
        if mode not in CACHE_MODES:
            raise ValueError(
                f"unknown cache mode {mode!r} (expected one of {CACHE_MODES})"
            )
        self.mode = mode
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.result_max_entries = result_max_entries
        self.result_max_bytes = result_max_bytes


class CacheManager:
    """Both caches plus the mutation epoch that keeps them sound."""

    def __init__(self, config: CacheConfig | None = None):
        self.config = config if config is not None else CacheConfig()
        self.partitions = PartitionSelectionCache(
            self.config.max_entries, self.config.max_bytes
        )
        self.results = ResultCache(
            self.config.result_max_entries, self.config.result_max_bytes
        )
        #: bumped by every storage mutation; commit-time guard for sessions
        self._epoch = 0
        self._lock = threading.Lock()

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def resolve_mode(self, mode: str | None) -> str:
        """Per-query mode, falling back to the Database-level default."""
        if mode is None:
            return self.config.mode
        if mode not in CACHE_MODES:
            raise ValueError(
                f"unknown cache mode {mode!r} (expected one of {CACHE_MODES})"
            )
        return mode

    # -- mutation path -------------------------------------------------------

    def on_mutation(
        self, root_oid: int, leaf_oids: frozenset[int] | None
    ) -> None:
        """One DML/TRUNCATE event: ``leaf_oids`` are the touched leaf
        partitions, ``None`` means the whole table (truncate, drop,
        unpartitioned target).  Bumps the epoch *first* so in-flight
        sessions refuse to commit, then drops stale entries."""
        with self._lock:
            self._epoch += 1
        self.partitions.invalidate(root_oid, leaf_oids)
        self.results.invalidate(root_oid, leaf_oids)

    def clear(self) -> int:
        """Drop everything (``\\cache clear``); returns entries dropped."""
        with self._lock:
            self._epoch += 1
        return self.partitions.clear() + self.results.clear()

    # -- query path ----------------------------------------------------------

    def begin(
        self, key: StatementKey, mode: str, lookup: bool = True
    ) -> "CacheSession":
        """Open the session one statement execution runs against.
        ``lookup=False`` skips the selection-cache probe (the result-hit
        path, which never executes selectors)."""
        return CacheSession(self, key, self.resolve_mode(mode), lookup)

    def lookup_result(self, key: StatementKey) -> ResultEntry | None:
        return self.results.get(key)

    def commit_selection(
        self, session: "CacheSession", entry: SelectionEntry
    ) -> bool:
        """Store a freshly computed selection entry unless a mutation
        landed since the session began (the TOCTOU guard)."""
        with self._lock:
            if session.epoch != self._epoch:
                return False
        self.partitions.store(entry)
        return True

    def commit_result(
        self, session: "CacheSession", entry: ResultEntry
    ) -> bool:
        with self._lock:
            if session.epoch != self._epoch:
                return False
        self.results.store(entry)
        return True

    # -- exports -------------------------------------------------------------

    def stats_dict(self) -> dict:
        partitions = self.partitions.to_dict()
        results = self.results.to_dict()
        return {
            "mode": self.config.mode,
            "epoch": self.epoch,
            "hits": partitions["hits"] + results["hits"],
            "misses": partitions["misses"] + results["misses"],
            "invalidations": (
                partitions["invalidations"] + results["invalidations"]
            ),
            "bytes": partitions["bytes"] + results["bytes"],
            "partitions": partitions,
            "results": results,
        }

    def prom_families(self) -> list:
        """The ``repro_cache_*`` families, one ``cache``-labelled sample
        per store, for the shared exporter (:mod:`repro.obs.prom`)."""
        from ..obs.prom import MetricFamily

        stores = [
            ("partitions", self.partitions.to_dict()),
            ("results", self.results.to_dict()),
        ]
        metrics = [
            ("repro_cache_hits_total", "counter", "Cache lookup hits",
             "hits"),
            ("repro_cache_misses_total", "counter", "Cache lookup misses",
             "misses"),
            ("repro_cache_invalidations_total", "counter",
             "Entries dropped by DML invalidation", "invalidations"),
            ("repro_cache_evictions_total", "counter",
             "Entries evicted by LRU bounds", "evictions"),
            ("repro_cache_stores_total", "counter",
             "Entries stored", "stores"),
            ("repro_cache_entries", "gauge", "Entries currently cached",
             "entries"),
            ("repro_cache_bytes", "gauge", "Estimated bytes cached",
             "bytes"),
        ]
        families = []
        for name, kind, help_text, field in metrics:
            family = MetricFamily(name, kind, help_text)
            for label, snapshot in stores:
                family.add(snapshot[field], cache=label)
            families.append(family)
        return families

    def to_prometheus(self) -> str:
        """Prometheus text exposition for the cache, one ``cache`` label
        per store (matches the stats-store exporter's format)."""
        from ..obs.prom import render

        return render(self.prom_families())

    def render(self) -> str:
        """The ``\\cache`` table: per-store counters plus cached keys."""
        stats = self.stats_dict()
        lines = [
            f"cache: mode={stats['mode']} epoch={stats['epoch']}",
            f"{'store':<12}{'entries':>8}{'bytes':>10}{'hits':>7}"
            f"{'misses':>8}{'hit%':>7}{'inval':>7}{'evict':>7}",
        ]
        for label, snapshot in (
            ("partitions", stats["partitions"]),
            ("results", stats["results"]),
        ):
            lines.append(
                f"{label:<12}{snapshot['entries']:>8}{snapshot['bytes']:>10}"
                f"{snapshot['hits']:>7}{snapshot['misses']:>8}"
                f"{snapshot['hit_rate'] * 100:>6.1f}%"
                f"{snapshot['invalidations']:>7}{snapshot['evictions']:>7}"
            )
        entries = [
            ("partitions", key) for key, _ in self.partitions.items()
        ] + [("results", key) for key, _ in self.results.items()]
        if entries:
            lines.append("cached statements (oldest first):")
            for label, key in entries:
                lines.append(f"  [{label}] {key.describe()}")
        return "\n".join(lines)


class CacheSession:
    """One statement execution's view of the cache.

    Created per statement by :meth:`CacheManager.begin`; carried on the
    :class:`~repro.executor.context.ExecContext` so
    ``_partition_selector_iter`` can ask :meth:`cached_oids` for a replay
    set, and consulted again post-execution by :meth:`harvest` to build and
    commit a new entry on a miss.  Counter updates take the session lock —
    they fire per selector instance, not per row."""

    def __init__(
        self,
        manager: CacheManager,
        key: StatementKey,
        mode: str,
        lookup: bool = True,
    ):
        self.manager = manager
        self.key = key
        self.mode = mode
        self.epoch = manager.epoch
        #: selection-cache lookup happens once, at session start
        self.entry: SelectionEntry | None = (
            manager.partitions.get(key)
            if lookup and self.selection_active
            else None
        )
        self._lock = threading.Lock()
        #: selector instances served from / missed by the cached entry
        self.selectors_served = 0
        self.selectors_evaluated = 0
        #: filled by the engine on the result-cache path
        self.result_outcome: str | None = None
        self.stored = False
        #: set when the execution failed (timeout, cancel, segment death);
        #: an aborted session refuses every store — partial channel
        #: contents must never become a cache entry
        self.aborted = False

    @property
    def selection_active(self) -> bool:
        return self.mode in ("partitions", "results")

    @property
    def results_active(self) -> bool:
        return self.mode == "results"

    # -- executor-facing -----------------------------------------------------

    def cached_oids(
        self, part_scan_id: int, segment: int
    ) -> tuple[int, ...] | None:
        """The replay OID set for one selector instance, or None to
        evaluate normally.  Counts served/evaluated selector instances."""
        if self.entry is None:
            if self.selection_active:
                with self._lock:
                    self.selectors_evaluated += 1
            return None
        oids = self.entry.oids(part_scan_id, segment)
        with self._lock:
            if oids is None:
                self.selectors_evaluated += 1
            else:
                self.selectors_served += 1
        return oids

    def abort(self) -> None:
        """Poison the session after a failed execution.  The executor
        calls this on *any* error escaping a run (QueryTimeout,
        QueryCancelled, SegmentFailure past its retries, ...): whatever
        channel state the run left behind — closed-but-incomplete, open,
        or missing whole slices — is unsafe to cache, so every later
        :meth:`harvest` / :meth:`commit_result` becomes a no-op."""
        with self._lock:
            self.aborted = True

    def harvest(self, plan_root: phys.PhysicalOp, channels) -> bool:
        """After a successful cache-miss execution: snapshot every closed
        partition-OID channel into a :class:`SelectionEntry`, classify the
        plan's tables, and commit (epoch-guarded).  Returns True when an
        entry was stored."""
        if self.aborted:
            return False
        if not self.selection_active or self.entry is not None:
            return False
        if self.key.lowered:
            # Lowered plans (Section 3.2) have no PartitionSelector left to
            # short-circuit — a stored entry could never be replayed.
            return False
        scan_tables, volatile, cacheable = classify_plan(plan_root)
        if not cacheable:
            return False
        selections: dict[int, dict[int, tuple[int, ...]]] = {}
        scoped_leaves: dict[int, set[int]] = {}
        for channel in channels:
            if not channel.closed:
                return False  # incomplete run state; never cache it
            root_oid = scan_tables.get(channel.part_scan_id)
            if root_oid is None:
                return False  # unmappable channel; refuse rather than guess
            oids = tuple(channel.peek())
            selections.setdefault(channel.part_scan_id, {})[
                channel.segment
            ] = oids
            scoped_leaves.setdefault(root_oid, set()).update(oids)
        if not selections:
            return False  # nothing to short-circuit next time
        entry = SelectionEntry(
            self.key,
            selections,
            scoped={
                oid: frozenset(leaves)
                for oid, leaves in scoped_leaves.items()
            },
            volatile=frozenset(volatile),
        )
        stored = self.manager.commit_selection(self, entry)
        if stored:
            with self._lock:
                self.stored = True
        return stored

    # -- engine-facing -------------------------------------------------------

    def commit_result(
        self,
        rows: Sequence[tuple],
        column_names: Sequence[str],
        footprint: Mapping[int, frozenset[int] | None],
    ) -> bool:
        if self.aborted:
            return False
        entry = ResultEntry(self.key, rows, column_names, footprint)
        stored = self.manager.commit_result(self, entry)
        if stored:
            with self._lock:
                self.stored = True
        return stored

    def summary(self) -> dict:
        """The metrics schema-v5 ``"cache"`` section for this query:
        per-query selector/result outcomes plus manager-wide totals."""
        totals = self.manager.stats_dict()
        with self._lock:
            return {
                "mode": self.mode,
                "selection": "hit" if self.entry is not None else "miss",
                "selectors_served": self.selectors_served,
                "selectors_evaluated": self.selectors_evaluated,
                "result": self.result_outcome,
                "stored": self.stored,
                "hits": totals["hits"],
                "misses": totals["misses"],
                "invalidations": totals["invalidations"],
                "bytes": totals["bytes"],
            }


def classify_plan(
    plan_root: phys.PhysicalOp,
) -> tuple[dict[int, int], set[int], bool]:
    """Walk a physical plan and classify its tables for invalidation.

    Returns ``(scan_tables, volatile, cacheable)`` where ``scan_tables``
    maps every partition-selection scan id (selector targets, dynamic
    scans, leaf-scan guards) to the target table's root OID, ``volatile``
    holds root OIDs whose *rows* feed the plan through ordinary scans, and
    ``cacheable`` is False for DML plans (never cached)."""
    scan_tables: dict[int, int] = {}
    volatile: set[int] = set()
    cacheable = True
    for op in plan_root.walk():
        if isinstance(op, phys.PartitionSelector):
            scan_tables[op.part_scan_id] = op.spec.table.oid
        elif isinstance(op, phys.DynamicScan):
            scan_tables[op.part_scan_id] = op.table.oid
        elif isinstance(op, phys.LeafScan):
            # Planner-style plans: the leaf list is plan-time state, so
            # treat the whole table as row-driven (conservative).
            volatile.add(op.table.oid)
            if op.guard_scan_id is not None:
                scan_tables.setdefault(op.guard_scan_id, op.table.oid)
        elif isinstance(op, phys.Scan):
            volatile.add(op.table.oid)
        elif isinstance(op, (phys.Delete, phys.Update)):
            cacheable = False
    return scan_tables, volatile, cacheable


def result_footprint(
    plan_root: phys.PhysicalOp,
    scanned_leaves: Mapping[str, set[int]],
) -> dict[int, frozenset[int] | None] | None:
    """The invalidation footprint of one executed SELECT: every table the
    plan references, mapped to the leaf OIDs actually opened (from the
    scan tracker, keyed by table name) or ``None`` for whole-table
    sensitivity (unpartitioned scans).  Returns ``None`` — do not cache —
    for DML plans."""
    footprint: dict[int, frozenset[int] | None] = {}
    for op in plan_root.walk():
        if isinstance(op, (phys.Delete, phys.Update)):
            return None
        if isinstance(op, phys.Scan):
            footprint[op.table.oid] = None
        elif isinstance(
            op, (phys.DynamicScan, phys.LeafScan, phys.EmptyScan)
        ):
            oid = op.table.oid
            if oid in footprint and footprint[oid] is None:
                continue  # already whole-table sensitive (self-join w/ Scan)
            opened = frozenset(scanned_leaves.get(op.table.name, ()))
            footprint[oid] = frozenset(footprint.get(oid) or ()) | opened
    return footprint
