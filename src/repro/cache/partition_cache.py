"""Fingerprint-keyed partition-selection caching.

A PartitionSelector's output — the partition OID set pushed into each
``(part_scan_id, segment)`` channel — is a pure function of (statement
shape, literal/parameter values, catalog schemes, and the rows streamed
through dynamic selectors).  For heavy repeated traffic the same hot
statement re-derives the same OID sets on every call; this cache stores
them per :class:`~repro.cache.keys.StatementKey` so a repeat execution
short-circuits selector evaluation entirely (the executor pushes the
cached OIDs and skips building the selector program — the dominant cost
for wide IN-lists over many partitions).

Soundness rests on the entry's invalidation classification:

* ``scoped`` — partitioned tables whose selectors *target* them.  A
  static selector's OID set is data-independent and a dynamic selector's
  set is driven by the *other* side of the join, so DML into the target
  table can only matter through the issue's partition-scoped rule:
  INSERT/UPDATE/DELETE touching partition ``P`` invalidates entries whose
  cached OID set intersects ``P`` (conservative, and exactly what the
  result cache needs too).
* ``volatile`` — every other table the plan reads (dimension sides,
  unpartitioned scans, guarded leaf scans).  Their rows *feed* selection,
  so any DML on them drops the entry unconditionally.

Entries are immutable; the cache is thread-safe and LRU-bounded (see
:mod:`repro.cache.lru`).
"""

from __future__ import annotations

from typing import Mapping

from .keys import StatementKey
from .lru import LruCache

#: per-OID accounting estimate: one small int plus container overhead
_OID_BYTES = 12
_ENTRY_OVERHEAD = 256


class SelectionEntry:
    """Cached partition selections of one statement execution."""

    __slots__ = ("key", "selections", "scoped", "volatile", "size_bytes")

    def __init__(
        self,
        key: StatementKey,
        selections: Mapping[int, Mapping[int, tuple[int, ...]]],
        scoped: Mapping[int, frozenset[int]],
        volatile: frozenset[int],
    ):
        #: part_scan_id -> segment -> sorted OID tuple (the channel replay)
        self.selections: dict[int, dict[int, tuple[int, ...]]] = {
            scan_id: dict(per_segment)
            for scan_id, per_segment in selections.items()
        }
        self.key = key
        #: selector-target root OID -> union of cached leaf OIDs
        self.scoped: dict[int, frozenset[int]] = {
            oid: frozenset(leaves) for oid, leaves in scoped.items()
        }
        #: root OIDs whose *rows* drive selection — any DML drops the entry
        self.volatile = frozenset(volatile)
        self.size_bytes = _ENTRY_OVERHEAD + _OID_BYTES * (
            sum(
                len(oids)
                for per_segment in self.selections.values()
                for oids in per_segment.values()
            )
            + sum(len(leaves) for leaves in self.scoped.values())
            + len(self.volatile)
        )

    def oids(self, part_scan_id: int, segment: int) -> tuple[int, ...] | None:
        per_segment = self.selections.get(part_scan_id)
        if per_segment is None:
            return None
        return per_segment.get(segment)

    def tables(self) -> frozenset[int]:
        return self.volatile | frozenset(self.scoped)

    def stale_after(
        self, root_oid: int, leaf_oids: frozenset[int] | None
    ) -> bool:
        """Does DML touching ``leaf_oids`` of ``root_oid`` stale this
        entry?  ``leaf_oids=None`` means the whole table (truncate, DDL)."""
        if root_oid in self.volatile:
            return True
        scoped = self.scoped.get(root_oid)
        if scoped is None:
            return False
        if leaf_oids is None:
            return True
        return bool(scoped & leaf_oids)

    def __repr__(self) -> str:
        return (
            f"SelectionEntry({self.key.describe()}, "
            f"{len(self.selections)} selector(s), {self.size_bytes} B)"
        )


class PartitionSelectionCache(LruCache[SelectionEntry]):
    """StatementKey -> :class:`SelectionEntry`, LRU + byte bounded."""

    @staticmethod
    def entry_bytes(entry: SelectionEntry) -> int:
        return entry.size_bytes

    def store(self, entry: SelectionEntry) -> None:
        self.put(entry.key, entry)

    def invalidate(
        self, root_oid: int, leaf_oids: frozenset[int] | None
    ) -> int:
        """Apply one DML event; returns the number of entries dropped."""
        return self.invalidate_where(
            lambda entry: entry.stale_after(root_oid, leaf_oids)
        )
