"""``python -m repro`` entry point: the interactive shell.

Exits non-zero when a scripted invocation (stdin not a tty) had any
statement fail, so shell pipelines can detect errors.
"""

import sys

from .cli import main

sys.exit(main())
