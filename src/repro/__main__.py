"""``python -m repro`` entry point: the interactive shell."""

from .cli import main

main()
