"""MPP execution: channels, iterators, slice-at-a-time driver, and the
partition-selection built-in functions of the paper's Table 1."""

from .channels import ChannelRegistry, OidChannel
from .context import COORDINATOR_SEGMENT, ExecContext, ScanTracker
from .executor import ExecutionResult, MppExecutor
from .runtime_funcs import (
    PartitionConstraint,
    partition_constraints,
    partition_expansion,
    partition_propagation,
    partition_selection,
)

__all__ = [
    "COORDINATOR_SEGMENT",
    "ChannelRegistry",
    "ExecContext",
    "ExecutionResult",
    "MppExecutor",
    "OidChannel",
    "PartitionConstraint",
    "ScanTracker",
    "partition_constraints",
    "partition_expansion",
    "partition_propagation",
    "partition_selection",
]
