"""Execution context: everything one query run needs.

The MPP simulator's conventions:

* Segments are numbered ``0 .. num_segments-1``; **segment 0 doubles as the
  coordinator** — GatherMotion routes all rows there, and
  coordinator-only operators (scalar aggregation over a gathered stream,
  Update's count row) emit on segment 0 only.
* Motion outputs are materialized into per-segment buffers before the
  consuming slice runs (slice-at-a-time execution).
* Partition-OID channels are per (part scan id, segment).
* The context records which leaf partitions every scan touched — the
  measurement behind the paper's Figure 16 and Table 3.
* The context carries the run's :class:`~repro.resilience.FaultInjector`
  and :class:`~repro.resilience.QueryLimits`; iterators consult both on
  their hot paths (guarded by cheap ``active`` flags).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..catalog import Catalog
from ..obs.metrics import MetricsCollector, ScanTracker
from ..resilience.faults import FaultInjector
from ..resilience.guardrails import QueryLimits
from ..storage import StorageManager
from .channels import ChannelRegistry, OidChannel

__all__ = [
    "COORDINATOR_SEGMENT",
    "ExecContext",
    "ScanTracker",  # re-exported for backward compatibility
]

COORDINATOR_SEGMENT = 0


class ExecContext:
    """State shared by all iterators of one query execution."""

    def __init__(
        self,
        catalog: Catalog,
        storage: StorageManager,
        num_segments: int,
        params: Sequence[Any] | None = None,
        metrics: MetricsCollector | None = None,
        faults: FaultInjector | None = None,
        limits: QueryLimits | None = None,
    ):
        self.catalog = catalog
        self.storage = storage
        self.num_segments = num_segments
        self.params = list(params) if params is not None else []
        self.channels = ChannelRegistry()
        #: id(motion op) -> list per segment of buffered rows
        self.motion_buffers: dict[int, list[list[tuple]]] = {}
        self.metrics = (
            metrics if metrics is not None else MetricsCollector(num_segments)
        )
        self.faults = faults if faults is not None else FaultInjector()
        self.limits = limits if limits is not None else QueryLimits()

    @property
    def tracker(self) -> ScanTracker:
        """Deprecated aggregate view; prefer :attr:`metrics`."""
        return self.metrics.tracker

    def cancel(self) -> None:
        """Cooperatively cancel this execution: the next guardrail
        checkpoint raises :class:`~repro.errors.QueryCancelled`."""
        from ..resilience.guardrails import CancelToken

        if self.limits.cancel_token is None:
            self.limits.cancel_token = CancelToken()
        self.limits.cancel_token.cancel()

    def channel(self, part_scan_id: int, segment: int) -> OidChannel:
        return self.channels.channel(part_scan_id, segment)

    def motion_buffer(self, motion_id: int) -> list[list[tuple]]:
        buffer = self.motion_buffers.get(motion_id)
        if buffer is None:
            buffer = [[] for _ in range(self.num_segments)]
            self.motion_buffers[motion_id] = buffer
        return buffer

    def reset_slice(self, part_scan_ids, motion_id: int | None = None) -> None:
        """Discard one slice's local state before a retry: its partition-OID
        channels (rebuilt locally on the re-run — the Figure 12 invariant
        keeps producer and consumer in the same slice) and, for a motion
        slice, the partially-filled send buffer."""
        self.channels.discard(part_scan_ids)
        if motion_id is not None:
            self.motion_buffers.pop(motion_id, None)
