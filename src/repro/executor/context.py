"""Execution context: everything one query run needs.

The MPP simulator's conventions:

* Segments are numbered ``0 .. num_segments-1``; **segment 0 doubles as the
  coordinator** — GatherMotion routes all rows there, and
  coordinator-only operators (scalar aggregation over a gathered stream,
  Update's count row) emit on segment 0 only.
* Motion outputs are materialized into per-segment
  :class:`~repro.executor.queues.TupleQueue` buffers before the consuming
  slice runs (slice-at-a-time execution) — under the parallel scheduler
  producers on different worker threads push into them concurrently, and
  the queues merge rows in producer-segment order so the drained sequence
  matches a serial run exactly.
* Partition-OID channels are per (part scan id, segment).
* The context records which leaf partitions every scan touched — the
  measurement behind the paper's Figure 16 and Table 3.
* The context carries the run's :class:`~repro.resilience.FaultInjector`
  and :class:`~repro.resilience.QueryLimits`; iterators consult both on
  their hot paths (guarded by cheap ``active`` flags).
* ``workers`` is the segment-scheduler pool size (1 = serial).  Worker
  threads see the context through :meth:`worker_view`, which swaps in a
  per-worker metrics facade and leaves everything else shared.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..catalog import Catalog
from ..obs.metrics import MetricsCollector, ScanTracker
from ..resilience.faults import FaultInjector
from ..resilience.guardrails import QueryLimits
from ..storage import StorageManager
from .channels import ChannelRegistry, OidChannel
from .queues import MotionBuffer

__all__ = [
    "COORDINATOR_SEGMENT",
    "ExecContext",
    "ScanTracker",  # re-exported for backward compatibility
]

COORDINATOR_SEGMENT = 0


class ExecContext:
    """State shared by all iterators of one query execution."""

    def __init__(
        self,
        catalog: Catalog,
        storage: StorageManager,
        num_segments: int,
        params: Sequence[Any] | None = None,
        metrics: MetricsCollector | None = None,
        faults: FaultInjector | None = None,
        limits: QueryLimits | None = None,
        workers: int = 1,
        motion_queue_capacity: int | None = None,
        cache=None,
        batch_size: int = 1,
    ):
        self.catalog = catalog
        self.storage = storage
        self.num_segments = num_segments
        self.params = list(params) if params is not None else []
        self.channels = ChannelRegistry()
        #: id(motion op) -> per-segment receive queues for that Motion
        self.motion_buffers: dict[int, MotionBuffer] = {}
        self.metrics = (
            metrics if metrics is not None else MetricsCollector(num_segments)
        )
        self.faults = faults if faults is not None else FaultInjector()
        self.limits = limits if limits is not None else QueryLimits()
        #: segment-scheduler pool size for this run (1 = serial)
        self.workers = workers
        #: per-target TupleQueue capacity (None = unbounded; the engine's
        #: slice-at-a-time schedule attaches no streaming consumer, so a
        #: bound that fills raises rather than blocks — see queues.py)
        self.motion_queue_capacity = motion_queue_capacity
        #: the statement's :class:`~repro.cache.CacheSession` (None = cache
        #: off): PartitionSelector iterators ask it for replay OID sets
        self.cache = cache
        #: vectorized batch width for this run (1 = row-at-a-time; the
        #: executor runs the batch pipeline iff > 1)
        self.batch_size = batch_size

    @property
    def tracker(self) -> ScanTracker:
        """Deprecated aggregate view; prefer :attr:`metrics`."""
        return self.metrics.tracker

    def cancel(self) -> None:
        """Cooperatively cancel this execution: the next guardrail
        checkpoint raises :class:`~repro.errors.QueryCancelled`."""
        from ..resilience.guardrails import CancelToken

        if self.limits.cancel_token is None:
            self.limits.cancel_token = CancelToken()
        self.limits.cancel_token.cancel()

    def channel(self, part_scan_id: int, segment: int) -> OidChannel:
        return self.channels.channel(part_scan_id, segment)

    def motion_buffer(self, motion_id: int) -> MotionBuffer:
        buffer = self.motion_buffers.get(motion_id)
        if buffer is None:
            buffer = MotionBuffer(
                self.num_segments,
                self.motion_queue_capacity,
                limits=self.limits if self.limits.active else None,
            )
            self.motion_buffers[motion_id] = buffer
        return buffer

    def motion_rows(self, motion_id: int, segment: int) -> list[tuple]:
        """The merged, deterministic row sequence one Motion delivered to
        ``segment`` (requires the producing slice to have closed the
        buffer — the ChannelError contract)."""
        return self.motion_buffer(motion_id).rows(segment)

    def worker_view(self, segment: int) -> "ExecContext":
        """The context one (slice, segment) instance executes against.

        Serial mode returns the context itself; parallel mode returns a
        facade whose ``metrics`` is a per-worker
        :class:`~repro.obs.metrics.WorkerMetrics` accumulator (merged by
        the executor when the instance ends) and everything else is the
        shared state."""
        if self.workers <= 1:
            return self
        return _WorkerView(self, segment)

    def reset_slice(self, part_scan_ids, motion_id: int | None = None) -> None:
        """Discard one slice's local state before a whole-slice retry: its
        partition-OID channels (rebuilt locally on the re-run — the
        Figure 12 invariant keeps producer and consumer in the same slice)
        and, for a motion slice, the partially-filled send buffer."""
        self.channels.discard(part_scan_ids)
        if motion_id is not None:
            self.motion_buffers.pop(motion_id, None)

    def reset_instance(
        self,
        part_scan_ids,
        segment: int,
        motion_id: int | None = None,
    ) -> None:
        """Discard one failed (slice, segment) instance's state before its
        retry, leaving every other segment's work intact: only the failed
        segment's partition-OID channels (the Figure 12 invariant makes
        them instance-local) and only that producer's rows in the Motion's
        send queues."""
        self.channels.discard(part_scan_ids, segment=segment)
        if motion_id is not None:
            buffer = self.motion_buffers.get(motion_id)
            if buffer is not None:
                buffer.discard_producer(segment)


class _WorkerView:
    """One worker thread's view of the shared :class:`ExecContext`.

    Everything delegates to the base context except ``metrics``, which is
    a per-worker accumulator so contended counters never take a lock on
    the per-row path."""

    __slots__ = ("_base", "segment", "metrics")

    def __init__(self, base: ExecContext, segment: int):
        self._base = base
        self.segment = segment
        self.metrics = base.metrics.worker(segment)

    def __getattr__(self, name: str):
        return getattr(self._base, name)
