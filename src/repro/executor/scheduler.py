"""The parallel segment scheduler.

An MPP plan is shaped for concurrency: every slice runs one instance per
segment, and the instances of one slice share nothing but the Motion
queues and the (segment-local) partition-OID channels.
:class:`SegmentScheduler` exploits exactly that — it maps the
(slice, segment) instances of each slice onto a
:class:`~concurrent.futures.ThreadPoolExecutor` worker pool, while the
executor keeps the slice-at-a-time barrier between slices so producers
always close their Motion queues before consumers drain them.

``workers=1`` (the default everywhere) bypasses the pool entirely and
runs instances inline in ascending segment order — byte-for-byte the
behavior of the historical serial executor, with zero thread overhead.

With ``workers>1`` the scheduler still guarantees determinism:

* results are collected **in segment order**, not completion order;
* when several instances fail, the failure raised is the lowest failed
  segment's (after every instance has settled, so no worker is left
  running against torn state);
* Motion rows are merged per producer run by the
  :class:`~repro.executor.queues.TupleQueue`, not by arrival.

In this simulator the workers are Python threads, so CPU-bound operator
work shares the GIL; what genuinely overlaps is everything that waits —
the simulated storage I/O latency (``StorageManager.io_latency_s``),
retry backoff sleeps, and any blocking queue operation — which is also
what dominates real MPP executors.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence


class SegmentScheduler:
    """Runs per-(slice, segment) instances, serially or on a worker pool.

    ``pool`` (optional) is an externally owned
    :class:`~concurrent.futures.ThreadPoolExecutor` to submit to instead
    of creating a private one — the serving layer's
    :class:`~repro.serving.QueryScheduler` hands every admitted query a
    scheduler view over one shared pool, so per-segment instances from
    different queries interleave on the same workers.  A scheduler over a
    borrowed pool never shuts it down; :meth:`close` is a no-op for it.
    """

    def __init__(
        self,
        workers: int = 1,
        pool: ThreadPoolExecutor | None = None,
        busy=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        #: optional occupancy counter with ``enter()``/``leave()`` —
        #: the serving pool's busy-fraction gauge; wrapped per instance,
        #: never per row
        self.busy = busy
        self._pool: ThreadPoolExecutor | None = None
        self._owns_pool = False
        if workers > 1:
            if pool is not None:
                self._pool = pool
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-segment"
                )
                self._owns_pool = True

    @property
    def parallel(self) -> bool:
        return self._pool is not None

    def run_slice(
        self, instances: Sequence[Callable[[], Any]]
    ) -> list[Any]:
        """Run one slice's segment instances; returns their results in
        segment order.

        Serial mode runs them inline (first failure propagates
        immediately, matching the historical executor).  Parallel mode
        submits all instances, waits for every one to settle, and then
        raises the lowest-segment failure if any instance failed —
        deterministic error attribution regardless of interleaving.
        """
        if self._pool is None:
            return [instance() for instance in instances]
        if self.busy is not None:
            instances = [self._occupied(i) for i in instances]
        futures = [self._pool.submit(instance) for instance in instances]
        results: list[Any] = []
        first_error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def _occupied(self, instance: Callable[[], Any]) -> Callable[[], Any]:
        busy = self.busy

        def run():
            busy.enter()
            try:
                return instance()
            finally:
                busy.leave()

        return run

    def close(self) -> None:
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown(wait=True)
        self._pool = None

    def __enter__(self) -> "SegmentScheduler":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        mode = f"{self.workers} workers" if self.parallel else "serial"
        return f"SegmentScheduler({mode})"
