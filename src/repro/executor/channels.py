"""Partition-OID channels: the producer/consumer shared memory of
Section 2.2.

A PartitionSelector pushes the OIDs of partitions that must be scanned into
the channel identified by its ``partScanId``; the DynamicScan with the same
id consumes them.  Channels are **segment-local** (keyed by
``(part_scan_id, segment)``) — in a real MPP system the pair communicates
through process-local shared memory, which is why no Motion may separate
them (Section 3.1).

The channel enforces the full producer/consumer protocol, raising
:class:`ChannelError` on every misuse:

* ``consume()`` before the producer has closed the channel;
* ``push()`` after close;
* ``close()`` twice — two producers racing to close the same channel is a
  real coordination bug, so the second close raises instead of being
  silently absorbed;
* ``consume()`` twice — the OID set is handed over exactly once; guards
  that only need to *read* the set (Planner's guarded LeafScans share one
  channel across many scans) use the non-destructive :meth:`peek`.

Under the parallel scheduler every (slice, segment) instance runs on its
own worker thread; the Figure 12 co-location invariant keeps each
channel's producer and consumer on one thread, but the registry is shared
by all workers and each channel guards its state transitions with a lock
so protocol violations surface as :class:`ChannelError` rather than torn
state, whichever thread commits them.

Instance retry after a segment failure discards the **failed segment's**
channels only (:meth:`ChannelRegistry.discard` with ``segment=``) so the
re-run rebuilds them while healthy segments' in-flight channels stay
untouched — discarding every segment's channel here would corrupt a
parallel failover.
"""

from __future__ import annotations

import threading

from ..errors import ChannelError


class OidChannel:
    """One (part_scan_id, segment) channel."""

    __slots__ = (
        "part_scan_id",
        "segment",
        "_oids",
        "_closed",
        "_consumed",
        "_lock",
    )

    def __init__(self, part_scan_id: int, segment: int):
        self.part_scan_id = part_scan_id
        self.segment = segment
        self._oids: set[int] = set()
        self._closed = False
        self._consumed = False
        self._lock = threading.Lock()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def consumed(self) -> bool:
        return self._consumed

    def push(self, oid: int) -> None:
        """partition_propagation: add one partition OID."""
        with self._lock:
            if self._closed:
                raise ChannelError(
                    f"push to closed channel (scan {self.part_scan_id}, "
                    f"segment {self.segment})"
                )
            self._oids.add(oid)

    def push_all(self, oids) -> None:
        for oid in oids:
            self.push(oid)

    def close(self) -> None:
        """Seal the channel.  Closing twice raises: it means two producers
        both believe they own the channel's lifecycle."""
        with self._lock:
            if self._closed:
                raise ChannelError(
                    f"double close of channel (scan {self.part_scan_id}, "
                    f"segment {self.segment})"
                )
            self._closed = True

    def consume(self) -> list[int]:
        """OIDs for the DynamicScan, in deterministic order — exactly once.

        Raises :class:`ChannelError` when the producer has not finished
        (the execution-order invariant the plan validator guarantees) and
        when the channel was already consumed.
        """
        with self._lock:
            if not self._closed:
                raise ChannelError(
                    f"DynamicScan {self.part_scan_id} on segment "
                    f"{self.segment} consumed before its PartitionSelector "
                    f"finished"
                )
            if self._consumed:
                raise ChannelError(
                    f"channel (scan {self.part_scan_id}, segment "
                    f"{self.segment}) consumed twice"
                )
            self._consumed = True
            return sorted(self._oids)

    def peek(self) -> list[int]:
        """Non-destructive read for guard consumers (several LeafScans may
        share one guard channel).  Still requires the producer to have
        closed the channel first."""
        with self._lock:
            if not self._closed:
                raise ChannelError(
                    f"guard on channel (scan {self.part_scan_id}, segment "
                    f"{self.segment}) read before its producer finished"
                )
            return sorted(self._oids)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        if self._consumed:
            state = "consumed"
        return (
            f"OidChannel(scan={self.part_scan_id}, seg={self.segment}, "
            f"{len(self._oids)} oids, {state})"
        )


class ChannelRegistry:
    """All channels of one query execution (shared across worker threads)."""

    def __init__(self) -> None:
        self._channels: dict[tuple[int, int], OidChannel] = {}
        self._lock = threading.Lock()

    def channel(self, part_scan_id: int, segment: int) -> OidChannel:
        key = (part_scan_id, segment)
        found = self._channels.get(key)
        if found is None:
            with self._lock:
                found = self._channels.get(key)
                if found is None:
                    found = OidChannel(part_scan_id, segment)
                    self._channels[key] = found
        return found

    def channels(self) -> list[OidChannel]:
        with self._lock:
            return list(self._channels.values())

    def discard(self, part_scan_ids, segment: int | None = None) -> int:
        """Drop channels for the given scan ids so a retry rebuilds them.

        ``segment`` scopes the discard to one failed segment's instance —
        the parallel failover path, where other segments' channels are
        healthy and possibly mid-consumption.  ``segment=None`` drops every
        segment's channel (whole-slice reset).  Returns channels removed.
        """
        ids = set(part_scan_ids)
        with self._lock:
            victims = [
                key
                for key in self._channels
                if key[0] in ids
                and (segment is None or key[1] == segment)
            ]
            for key in victims:
                del self._channels[key]
            return len(victims)
