"""Partition-OID channels: the producer/consumer shared memory of
Section 2.2.

A PartitionSelector pushes the OIDs of partitions that must be scanned into
the channel identified by its ``partScanId``; the DynamicScan with the same
id consumes them.  Channels are **segment-local** (keyed by
``(part_scan_id, segment)``) — in a real MPP system the pair communicates
through process-local shared memory, which is why no Motion may separate
them (Section 3.1).

The channel enforces the full producer/consumer protocol, raising
:class:`ChannelError` on every misuse:

* ``consume()`` before the producer has closed the channel;
* ``push()`` after close;
* ``close()`` twice — two producers racing to close the same channel is a
  real coordination bug, so the second close raises instead of being
  silently absorbed;
* ``consume()`` twice — the OID set is handed over exactly once; guards
  that only need to *read* the set (Planner's guarded LeafScans share one
  channel across many scans) use the non-destructive :meth:`peek`.

Slice retry after a segment failure discards the failed slice's channels
(:meth:`ChannelRegistry.discard`) so the re-run rebuilds them from
scratch — possible without cross-slice coordination precisely because of
the Figure 12 co-location invariant.
"""

from __future__ import annotations

from ..errors import ChannelError


class OidChannel:
    """One (part_scan_id, segment) channel."""

    __slots__ = ("part_scan_id", "segment", "_oids", "_closed", "_consumed")

    def __init__(self, part_scan_id: int, segment: int):
        self.part_scan_id = part_scan_id
        self.segment = segment
        self._oids: set[int] = set()
        self._closed = False
        self._consumed = False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def consumed(self) -> bool:
        return self._consumed

    def push(self, oid: int) -> None:
        """partition_propagation: add one partition OID."""
        if self._closed:
            raise ChannelError(
                f"push to closed channel (scan {self.part_scan_id}, "
                f"segment {self.segment})"
            )
        self._oids.add(oid)

    def push_all(self, oids) -> None:
        for oid in oids:
            self.push(oid)

    def close(self) -> None:
        """Seal the channel.  Closing twice raises: it means two producers
        both believe they own the channel's lifecycle."""
        if self._closed:
            raise ChannelError(
                f"double close of channel (scan {self.part_scan_id}, "
                f"segment {self.segment})"
            )
        self._closed = True

    def consume(self) -> list[int]:
        """OIDs for the DynamicScan, in deterministic order — exactly once.

        Raises :class:`ChannelError` when the producer has not finished
        (the execution-order invariant the plan validator guarantees) and
        when the channel was already consumed.
        """
        if not self._closed:
            raise ChannelError(
                f"DynamicScan {self.part_scan_id} on segment {self.segment} "
                f"consumed before its PartitionSelector finished"
            )
        if self._consumed:
            raise ChannelError(
                f"channel (scan {self.part_scan_id}, segment {self.segment}) "
                f"consumed twice"
            )
        self._consumed = True
        return sorted(self._oids)

    def peek(self) -> list[int]:
        """Non-destructive read for guard consumers (several LeafScans may
        share one guard channel).  Still requires the producer to have
        closed the channel first."""
        if not self._closed:
            raise ChannelError(
                f"guard on channel (scan {self.part_scan_id}, segment "
                f"{self.segment}) read before its producer finished"
            )
        return sorted(self._oids)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        if self._consumed:
            state = "consumed"
        return (
            f"OidChannel(scan={self.part_scan_id}, seg={self.segment}, "
            f"{len(self._oids)} oids, {state})"
        )


class ChannelRegistry:
    """All channels of one query execution."""

    def __init__(self) -> None:
        self._channels: dict[tuple[int, int], OidChannel] = {}

    def channel(self, part_scan_id: int, segment: int) -> OidChannel:
        key = (part_scan_id, segment)
        found = self._channels.get(key)
        if found is None:
            found = OidChannel(part_scan_id, segment)
            self._channels[key] = found
        return found

    def channels(self) -> list[OidChannel]:
        return list(self._channels.values())

    def discard(self, part_scan_ids) -> int:
        """Drop every segment's channel for the given scan ids (slice
        retry: the re-run rebuilds them).  Returns channels removed."""
        ids = set(part_scan_ids)
        victims = [key for key in self._channels if key[0] in ids]
        for key in victims:
            del self._channels[key]
        return len(victims)
