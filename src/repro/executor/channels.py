"""Partition-OID channels: the producer/consumer shared memory of
Section 2.2.

A PartitionSelector pushes the OIDs of partitions that must be scanned into
the channel identified by its ``partScanId``; the DynamicScan with the same
id consumes them.  Channels are **segment-local** (keyed by
``(part_scan_id, segment)``) — in a real MPP system the pair communicates
through process-local shared memory, which is why no Motion may separate
them (Section 3.1).

The channel enforces the producer-before-consumer protocol: consuming
before the producer has closed the channel raises :class:`ChannelError`,
as does producing after close.
"""

from __future__ import annotations

from ..errors import ChannelError


class OidChannel:
    """One (part_scan_id, segment) channel."""

    __slots__ = ("part_scan_id", "segment", "_oids", "_closed")

    def __init__(self, part_scan_id: int, segment: int):
        self.part_scan_id = part_scan_id
        self.segment = segment
        self._oids: set[int] = set()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def push(self, oid: int) -> None:
        """partition_propagation: add one partition OID."""
        if self._closed:
            raise ChannelError(
                f"push to closed channel (scan {self.part_scan_id}, "
                f"segment {self.segment})"
            )
        self._oids.add(oid)

    def push_all(self, oids) -> None:
        for oid in oids:
            self.push(oid)

    def close(self) -> None:
        self._closed = True

    def consume(self) -> list[int]:
        """OIDs for the DynamicScan, in deterministic order.

        Raises :class:`ChannelError` when the producer has not finished —
        the execution-order invariant the plan validator guarantees.
        """
        if not self._closed:
            raise ChannelError(
                f"DynamicScan {self.part_scan_id} on segment {self.segment} "
                f"consumed before its PartitionSelector finished"
            )
        return sorted(self._oids)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"OidChannel(scan={self.part_scan_id}, seg={self.segment}, "
            f"{len(self._oids)} oids, {state})"
        )


class ChannelRegistry:
    """All channels of one query execution."""

    def __init__(self) -> None:
        self._channels: dict[tuple[int, int], OidChannel] = {}

    def channel(self, part_scan_id: int, segment: int) -> OidChannel:
        key = (part_scan_id, segment)
        found = self._channels.get(key)
        if found is None:
            found = OidChannel(part_scan_id, segment)
            self._channels[key] = found
        return found

    def channels(self) -> list[OidChannel]:
        return list(self._channels.values())
