"""Volcano-style iterators for every physical operator.

:func:`build_iterator` turns a plan subtree into a generator of tuples for
one segment.  Motion nodes are never executed here — the executor
pre-materializes their output into per-segment buffers, and this module
simply reads the buffer (slice-at-a-time execution).

The PartitionSelector iterator realises both selection modes uniformly,
as Section 3.2 requires:

* constant predicates (including prepared-statement parameters) are
  evaluated once, the selected OIDs pushed, and the channel closed before
  any tuple flows — static elimination;
* join predicates are evaluated per streamed tuple, pushing the OIDs each
  tuple selects — dynamic elimination.  The channel closes when the input
  is exhausted, which the engine's left-before-right execution order
  guarantees happens before the consuming DynamicScan opens.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from ..catalog import TableDescriptor
from ..catalog.constraints import IntervalSet
from ..errors import ExecutionError
from ..expr.analysis import (
    conjuncts,
    derive_interval_set,
    interval_for_comparison,
    join_comparison_on_key,
)
from ..expr.ast import ColumnRef
from ..expr.eval import RowLayout, compile_expression, compile_predicate
from ..physical import ops as phys
from ..physical.properties import PartSelectorSpec
from ..resilience.faults import CHANNEL_CLOSE, SCAN_ROW
from .context import COORDINATOR_SEGMENT, ExecContext
from .runtime_funcs import partition_expansion, partition_propagation

RowIter = Iterator[tuple]
#: batch-mode iterator: yields lists of row tuples
BatchIter = Iterator[list]

#: extension point: operator type -> iterator factory(op, segment, ctx).
#: Used by :mod:`repro.executor.lowering` to register the Section 3.2
#: function-based operators without creating an import cycle.
EXTRA_ITERATORS: dict[type, Callable[..., RowIter]] = {}

#: batch-mode extension point, same contract but the factory yields row
#: batches.  An operator registered only in :data:`EXTRA_ITERATORS` still
#: works in batch mode — its row iterator is re-batched.
EXTRA_BATCH_ITERATORS: dict[type, Callable[..., BatchIter]] = {}


def build_iterator(
    op: phys.PhysicalOp, segment: int, ctx: ExecContext
) -> RowIter:
    """Instantiate the iterator tree for ``op`` on one segment.

    Every node's iterator is wrapped by the metrics collector: rows out
    and loops are always counted; per-node wall time is accumulated when
    the query runs with ``analyze=True``.  When guardrails are configured
    the root of each subtree additionally passes every row through the
    cooperative checkpoint (cancellation, timeout).
    """
    inner = ctx.metrics.instrument(op, segment, _raw_iterator(op, segment, ctx))
    if ctx.limits.active:
        return _guarded_iter(ctx.limits, inner)
    return inner


def _guarded_iter(limits, inner: RowIter) -> RowIter:
    tick = limits.tick
    for row in inner:
        tick()
        yield row


def _raw_iterator(
    op: phys.PhysicalOp, segment: int, ctx: ExecContext
) -> RowIter:
    factory = EXTRA_ITERATORS.get(type(op))
    if factory is not None:
        return factory(op, segment, ctx)
    if isinstance(op, phys.Motion):
        return iter(ctx.motion_rows(id(op), segment))
    if isinstance(op, phys.Scan):
        return _scan_iter(op, segment, ctx)
    if isinstance(op, phys.EmptyScan):
        return iter(())
    if isinstance(op, phys.LeafScan):
        return _leaf_scan_iter(op, segment, ctx)
    if isinstance(op, phys.DynamicScan):
        return _dynamic_scan_iter(op, segment, ctx)
    if isinstance(op, phys.PartitionSelector):
        return _partition_selector_iter(op, segment, ctx)
    if isinstance(op, phys.Sequence):
        return _sequence_iter(op, segment, ctx)
    if isinstance(op, phys.Filter):
        return _filter_iter(op, segment, ctx)
    if isinstance(op, phys.Project):
        return _project_iter(op, segment, ctx)
    if isinstance(op, phys.HashJoin):
        return _hash_join_iter(op, segment, ctx)
    if isinstance(op, phys.NLJoin):
        return _nl_join_iter(op, segment, ctx)
    if isinstance(op, phys.HashAgg):
        return _hash_agg_iter(op, segment, ctx)
    if isinstance(op, phys.Sort):
        return _sort_iter(op, segment, ctx)
    if isinstance(op, phys.Limit):
        return _limit_iter(op, segment, ctx)
    if isinstance(op, phys.Append):
        return _append_iter(op, segment, ctx)
    if isinstance(op, phys.Update):
        return _update_iter(op, segment, ctx)
    if isinstance(op, phys.Delete):
        return _delete_iter(op, segment, ctx)
    raise ExecutionError(f"no iterator for operator {op.name}")


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------


def _scan_iter(op: phys.Scan, segment: int, ctx: ExecContext) -> RowIter:
    faults = ctx.faults if ctx.faults.active else None
    count = 0
    for row in ctx.storage.scan_table(segment, op.table.oid):
        if faults is not None:
            faults.maybe_fire(SCAN_ROW, segment)
        count += 1
        yield row
    ctx.metrics.record_scan_rows(op, op.table, segment, count)


def _leaf_scan_iter(op: phys.LeafScan, segment: int, ctx: ExecContext) -> RowIter:
    if op.guard_scan_id is not None:
        # Several LeafScans share one guard channel — read, don't consume.
        selected = ctx.channel(op.guard_scan_id, segment).peek()
        if op.leaf_oid not in selected:
            return
    ctx.metrics.record_leaf(op, op.table, op.leaf_oid, segment)
    faults = ctx.faults if ctx.faults.active else None
    count = 0
    for row in ctx.storage.scan_table(segment, op.table.oid, [op.leaf_oid]):
        if faults is not None:
            faults.maybe_fire(SCAN_ROW, segment)
        count += 1
        yield row
    ctx.metrics.record_scan_rows(op, op.table, segment, count)


def _dynamic_scan_iter(
    op: phys.DynamicScan, segment: int, ctx: ExecContext
) -> RowIter:
    ctx.metrics.node(op).part_scan_id = op.part_scan_id
    oids = ctx.channel(op.part_scan_id, segment).consume()
    faults = ctx.faults if ctx.faults.active else None
    for oid in oids:
        ctx.metrics.record_leaf(op, op.table, oid, segment)
        # rows are batched per *leaf* (not per scan) so the live activity
        # registry sees rows-so-far advance while a long scan runs; still
        # one recording call per partition, never per row
        count = 0
        for row in ctx.storage.scan_table(segment, op.table.oid, [oid]):
            if faults is not None:
                faults.maybe_fire(SCAN_ROW, segment)
            count += 1
            yield row
        ctx.metrics.record_scan_rows(op, op.table, segment, count)


# ---------------------------------------------------------------------------
# PartitionSelector
# ---------------------------------------------------------------------------


class _SelectorProgram:
    """Compiled form of a PartSelectorSpec for one execution.

    Splits every level's predicate into a constant part (derived once into
    an IntervalSet) and streaming comparisons (evaluated per input tuple).
    Unsupported streaming shapes contribute no restriction — degrading to
    more partitions, never fewer.

    Per-tuple selection is the hot path of dynamic elimination, so two
    optimisations apply: results are memoised per distinct streamed value
    combination, and the common pure-equality case routes with the level's
    binary search (the ``partition_selection`` built-in's fast path)
    instead of constructing interval sets.
    """

    def __init__(
        self,
        spec: PartSelectorSpec,
        child_layout: RowLayout | None,
        params,
    ):
        self.spec = spec
        self.table: TableDescriptor = spec.table
        self.constant_sets: list[IntervalSet | None] = []
        self.streaming: list[list[tuple[str, Callable[[tuple], Any]]]] = []
        schema = self.table.schema
        for key, predicate in zip(spec.part_keys, spec.part_predicates):
            if predicate is None:
                self.constant_sets.append(None)
                self.streaming.append([])
                continue
            key_type = schema.column(key.name).data_type
            constant_parts = []
            streaming_parts: list[tuple[str, Callable[[tuple], Any]]] = []
            for conjunct in conjuncts(predicate):
                derived = derive_interval_set(
                    conjunct, key, params=params, key_type=key_type
                )
                if derived is not None:
                    constant_parts.append(derived)
                    continue
                normalized = None
                for candidate in join_comparison_on_key(conjunct, key):
                    normalized = candidate
                    break
                if normalized is not None and child_layout is not None:
                    right = compile_expression(
                        normalized.right, child_layout, params
                    )
                    streaming_parts.append((normalized.op, right))
                # else: unsupported shape — no restriction.
            constant: IntervalSet | None = None
            for part in constant_parts:
                constant = part if constant is None else constant.intersect(part)
            self.constant_sets.append(constant)
            self.streaming.append(streaming_parts)

        scheme = self.table.partition_scheme
        assert scheme is not None
        # Align scheme levels with the spec's key order.
        levels_by_key = {level.key: level for level in scheme.levels}
        self._levels = [levels_by_key[key.name] for key in spec.part_keys]
        #: slot indices admitted by the constant parts alone, per level
        self._constant_slots = [
            level.select(constant)
            for level, constant in zip(self._levels, self.constant_sets)
        ]
        self._eq_only = [
            bool(parts) and all(op_name == "=" for op_name, _ in parts)
            for parts in self.streaming
        ]
        self._memo: dict[tuple, list[int]] = {}

    @property
    def has_streaming(self) -> bool:
        return any(self.streaming)

    def _leaves_to_oids(self, slots_per_level: list[list[int]]) -> list[int]:
        leaves: list[tuple[int, ...]] = [()]
        for slots in slots_per_level:
            if not slots:
                return []
            leaves = [leaf + (slot,) for leaf in leaves for slot in slots]
        return [self.table.leaf_oid(leaf) for leaf in leaves]

    def constant_oids(self) -> list[int]:
        return self._leaves_to_oids(list(self._constant_slots))

    def _slots_for_values(self, values: tuple) -> list[int]:
        """Slot lists per level for one streamed value combination."""
        slots_per_level: list[list[int]] = []
        cursor = 0
        for index, streaming in enumerate(self.streaming):
            if not streaming:
                slots_per_level.append(self._constant_slots[index])
                continue
            level = self._levels[index]
            level_values = values[cursor : cursor + len(streaming)]
            cursor += len(streaming)
            constant = self.constant_sets[index]
            if self._eq_only[index]:
                # All equality comparisons: the value(s) must agree, lie in
                # the constant set, and route to a single slot (bisect).
                distinct = set(level_values)
                if len(distinct) != 1:
                    slots_per_level.append([])
                    continue
                value = next(iter(distinct))
                if value is None or (
                    constant is not None and not constant.contains(value)
                ):
                    slots_per_level.append([])
                    continue
                slot = level.route(value)
                slots_per_level.append([slot] if slot is not None else [])
                continue
            level_set = constant
            for (op_name, _), value in zip(streaming, level_values):
                comparison_set = interval_for_comparison(op_name, value)
                level_set = (
                    comparison_set
                    if level_set is None
                    else level_set.intersect(comparison_set)
                )
            slots_per_level.append(level.select(level_set))
        return self._leaves_to_oids(slots_per_level)

    def oids_for_row(self, row: tuple) -> list[int]:
        values = tuple(
            right_fn(row)
            for streaming in self.streaming
            for _, right_fn in streaming
        )
        try:
            cached = self._memo.get(values)
        except TypeError:  # unhashable streamed value: compute directly
            return self._slots_for_values(values)
        if cached is None:
            cached = self._slots_for_values(values)
            self._memo[values] = cached
        return cached


def _partition_selector_iter(
    op: phys.PartitionSelector, segment: int, ctx: ExecContext
) -> RowIter:
    spec = op.spec
    channel = ctx.channel(spec.part_scan_id, segment)
    child = op.children[0] if op.children else None

    cache = ctx.cache
    if cache is not None:
        cached = cache.cached_oids(spec.part_scan_id, segment)
        if cached is not None:
            # Cache replay: the session holds this instance's OID set from
            # an identical earlier statement (same fingerprint, literals,
            # params and plan options — see repro.cache.keys), so skip
            # compiling and evaluating the selector program entirely and
            # push the remembered set.  Child rows still stream unchanged:
            # only selection work is short-circuited, never data flow.
            ctx.metrics.node(op).part_scan_id = spec.part_scan_id
            ctx.metrics.record_selector(
                spec.part_scan_id, "cached", spec.table.num_leaves
            )
            for oid in cached:
                partition_propagation(ctx, spec.part_scan_id, segment, oid)
            if ctx.faults.active:
                ctx.faults.maybe_fire(CHANNEL_CLOSE, segment)
            channel.close()
            if child is not None:
                yield from build_iterator(child, segment, ctx)
            return

    child_layout = child.output_layout() if child is not None else None
    program = _SelectorProgram(spec, child_layout, ctx.params)
    ctx.metrics.node(op).part_scan_id = spec.part_scan_id
    ctx.metrics.record_selector(
        spec.part_scan_id,
        "dynamic" if program.has_streaming else "static",
        spec.table.num_leaves,
    )

    if not program.has_streaming:
        # Static selection (constant predicates, parameters, or Φ): compute
        # once, propagate, close — before any tuple flows.
        if spec.has_predicates:
            oids = program.constant_oids()
        else:
            oids = partition_expansion(ctx.catalog, spec.table.oid)
        for oid in oids:
            partition_propagation(ctx, spec.part_scan_id, segment, oid)
        if ctx.faults.active:
            ctx.faults.maybe_fire(CHANNEL_CLOSE, segment)
        channel.close()
        if child is not None:
            yield from build_iterator(child, segment, ctx)
        return

    # Dynamic selection: apply the selection function per streamed tuple.
    if child is None:
        raise ExecutionError(
            "streaming PartitionSelector requires an input (join predicate "
            "over no tuples)"
        )
    for row in build_iterator(child, segment, ctx):
        for oid in program.oids_for_row(row):
            partition_propagation(ctx, spec.part_scan_id, segment, oid)
        yield row
    if ctx.faults.active:
        ctx.faults.maybe_fire(CHANNEL_CLOSE, segment)
    channel.close()


def _sequence_iter(op: phys.Sequence, segment: int, ctx: ExecContext) -> RowIter:
    for child in op.children[:-1]:
        for _ in build_iterator(child, segment, ctx):
            pass
    yield from build_iterator(op.children[-1], segment, ctx)


# ---------------------------------------------------------------------------
# Row operators
# ---------------------------------------------------------------------------


def _filter_iter(op: phys.Filter, segment: int, ctx: ExecContext) -> RowIter:
    layout = op.children[0].output_layout()
    predicate = compile_predicate(op.predicate, layout, ctx.params)
    for row in build_iterator(op.children[0], segment, ctx):
        if predicate(row):
            yield row


def _project_iter(op: phys.Project, segment: int, ctx: ExecContext) -> RowIter:
    layout = op.children[0].output_layout()
    funcs = [
        compile_expression(expr, layout, ctx.params) for expr, _ in op.items
    ]
    for row in build_iterator(op.children[0], segment, ctx):
        yield tuple(func(row) for func in funcs)


def _hash_join_iter(op: phys.HashJoin, segment: int, ctx: ExecContext) -> RowIter:
    build_layout = op.build.output_layout()
    probe_layout = op.probe.output_layout()
    build_fns = [
        compile_expression(k, build_layout, ctx.params) for k in op.build_keys
    ]
    probe_fns = [
        compile_expression(k, probe_layout, ctx.params) for k in op.probe_keys
    ]
    residual = None
    if op.residual is not None:
        residual = compile_predicate(
            op.residual, build_layout.concat(probe_layout), ctx.params
        )

    charge = ctx.limits.charge_rows if ctx.limits.active else None
    table: dict[tuple, list[tuple]] = {}
    for row in build_iterator(op.build, segment, ctx):
        key = tuple(fn(row) for fn in build_fns)
        if any(v is None for v in key):
            continue  # NULL keys never join
        table.setdefault(key, []).append(row)
        if charge is not None:
            charge(1)  # build side is materialized: memory proxy

    semi = op.kind == "semi"
    for probe_row in build_iterator(op.probe, segment, ctx):
        key = tuple(fn(probe_row) for fn in probe_fns)
        if any(v is None for v in key):
            continue
        matches = table.get(key)
        if not matches:
            continue
        if semi:
            if residual is None:
                yield probe_row
            else:
                for build_row in matches:
                    if residual(build_row + probe_row):
                        yield probe_row
                        break
        else:
            for build_row in matches:
                combined = build_row + probe_row
                if residual is None or residual(combined):
                    yield combined


def _nl_join_iter(op: phys.NLJoin, segment: int, ctx: ExecContext) -> RowIter:
    outer_rows = list(build_iterator(op.outer, segment, ctx))
    inner_rows = list(build_iterator(op.inner, segment, ctx))
    if ctx.limits.active:
        ctx.limits.charge_rows(len(outer_rows) + len(inner_rows))
    combined_layout = op.outer.output_layout().concat(op.inner.output_layout())
    predicate = (
        compile_predicate(op.predicate, combined_layout, ctx.params)
        if op.predicate is not None
        else None
    )
    semi = op.kind == "semi"
    for outer_row in outer_rows:
        for inner_row in inner_rows:
            combined = outer_row + inner_row
            if predicate is None or predicate(combined):
                if semi:
                    yield outer_row
                    break
                yield combined


class _Accumulator:
    """State of one aggregate within one group."""

    __slots__ = ("func", "count", "total", "best")

    def __init__(self, func: str):
        self.func = func
        self.count = 0
        self.total: Any = None
        self.best: Any = None

    def add(self, value: Any) -> None:
        if self.func == "count":
            # COUNT(expr) skips NULLs; COUNT(*) feeds a sentinel non-NULL.
            if value is not None:
                self.count += 1
            return
        if value is None:
            return
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif self.func == "min":
            self.best = value if self.best is None else min(self.best, value)
        elif self.func == "max":
            self.best = value if self.best is None else max(self.best, value)

    def result(self) -> Any:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            if self.count == 0:
                return None
            return self.total / self.count
        return self.best

    # -- two-stage aggregation ---------------------------------------------

    def transition(self) -> Any:
        """Partial-aggregate state shipped between segments.

        AVG needs both the running sum and the count; the other functions'
        transition state is their result so far.
        """
        if self.func == "avg":
            return (self.total, self.count)
        return self.result()

    def combine(self, state: Any) -> None:
        """Fold another segment's transition state into this accumulator."""
        if self.func == "count":
            if state is not None:
                self.count += state
            return
        if self.func == "avg":
            if state is None:
                return
            total, count = state
            if total is not None:
                self.total = total if self.total is None else self.total + total
            self.count += count
            return
        if state is None:
            return
        if self.func == "sum":
            self.total = state if self.total is None else self.total + state
        elif self.func == "min":
            self.best = state if self.best is None else min(self.best, state)
        elif self.func == "max":
            self.best = state if self.best is None else max(self.best, state)


def _hash_agg_iter(op: phys.HashAgg, segment: int, ctx: ExecContext) -> RowIter:
    layout = op.children[0].output_layout()
    key_fns = [
        compile_expression(key, layout, ctx.params) for key in op.group_keys
    ]
    charge = ctx.limits.charge_rows if ctx.limits.active else None
    if op.mode == "final":
        # Input rows are (keys..., transition states...): combine them.
        key_count = len(op.group_keys)
        groups: dict[tuple, list[_Accumulator]] = {}
        for row in build_iterator(op.children[0], segment, ctx):
            key = row[:key_count]
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [
                    _Accumulator(agg.func) for agg, _ in op.aggregates
                ]
                groups[key] = accumulators
                if charge is not None:
                    charge(1)  # one buffered group ≈ one row of state
            for accumulator, state in zip(accumulators, row[key_count:]):
                accumulator.combine(state)
        if not groups and not op.group_keys:
            if segment == COORDINATOR_SEGMENT:
                yield tuple(
                    _Accumulator(agg.func).result()
                    for agg, _ in op.aggregates
                )
            return
        for key, accumulators in groups.items():
            yield key + tuple(acc.result() for acc in accumulators)
        return

    agg_arg_fns: list[Callable[[tuple], Any]] = []
    for agg, _name in op.aggregates:
        if agg.arg is None:
            agg_arg_fns.append(lambda row: 1)  # COUNT(*)
        else:
            agg_arg_fns.append(
                compile_expression(agg.arg, layout, ctx.params)
            )

    groups = {}
    for row in build_iterator(op.children[0], segment, ctx):
        key = tuple(fn(row) for fn in key_fns)
        accumulators = groups.get(key)
        if accumulators is None:
            accumulators = [
                _Accumulator(agg.func) for agg, _ in op.aggregates
            ]
            groups[key] = accumulators
            if charge is not None:
                charge(1)  # one buffered group ≈ one row of state
        for accumulator, arg_fn in zip(accumulators, agg_arg_fns):
            accumulator.add(arg_fn(row))

    if op.mode == "partial":
        # Emit per-segment transition rows; a scalar partial emits one row
        # per segment even on empty input so the final stage always has
        # states to combine.
        if not groups and not op.group_keys:
            yield tuple(
                _Accumulator(agg.func).transition()
                for agg, _ in op.aggregates
            )
            return
        for key, accumulators in groups.items():
            yield key + tuple(acc.transition() for acc in accumulators)
        return

    if not groups and not op.group_keys:
        # Scalar aggregation over empty input yields one row; the child is
        # always gathered to the coordinator, so emit there only.
        if segment == COORDINATOR_SEGMENT:
            yield tuple(
                _Accumulator(agg.func).result() for agg, _ in op.aggregates
            )
        return
    for key, accumulators in groups.items():
        yield key + tuple(acc.result() for acc in accumulators)


def _sort_key(keys_asc: list[bool]):
    """Sort key with SQL NULL placement: NULLs last ascending, first
    descending (PostgreSQL default)."""

    class _Wrapped:
        __slots__ = ("values",)

        def __init__(self, values):
            self.values = values

        def __lt__(self, other: "_Wrapped") -> bool:
            for (a, b), ascending in zip(
                zip(self.values, other.values), keys_asc
            ):
                if a == b:
                    continue
                if a is None:
                    return not ascending
                if b is None:
                    return ascending
                return (a < b) if ascending else (b < a)
            return False

    return _Wrapped


def _sort_iter(op: phys.Sort, segment: int, ctx: ExecContext) -> RowIter:
    layout = op.children[0].output_layout()
    key_fns = [
        compile_expression(expr, layout, ctx.params) for expr, _ in op.keys
    ]
    ascending = [asc for _, asc in op.keys]
    wrapper = _sort_key(ascending)
    rows = list(build_iterator(op.children[0], segment, ctx))
    if ctx.limits.active:
        ctx.limits.charge_rows(len(rows))
    rows.sort(key=lambda row: wrapper([fn(row) for fn in key_fns]))
    yield from rows


def _limit_iter(op: phys.Limit, segment: int, ctx: ExecContext) -> RowIter:
    remaining = op.count
    if remaining <= 0:
        return
    for row in build_iterator(op.children[0], segment, ctx):
        yield row
        remaining -= 1
        if remaining == 0:
            return


def _append_iter(op: phys.Append, segment: int, ctx: ExecContext) -> RowIter:
    for child in op.children:
        yield from build_iterator(child, segment, ctx)


def _update_iter(op: phys.Update, segment: int, ctx: ExecContext) -> RowIter:
    child = op.children[0]
    layout = child.output_layout()
    target = op.target
    alias = op.target_alias
    old_indices = [
        layout.resolve(ColumnRef(name, alias))
        for name in target.schema.column_names
    ]
    assignment_fns = {
        column: compile_expression(expr, layout, ctx.params)
        for column, expr in op.assignments
    }
    column_names = target.schema.column_names

    updates: list[tuple[tuple, tuple]] = []
    for row in build_iterator(child, segment, ctx):
        old_row = tuple(row[i] for i in old_indices)
        new_values = []
        for i, name in enumerate(column_names):
            fn = assignment_fns.get(name)
            new_values.append(fn(row) if fn is not None else old_row[i])
        updates.append((old_row, tuple(new_values)))

    if segment != COORDINATOR_SEGMENT:
        # The child stream is gathered; only the coordinator applies.
        if updates:
            raise ExecutionError(
                "Update received rows on a non-coordinator segment"
            )
        return

    store = ctx.storage.store(target.oid)
    _apply_updates(store, target, updates, ctx)
    yield (len(updates),)


def _apply_updates(store, target: TableDescriptor, updates, ctx: ExecContext):
    """Delete-then-insert: re-routes rows whose partition key or
    distribution key changed."""
    from ..storage.distribution import segment_for

    deletions: dict[tuple[int, int], list[tuple]] = {}
    for old_row, _ in updates:
        if target.is_partitioned:
            leaf = target.route_row(old_row)
            assert leaf is not None
            oid = target.leaf_oid(leaf)
        else:
            oid = target.oid
        dist = target.distribution
        if dist.kind == "replicated":
            segments = range(ctx.num_segments)
        else:
            col_idx = target.schema.column_index(dist.column)  # type: ignore[arg-type]
            segments = [segment_for(old_row[col_idx], ctx.num_segments)]
        for seg in segments:
            deletions.setdefault((seg, oid), []).append(old_row)
    for (seg, oid), rows in deletions.items():
        store.delete_from_leaf(seg, oid, rows)
    for _, new_row in updates:
        store.insert(new_row)


def _delete_iter(op: phys.Delete, segment: int, ctx: ExecContext) -> RowIter:
    child = op.children[0]
    layout = child.output_layout()
    target = op.target
    old_indices = [
        layout.resolve(ColumnRef(name, op.target_alias))
        for name in target.schema.column_names
    ]
    victims: list[tuple] = []
    seen: set[tuple] = set()
    for row in build_iterator(child, segment, ctx):
        victim = tuple(row[i] for i in old_indices)
        # a USING join may match the same target row several times; it is
        # still deleted once (PostgreSQL semantics)
        if victim not in seen:
            seen.add(victim)
            victims.append(victim)

    if segment != COORDINATOR_SEGMENT:
        if victims:
            raise ExecutionError(
                "Delete received rows on a non-coordinator segment"
            )
        return

    from ..storage.distribution import segment_for

    store = ctx.storage.store(target.oid)
    deletions: dict[tuple[int, int], list[tuple]] = {}
    for victim in victims:
        if target.is_partitioned:
            leaf = target.route_row(victim)
            assert leaf is not None
            oid = target.leaf_oid(leaf)
        else:
            oid = target.oid
        dist = target.distribution
        if dist.kind == "replicated":
            segments = range(ctx.num_segments)
        else:
            col_idx = target.schema.column_index(dist.column)  # type: ignore[arg-type]
            segments = [segment_for(victim[col_idx], ctx.num_segments)]
        for seg in segments:
            deletions.setdefault((seg, oid), []).append(victim)
    for (seg, oid), rows in deletions.items():
        store.delete_from_leaf(seg, oid, rows)
    yield (len(victims),)


# ---------------------------------------------------------------------------
# Batch-mode (vectorized) execution
# ---------------------------------------------------------------------------
#
# The batch pipeline is the same Volcano tree pulling lists of tuples
# instead of single tuples: scans slice batches straight out of the heap
# lists, and filters / projections / joins / aggregation loop tightly over
# one batch per Python frame.  Accounting stays exact: metrics charge
# ``len(batch)`` per node, guardrail ticks advance by ``len(batch)``,
# ``max_rows`` charges replicate the row path's charge-by-charge crossing,
# and Limit truncates the final batch so downstream operators see the
# same rows as row-at-a-time execution.  Fault-injection ``scan_row`` /
# ``motion_send`` points fire once per batch.
#
# The one place batch counters can legally diverge from row counters is a
# LIMIT that abandons its child mid-stream: the child has already produced
# its current batch (up to batch_size - 1 extra rows show in that child's
# ``rows_out`` / ``rows_scanned``).  Result rows are identical.


def build_batches(
    op: phys.PhysicalOp, segment: int, ctx: ExecContext
) -> BatchIter:
    """Batch-mode counterpart of :func:`build_iterator`: the iterator
    tree for ``op`` on one segment, yielding row batches of (at most)
    ``ctx.batch_size`` rows."""
    inner = ctx.metrics.instrument_batches(
        op, segment, _raw_batches(op, segment, ctx)
    )
    if ctx.limits.active:
        return _guarded_batches(ctx.limits, inner)
    return inner


def _guarded_batches(limits, inner: BatchIter) -> BatchIter:
    tick_rows = limits.tick_rows
    for batch in inner:
        tick_rows(len(batch))
        yield batch


def _raw_batches(
    op: phys.PhysicalOp, segment: int, ctx: ExecContext
) -> BatchIter:
    factory = EXTRA_BATCH_ITERATORS.get(type(op))
    if factory is not None:
        return factory(op, segment, ctx)
    if type(op) in EXTRA_ITERATORS:
        return _rebatch(
            EXTRA_ITERATORS[type(op)](op, segment, ctx), ctx.batch_size
        )
    if isinstance(op, phys.Motion):
        return _slice_batches(
            ctx.motion_rows(id(op), segment), ctx.batch_size
        )
    if isinstance(op, phys.Scan):
        return _scan_batches(op, segment, ctx)
    if isinstance(op, phys.EmptyScan):
        return iter(())
    if isinstance(op, phys.LeafScan):
        return _leaf_scan_batches(op, segment, ctx)
    if isinstance(op, phys.DynamicScan):
        return _dynamic_scan_batches(op, segment, ctx)
    if isinstance(op, phys.PartitionSelector):
        return _partition_selector_batches(op, segment, ctx)
    if isinstance(op, phys.Sequence):
        return _sequence_batches(op, segment, ctx)
    if isinstance(op, phys.Filter):
        return _filter_batches(op, segment, ctx)
    if isinstance(op, phys.Project):
        return _project_batches(op, segment, ctx)
    if isinstance(op, phys.HashJoin):
        return _hash_join_batches(op, segment, ctx)
    if isinstance(op, phys.HashAgg):
        return _hash_agg_batches(op, segment, ctx)
    if isinstance(op, phys.Sort):
        return _sort_batches(op, segment, ctx)
    if isinstance(op, phys.Limit):
        return _limit_batches(op, segment, ctx)
    if isinstance(op, phys.Append):
        return _append_batches(op, segment, ctx)
    # NLJoin, Update, Delete and anything unknown keep their row-at-a-time
    # implementation (they materialize or mutate — batching buys nothing);
    # re-batching preserves their exact counter behaviour.
    return _rebatch(_raw_iterator(op, segment, ctx), ctx.batch_size)


def _slice_batches(rows: list, batch_size: int) -> BatchIter:
    """Batches sliced out of an already-materialized row list."""
    for start in range(0, len(rows), batch_size):
        yield rows[start : start + batch_size]


def _rebatch(inner: RowIter, batch_size: int) -> BatchIter:
    """Accumulate a row iterator into batches (compat shim for operators
    without a native batch implementation)."""
    batch: list = []
    append = batch.append
    for row in inner:
        append(row)
        if len(batch) >= batch_size:
            yield batch
            batch = []
            append = batch.append
    if batch:
        yield batch


def _scan_batches(op: phys.Scan, segment: int, ctx: ExecContext) -> BatchIter:
    faults = ctx.faults if ctx.faults.active else None
    count = 0
    for batch in ctx.storage.scan_table_batches(
        segment, op.table.oid, batch_size=ctx.batch_size
    ):
        if faults is not None:
            faults.maybe_fire(SCAN_ROW, segment)
        count += len(batch)
        yield batch
    ctx.metrics.record_scan_rows(op, op.table, segment, count)


def _leaf_scan_batches(
    op: phys.LeafScan, segment: int, ctx: ExecContext
) -> BatchIter:
    if op.guard_scan_id is not None:
        selected = ctx.channel(op.guard_scan_id, segment).peek()
        if op.leaf_oid not in selected:
            return
    ctx.metrics.record_leaf(op, op.table, op.leaf_oid, segment)
    faults = ctx.faults if ctx.faults.active else None
    count = 0
    for batch in ctx.storage.scan_table_batches(
        segment, op.table.oid, [op.leaf_oid], ctx.batch_size
    ):
        if faults is not None:
            faults.maybe_fire(SCAN_ROW, segment)
        count += len(batch)
        yield batch
    ctx.metrics.record_scan_rows(op, op.table, segment, count)


def _dynamic_scan_batches(
    op: phys.DynamicScan, segment: int, ctx: ExecContext
) -> BatchIter:
    ctx.metrics.node(op).part_scan_id = op.part_scan_id
    oids = ctx.channel(op.part_scan_id, segment).consume()
    faults = ctx.faults if ctx.faults.active else None
    for oid in oids:
        ctx.metrics.record_leaf(op, op.table, oid, segment)
        count = 0
        for batch in ctx.storage.scan_table_batches(
            segment, op.table.oid, [oid], ctx.batch_size
        ):
            if faults is not None:
                faults.maybe_fire(SCAN_ROW, segment)
            count += len(batch)
            yield batch
        ctx.metrics.record_scan_rows(op, op.table, segment, count)


def _partition_selector_batches(
    op: phys.PartitionSelector, segment: int, ctx: ExecContext
) -> BatchIter:
    spec = op.spec
    channel = ctx.channel(spec.part_scan_id, segment)
    child = op.children[0] if op.children else None

    cache = ctx.cache
    if cache is not None:
        cached = cache.cached_oids(spec.part_scan_id, segment)
        if cached is not None:
            ctx.metrics.node(op).part_scan_id = spec.part_scan_id
            ctx.metrics.record_selector(
                spec.part_scan_id, "cached", spec.table.num_leaves
            )
            for oid in cached:
                partition_propagation(ctx, spec.part_scan_id, segment, oid)
            if ctx.faults.active:
                ctx.faults.maybe_fire(CHANNEL_CLOSE, segment)
            channel.close()
            if child is not None:
                yield from build_batches(child, segment, ctx)
            return

    child_layout = child.output_layout() if child is not None else None
    program = _SelectorProgram(spec, child_layout, ctx.params)
    ctx.metrics.node(op).part_scan_id = spec.part_scan_id
    ctx.metrics.record_selector(
        spec.part_scan_id,
        "dynamic" if program.has_streaming else "static",
        spec.table.num_leaves,
    )

    if not program.has_streaming:
        if spec.has_predicates:
            oids = program.constant_oids()
        else:
            oids = partition_expansion(ctx.catalog, spec.table.oid)
        for oid in oids:
            partition_propagation(ctx, spec.part_scan_id, segment, oid)
        if ctx.faults.active:
            ctx.faults.maybe_fire(CHANNEL_CLOSE, segment)
        channel.close()
        if child is not None:
            yield from build_batches(child, segment, ctx)
        return

    if child is None:
        raise ExecutionError(
            "streaming PartitionSelector requires an input (join predicate "
            "over no tuples)"
        )
    oids_for_row = program.oids_for_row
    for batch in build_batches(child, segment, ctx):
        for row in batch:
            for oid in oids_for_row(row):
                partition_propagation(ctx, spec.part_scan_id, segment, oid)
        yield batch
    if ctx.faults.active:
        ctx.faults.maybe_fire(CHANNEL_CLOSE, segment)
    channel.close()


def _sequence_batches(
    op: phys.Sequence, segment: int, ctx: ExecContext
) -> BatchIter:
    for child in op.children[:-1]:
        for _ in build_batches(child, segment, ctx):
            pass
    yield from build_batches(op.children[-1], segment, ctx)


def _filter_batches(
    op: phys.Filter, segment: int, ctx: ExecContext
) -> BatchIter:
    layout = op.children[0].output_layout()
    predicate = compile_predicate(op.predicate, layout, ctx.params)
    for batch in build_batches(op.children[0], segment, ctx):
        out = [row for row in batch if predicate(row)]
        if out:
            yield out


def _project_batches(
    op: phys.Project, segment: int, ctx: ExecContext
) -> BatchIter:
    layout = op.children[0].output_layout()
    funcs = [
        compile_expression(expr, layout, ctx.params) for expr, _ in op.items
    ]
    for batch in build_batches(op.children[0], segment, ctx):
        if not funcs:
            yield [() for _ in batch]
            continue
        # column-at-a-time: one tight list comprehension per expression,
        # then a C-level zip back into row tuples
        yield list(zip(*[[func(row) for row in batch] for func in funcs]))


def _hash_join_batches(
    op: phys.HashJoin, segment: int, ctx: ExecContext
) -> BatchIter:
    build_layout = op.build.output_layout()
    probe_layout = op.probe.output_layout()
    build_fns = [
        compile_expression(k, build_layout, ctx.params) for k in op.build_keys
    ]
    probe_fns = [
        compile_expression(k, probe_layout, ctx.params) for k in op.probe_keys
    ]
    residual = None
    if op.residual is not None:
        residual = compile_predicate(
            op.residual, build_layout.concat(probe_layout), ctx.params
        )

    limits = ctx.limits if ctx.limits.active else None
    single_key = len(build_fns) == 1 and len(probe_fns) == 1
    table: dict = {}
    if single_key:
        # scalar keys: no per-row tuple allocation, no NULL-scan genexpr
        build_fn = build_fns[0]
        for batch in build_batches(op.build, segment, ctx):
            added = 0
            for row in batch:
                key = build_fn(row)
                if key is None:
                    continue  # NULL keys never join
                table.setdefault(key, []).append(row)
                added += 1
            if limits is not None and added:
                limits.charge_rows_batch(added)
    else:
        for batch in build_batches(op.build, segment, ctx):
            added = 0
            for row in batch:
                key = tuple(fn(row) for fn in build_fns)
                if any(v is None for v in key):
                    continue  # NULL keys never join
                table.setdefault(key, []).append(row)
                added += 1
            if limits is not None and added:
                limits.charge_rows_batch(added)  # build side is materialized

    semi = op.kind == "semi"
    batch_size = ctx.batch_size
    probe_fn = probe_fns[0] if single_key else None
    out: list[tuple] = []
    for probe_batch in build_batches(op.probe, segment, ctx):
        for probe_row in probe_batch:
            if single_key:
                key = probe_fn(probe_row)
                if key is None:
                    continue
            else:
                key = tuple(fn(probe_row) for fn in probe_fns)
                if any(v is None for v in key):
                    continue
            matches = table.get(key)
            if not matches:
                continue
            if semi:
                if residual is None:
                    out.append(probe_row)
                else:
                    for build_row in matches:
                        if residual(build_row + probe_row):
                            out.append(probe_row)
                            break
            else:
                for build_row in matches:
                    combined = build_row + probe_row
                    if residual is None or residual(combined):
                        out.append(combined)
        if len(out) >= batch_size:
            yield out
            out = []
    if out:
        yield out


def _hash_agg_batches(
    op: phys.HashAgg, segment: int, ctx: ExecContext
) -> BatchIter:
    layout = op.children[0].output_layout()
    key_fns = [
        compile_expression(key, layout, ctx.params) for key in op.group_keys
    ]
    limits = ctx.limits if ctx.limits.active else None
    if op.mode == "final":
        key_count = len(op.group_keys)
        groups: dict[tuple, list[_Accumulator]] = {}
        for batch in build_batches(op.children[0], segment, ctx):
            new_groups = 0
            for row in batch:
                key = row[:key_count]
                accumulators = groups.get(key)
                if accumulators is None:
                    accumulators = [
                        _Accumulator(agg.func) for agg, _ in op.aggregates
                    ]
                    groups[key] = accumulators
                    new_groups += 1
                for accumulator, state in zip(accumulators, row[key_count:]):
                    accumulator.combine(state)
            if limits is not None and new_groups:
                limits.charge_rows_batch(new_groups)
        if not groups and not op.group_keys:
            if segment == COORDINATOR_SEGMENT:
                yield [
                    tuple(
                        _Accumulator(agg.func).result()
                        for agg, _ in op.aggregates
                    )
                ]
            return
        yield from _slice_batches(
            [
                key + tuple(acc.result() for acc in accumulators)
                for key, accumulators in groups.items()
            ],
            ctx.batch_size,
        )
        return

    agg_arg_fns: list[Callable[[tuple], Any]] = []
    for agg, _name in op.aggregates:
        if agg.arg is None:
            agg_arg_fns.append(lambda row: 1)  # COUNT(*)
        else:
            agg_arg_fns.append(
                compile_expression(agg.arg, layout, ctx.params)
            )

    groups = {}
    for batch in build_batches(op.children[0], segment, ctx):
        new_groups = 0
        for row in batch:
            key = tuple(fn(row) for fn in key_fns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [
                    _Accumulator(agg.func) for agg, _ in op.aggregates
                ]
                groups[key] = accumulators
                new_groups += 1
            for accumulator, arg_fn in zip(accumulators, agg_arg_fns):
                accumulator.add(arg_fn(row))
        if limits is not None and new_groups:
            limits.charge_rows_batch(new_groups)

    if op.mode == "partial":
        if not groups and not op.group_keys:
            yield [
                tuple(
                    _Accumulator(agg.func).transition()
                    for agg, _ in op.aggregates
                )
            ]
            return
        yield from _slice_batches(
            [
                key + tuple(acc.transition() for acc in accumulators)
                for key, accumulators in groups.items()
            ],
            ctx.batch_size,
        )
        return

    if not groups and not op.group_keys:
        if segment == COORDINATOR_SEGMENT:
            yield [
                tuple(
                    _Accumulator(agg.func).result()
                    for agg, _ in op.aggregates
                )
            ]
        return
    yield from _slice_batches(
        [
            key + tuple(acc.result() for acc in accumulators)
            for key, accumulators in groups.items()
        ],
        ctx.batch_size,
    )


def _sort_batches(op: phys.Sort, segment: int, ctx: ExecContext) -> BatchIter:
    layout = op.children[0].output_layout()
    key_fns = [
        compile_expression(expr, layout, ctx.params) for expr, _ in op.keys
    ]
    ascending = [asc for _, asc in op.keys]
    wrapper = _sort_key(ascending)
    rows: list[tuple] = []
    for batch in build_batches(op.children[0], segment, ctx):
        rows.extend(batch)
    # one gulp charge, exactly like the row path's _sort_iter
    if ctx.limits.active:
        ctx.limits.charge_rows(len(rows))
    rows.sort(key=lambda row: wrapper([fn(row) for fn in key_fns]))
    yield from _slice_batches(rows, ctx.batch_size)


def _limit_batches(op: phys.Limit, segment: int, ctx: ExecContext) -> BatchIter:
    remaining = op.count
    if remaining <= 0:
        return
    for batch in build_batches(op.children[0], segment, ctx):
        if len(batch) >= remaining:
            # split the final batch: downstream sees exactly the same rows
            # as row-at-a-time execution
            yield batch[:remaining]
            return
        remaining -= len(batch)
        yield batch


def _append_batches(
    op: phys.Append, segment: int, ctx: ExecContext
) -> BatchIter:
    for child in op.children:
        yield from build_batches(child, segment, ctx)
