"""Slice-at-a-time MPP execution with fault tolerance.

A plan is cut at Motion boundaries.  Motions are executed deepest-first:
the child subtree runs once per segment and its output is routed into
per-segment receive buffers —

* **Gather** → everything to the coordinator (segment 0);
* **Broadcast** → a copy to every segment;
* **Redistribute** → by hash of the motion's key expressions.

The consuming slice then runs on every segment, reading buffered rows at
the Motion node.  Because producer PartitionSelectors and consumer
DynamicScans are never separated by a Motion (the plan validator enforces
the paper's Figure 12 rule), every OID channel is filled and closed within
one (slice, segment) instance before its consumer opens — the shared-memory
contract of Section 2.2.

**Failure handling** rides on the same invariant: when a segment instance
dies (a :class:`~repro.errors.SegmentFailure`, real or injected), the
whole *slice* is retried.  The slice's partition-OID channels and its
motion send buffer are discarded and rebuilt locally on the re-run — no
cross-slice coordination is needed, because no channel ever crosses a
Motion.  Transient failures retry in place with exponential backoff;
persistent ones first fail the segment over to its mirror
(:class:`~repro.resilience.SegmentHealth`), after which storage reads for
that segment are served from the mirror copy and the retry produces
results identical to a fault-free run.
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Callable, Sequence

from ..catalog import Catalog
from ..errors import SegmentFailure
from ..expr.eval import compile_expression
from ..obs import trace as obs_trace
from ..obs.metrics import MetricsCollector, ScanTracker
from ..obs.render import render_explain_analyze
from ..physical import ops as phys
from ..physical.plan import Plan
from ..resilience.faults import MOTION_SEND, SLICE_START, FaultInjector
from ..resilience.guardrails import QueryLimits, RetryPolicy
from ..storage import StorageManager
from ..storage.distribution import segment_for, stable_hash
from .context import COORDINATOR_SEGMENT, ExecContext
from .iterators import build_iterator


class ExecutionResult:
    """Rows plus the measurements the paper's experiments report.

    ``metrics`` is the full per-node :class:`MetricsCollector`;
    ``tracker``, ``partitions_scanned`` and ``rows_scanned`` are thin
    aliases over it, kept for older callers.
    """

    def __init__(
        self,
        rows: list[tuple],
        column_names: list[str],
        metrics: MetricsCollector,
        elapsed_seconds: float,
    ):
        self.rows = rows
        self.column_names = column_names
        self.metrics = metrics
        self.elapsed_seconds = elapsed_seconds
        #: the lifecycle :class:`~repro.obs.Tracer` when the statement ran
        #: with ``trace=True``; ``None`` otherwise
        self.trace = None

    @property
    def tracker(self) -> ScanTracker:
        """Deprecated aggregate view; prefer :attr:`metrics`."""
        warnings.warn(
            "ExecutionResult.tracker is deprecated; use the per-node "
            "metrics instead (result.metrics, result.partitions_scanned(), "
            "result.rows_scanned)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.metrics.tracker

    def partitions_scanned(self, table_name: str | None = None) -> int:
        return self.metrics.partitions_scanned(table_name)

    @property
    def rows_scanned(self) -> int:
        return self.metrics.total_rows_scanned

    def explain_analyze(self) -> str:
        """The executed plan annotated with this run's actuals."""
        return render_explain_analyze(self.metrics)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return (
            f"ExecutionResult({len(self.rows)} rows, "
            f"{self.rows_scanned} rows scanned)"
        )


class MppExecutor:
    """Executes validated physical plans over the segment simulator."""

    def __init__(
        self,
        catalog: Catalog,
        storage: StorageManager,
        num_segments: int,
        faults: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
    ):
        self.catalog = catalog
        self.storage = storage
        self.num_segments = num_segments
        self.faults = faults if faults is not None else FaultInjector()
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )

    def execute(
        self,
        plan: Plan,
        params: Sequence[Any] | None = None,
        analyze: bool = False,
        limits: QueryLimits | None = None,
    ) -> ExecutionResult:
        """Run the plan; ``analyze=True`` additionally collects per-node
        wall-clock timings (row and partition counters are always on).
        ``limits`` attaches the per-query guardrails (timeout, buffered-row
        budget, cancellation)."""
        plan.validate()
        metrics = MetricsCollector(self.num_segments, timing=analyze)
        metrics.register_plan(plan)
        limits = limits if limits is not None else QueryLimits()
        limits.start()
        started = time.perf_counter()
        ctx = ExecContext(
            self.catalog,
            self.storage,
            self.num_segments,
            params,
            metrics,
            faults=self.faults,
            limits=limits,
        )
        # Slice k (k >= 1) is the subtree below the k-th Motion in
        # post-order; slice 0 is the root slice.
        for slice_id, motion in enumerate(
            _motions_deepest_first(plan.root), start=1
        ):
            limits.check()
            slice_started = time.perf_counter()
            slice_scan_ids = _slice_part_scan_ids(motion.children[0])
            with obs_trace.span(f"slice:{slice_id}", motion=motion.name):
                self._run_slice_with_retry(
                    ctx,
                    slice_id,
                    run=lambda motion=motion: self._run_motion(motion, ctx),
                    reset=lambda motion=motion, ids=slice_scan_ids: (
                        ctx.reset_slice(ids, motion_id=id(motion))
                    ),
                )
            metrics.record_slice(
                slice_id,
                f"below {motion.name}",
                time.perf_counter() - slice_started,
            )
        limits.check()
        root_started = time.perf_counter()
        root_scan_ids = _slice_part_scan_ids(plan.root)
        with obs_trace.span("slice:0", motion="root"):
            rows: list[tuple] = self._run_slice_with_retry(
                ctx,
                0,
                run=lambda: self._run_root(plan.root, ctx),
                reset=lambda: ctx.reset_slice(root_scan_ids),
            )
        metrics.record_slice(0, "root", time.perf_counter() - root_started)
        limits.check()
        elapsed = time.perf_counter() - started
        metrics.record_fault_points(ctx.faults.snapshot())
        metrics.record_segment_health(self.storage.health.status())
        metrics.finish(elapsed)
        names = [name for _, name in plan.root.output_layout().slots]
        return ExecutionResult(rows, names, metrics, elapsed)

    # -- slices ---------------------------------------------------------------

    def _run_root(self, root: phys.PhysicalOp, ctx: ExecContext) -> list[tuple]:
        faults = ctx.faults if ctx.faults.active else None
        rows: list[tuple] = []
        for segment in range(self.num_segments):
            if faults is not None:
                faults.maybe_fire(SLICE_START, segment)
            rows.extend(build_iterator(root, segment, ctx))
        return rows

    def _run_slice_with_retry(
        self,
        ctx: ExecContext,
        slice_id: int,
        run: Callable[[], Any],
        reset: Callable[[], Any],
    ) -> Any:
        """Run one slice, retrying on :class:`SegmentFailure`.

        A transient failure retries in place after exponential backoff; a
        persistent one fails the segment over to its mirror first.  The
        slice's local state (OID channels, motion send buffer) is discarded
        before each retry, so the re-run rebuilds it from scratch — the
        Figure 12 co-location invariant makes this purely slice-local.
        """
        policy = self.retry_policy
        attempt = 0
        while True:
            try:
                return run()
            except SegmentFailure as failure:
                attempt += 1
                if attempt > policy.max_retries:
                    raise
                if not self._recover(failure, ctx):
                    raise
                ctx.metrics.record_retry(
                    slice_id, attempt, failure.segment, failure.point
                )
                reset()
                policy.backoff(attempt)

    def _recover(self, failure: SegmentFailure, ctx: ExecContext) -> bool:
        """Attempt recovery from one segment failure.

        Transient faults need no state change — the retry itself is the
        recovery.  Persistent faults mark the primary down; recovery
        succeeds iff the mirror can take over.
        """
        if failure.transient:
            return True
        health = self.storage.health
        reason = failure.point or "segment failure"
        mirror_ok = health.failover(failure.segment, reason)
        ctx.metrics.record_failover(failure.segment, reason)
        return mirror_ok

    # -- motions ------------------------------------------------------------

    def _run_motion(self, motion: phys.Motion, ctx: ExecContext) -> None:
        buffer = ctx.motion_buffer(id(motion))
        child = motion.children[0]
        record = ctx.metrics.record_motion
        faults = ctx.faults if ctx.faults.active else None
        charge = ctx.limits.charge_rows if ctx.limits.active else None
        if isinstance(motion, phys.RedistributeMotion):
            layout = child.output_layout()
            hash_fns = [
                compile_expression(expr, layout, ctx.params)
                for expr in motion.hash_exprs
            ]
        for segment in range(self.num_segments):
            if faults is not None:
                faults.maybe_fire(SLICE_START, segment)
            for row in build_iterator(child, segment, ctx):
                if faults is not None:
                    faults.maybe_fire(MOTION_SEND, segment)
                if isinstance(motion, phys.GatherMotion):
                    buffer[COORDINATOR_SEGMENT].append(row)
                    record(motion, "gather", COORDINATOR_SEGMENT, row)
                    if charge is not None:
                        charge(1)
                elif isinstance(motion, phys.BroadcastMotion):
                    for target in range(self.num_segments):
                        buffer[target].append(row)
                        record(motion, "broadcast", target, row)
                    if charge is not None:
                        charge(self.num_segments)
                else:
                    values = tuple(fn(row) for fn in hash_fns)
                    if len(values) == 1:
                        target = segment_for(values[0], self.num_segments)
                    else:
                        target = (
                            sum(stable_hash(v) for v in values)
                            % self.num_segments
                        )
                    buffer[target].append(row)
                    record(motion, "redistribute", target, row)
                    if charge is not None:
                        charge(1)


def _motions_deepest_first(root: phys.PhysicalOp) -> list[phys.Motion]:
    """Motions in post-order, so producers are buffered before consumers."""
    found: list[phys.Motion] = []

    def visit(op: phys.PhysicalOp) -> None:
        for child in op.children:
            visit(child)
        if isinstance(op, phys.Motion):
            found.append(op)

    visit(root)
    return found


def _slice_part_scan_ids(root: phys.PhysicalOp) -> set[int]:
    """Partition-OID channel ids owned by one slice.

    Walks the subtree without descending through Motions (their subtrees
    are other slices, already complete).  Because no Motion separates a
    PartitionSelector from its DynamicScan, these ids are exactly the
    channels a slice retry must discard and rebuild.
    """
    from .lowering import PropagatingProject

    ids: set[int] = set()

    def visit(op: phys.PhysicalOp) -> None:
        if isinstance(op, phys.PartitionSelector):
            ids.add(op.spec.part_scan_id)
        elif isinstance(op, phys.DynamicScan):
            ids.add(op.part_scan_id)
        elif isinstance(op, PropagatingProject):
            ids.add(op.produces_part_scan_id)
        elif (
            isinstance(op, phys.LeafScan) and op.guard_scan_id is not None
        ):
            ids.add(op.guard_scan_id)
        for child in op.children:
            if not isinstance(child, phys.Motion):
                visit(child)

    if not isinstance(root, phys.Motion):
        visit(root)
    else:
        # A Motion as slice root reads its buffer only; no channels.
        pass
    return ids
