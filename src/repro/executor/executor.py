"""Slice-at-a-time MPP execution with per-segment parallelism and fault
tolerance.

A plan is cut at Motion boundaries.  Motions are executed deepest-first:
the child subtree runs once per segment and its output is routed into
per-segment receive queues —

* **Gather** → everything to the coordinator (segment 0);
* **Broadcast** → a copy to every segment;
* **Redistribute** → by hash of the motion's key expressions.

The consuming slice then runs on every segment, reading buffered rows at
the Motion node.  Because producer PartitionSelectors and consumer
DynamicScans are never separated by a Motion (the plan validator enforces
the paper's Figure 12 rule), every OID channel is filled and closed within
one (slice, segment) instance before its consumer opens — the shared-memory
contract of Section 2.2.

**Parallelism** follows the same cut: each slice's per-segment instances
share nothing but the Motion queues and their own segment's channels, so
the :class:`~repro.executor.scheduler.SegmentScheduler` runs them
concurrently on a worker pool (``workers > 1``) while slices stay
sequential — producers always close their Motion queues before consumers
drain them.  Results are deterministic regardless of thread interleaving:
instances are collected in segment order, and
:class:`~repro.executor.queues.TupleQueue` merges Motion rows in
producer-segment order, so parallel output is byte-identical to serial.
The default is ``workers=1``, which bypasses the pool entirely.

**Failure handling** rides on the Figure 12 invariant: when a segment
instance dies (a :class:`~repro.errors.SegmentFailure`, real or injected),
only that *instance* is retried.  The failed segment's partition-OID
channels and its producer run in the Motion send queues are discarded and
rebuilt locally on the re-run — no cross-segment coordination is needed,
because no channel ever crosses a Motion and every queue keeps per-producer
runs.  Transient failures retry in place with exponential backoff;
persistent ones first fail the segment over to its mirror
(:class:`~repro.resilience.SegmentHealth`), after which storage reads for
that segment are served from the mirror copy and the retry produces
results identical to a fault-free run.  Healthy segments' instances are
never re-run.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from ..catalog import Catalog
from ..errors import SegmentFailure
from ..expr.eval import compile_expression
from ..obs import trace as obs_trace
from ..obs.metrics import MetricsCollector
from ..obs.render import render_explain_analyze
from ..physical import ops as phys
from ..physical.plan import Plan
from ..resilience.faults import MOTION_SEND, SLICE_START, FaultInjector
from ..resilience.guardrails import QueryLimits, RetryPolicy
from ..storage import StorageManager
from ..storage.distribution import segment_for, stable_hash
from .context import COORDINATOR_SEGMENT, ExecContext
from .iterators import build_batches, build_iterator
from .queues import MotionBuffer
from .scheduler import SegmentScheduler


class ExecutionResult:
    """Rows plus the measurements the paper's experiments report.

    ``metrics`` is the full per-node :class:`MetricsCollector`;
    ``partitions_scanned`` and ``rows_scanned`` are thin aliases over it,
    kept for older callers.
    """

    def __init__(
        self,
        rows: list[tuple],
        column_names: list[str],
        metrics: MetricsCollector,
        elapsed_seconds: float,
    ):
        self.rows = rows
        self.column_names = column_names
        self.metrics = metrics
        self.elapsed_seconds = elapsed_seconds
        #: the lifecycle :class:`~repro.obs.Tracer` when the statement ran
        #: with ``trace=True``; ``None`` otherwise
        self.trace = None

    def partitions_scanned(self, table_name: str | None = None) -> int:
        return self.metrics.partitions_scanned(table_name)

    @property
    def rows_scanned(self) -> int:
        return self.metrics.total_rows_scanned

    def explain_analyze(self) -> str:
        """The executed plan annotated with this run's actuals."""
        return render_explain_analyze(self.metrics)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return (
            f"ExecutionResult({len(self.rows)} rows, "
            f"{self.rows_scanned} rows scanned)"
        )


class MppExecutor:
    """Executes validated physical plans over the segment simulator."""

    def __init__(
        self,
        catalog: Catalog,
        storage: StorageManager,
        num_segments: int,
        faults: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        workers: int = 1,
        batch_size: int = 1024,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.catalog = catalog
        self.storage = storage
        self.num_segments = num_segments
        self.faults = faults if faults is not None else FaultInjector()
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        #: default segment-scheduler pool size (1 = serial); per-query
        #: override via ``execute(..., workers=N)``
        self.workers = workers
        #: default vectorized batch width (1 = row-at-a-time); per-query
        #: override via ``execute(..., batch_size=N)``
        self.batch_size = batch_size

    def execute(
        self,
        plan: Plan,
        params: Sequence[Any] | None = None,
        analyze: bool = False,
        limits: QueryLimits | None = None,
        workers: int | None = None,
        cache=None,
        faults: FaultInjector | None = None,
        scheduler: SegmentScheduler | None = None,
        activity=None,
        batch_size: int | None = None,
    ) -> ExecutionResult:
        """Run the plan; ``analyze=True`` additionally collects per-node
        wall-clock timings (row and partition counters are always on).
        ``limits`` attaches the per-query guardrails (timeout, buffered-row
        budget, cancellation).  ``workers`` overrides the executor's
        default pool size for this query (1 = serial).  ``cache`` is the
        statement's :class:`~repro.cache.CacheSession` (None = cache off):
        PartitionSelector iterators replay its remembered OID sets, and on
        a successful cache-miss run the closed channels are harvested into
        a new entry.  ``faults`` overrides the executor-wide injector for
        this query (serving sessions each carry their own).  ``scheduler``
        runs the query's segment instances on a caller-owned
        :class:`SegmentScheduler` — the serving layer's shared pool — and
        is left open afterwards; without it a private scheduler is created
        and torn down per query.  ``activity`` is the statement's live
        :class:`~repro.obs.live.QueryActivity` record (None = not
        registered): the executor attaches the collector to it once, so
        activity snapshots can read rows/partitions-so-far — a pull
        model, with zero per-row writes.  ``batch_size`` overrides the
        executor's default vectorized batch width for this query (1 =
        the exact row-at-a-time pipeline)."""
        plan.validate()
        resolved_workers = self.workers if workers is None else workers
        if resolved_workers < 1:
            raise ValueError("workers must be >= 1")
        resolved_batch = self.batch_size if batch_size is None else batch_size
        if resolved_batch < 1:
            raise ValueError("batch_size must be >= 1")
        metrics = MetricsCollector(self.num_segments, timing=analyze)
        metrics.register_plan(plan)
        metrics.record_workers(resolved_workers)
        metrics.record_batch_size(resolved_batch)
        if activity is not None:
            activity.attach_metrics(metrics)
            activity.workers = resolved_workers
        limits = limits if limits is not None else QueryLimits()
        limits.start()
        started = time.perf_counter()
        ctx = ExecContext(
            self.catalog,
            self.storage,
            self.num_segments,
            params,
            metrics,
            faults=faults if faults is not None else self.faults,
            limits=limits,
            workers=resolved_workers,
            cache=cache,
            batch_size=resolved_batch,
        )
        owns_scheduler = scheduler is None
        if scheduler is None:
            scheduler = SegmentScheduler(resolved_workers)
        try:
            # Slice k (k >= 1) is the subtree below the k-th Motion in
            # post-order; slice 0 is the root slice.
            for slice_id, motion in enumerate(
                _motions_deepest_first(plan.root), start=1
            ):
                limits.check()
                slice_started = time.perf_counter()
                slice_scan_ids = _slice_part_scan_ids(motion.children[0])
                with obs_trace.span(
                    f"slice:{slice_id}", motion=motion.name
                ) as slice_span:
                    self._run_motion_slice(
                        motion,
                        ctx,
                        scheduler,
                        slice_id,
                        slice_scan_ids,
                        slice_span,
                    )
                metrics.record_slice(
                    slice_id,
                    f"below {motion.name}",
                    time.perf_counter() - slice_started,
                )
            limits.check()
            root_started = time.perf_counter()
            root_scan_ids = _slice_part_scan_ids(plan.root)
            with obs_trace.span("slice:0", motion="root") as slice_span:
                rows = self._run_root_slice(
                    plan.root, ctx, scheduler, root_scan_ids, slice_span
                )
            metrics.record_slice(
                0, "root", time.perf_counter() - root_started
            )
            limits.check()
        except BaseException:
            # A failed run (timeout, cancel, segment death, anything) may
            # leave channels half-filled or outright missing; poison the
            # cache session so neither this frame nor any caller can
            # harvest partial state into the statement cache.
            if cache is not None:
                cache.abort()
            raise
        finally:
            if owns_scheduler:
                scheduler.close()
        elapsed = time.perf_counter() - started
        if cache is not None:
            # Successful run: on a miss, snapshot the closed OID channels
            # into a selection entry (epoch-guarded commit — a DML that
            # raced this execution makes the store a no-op), then attach
            # the schema-v5 "cache" section.
            cache.harvest(plan.root, ctx.channels.channels())
            metrics.record_cache(cache.summary())
        metrics.record_fault_points(ctx.faults.snapshot())
        metrics.record_segment_health(self.storage.health.status())
        metrics.finish(elapsed)
        names = [name for _, name in plan.root.output_layout().slots]
        return ExecutionResult(rows, names, metrics, elapsed)

    # -- slices ---------------------------------------------------------------

    def _run_root_slice(
        self,
        root: phys.PhysicalOp,
        ctx: ExecContext,
        scheduler: SegmentScheduler,
        scan_ids: set[int],
        slice_span,
    ) -> list[tuple]:
        """Run the root slice's per-segment instances and concatenate
        their rows in segment order (the Gather contract)."""

        def instance(segment: int) -> Callable[[], list[tuple]]:
            def work(view: ExecContext) -> list[tuple]:
                faults = view.faults if view.faults.active else None
                if faults is not None:
                    faults.maybe_fire(SLICE_START, segment)
                if view.batch_size > 1:
                    rows: list[tuple] = []
                    for batch in build_batches(root, segment, view):
                        rows.extend(batch)
                    return rows
                return list(build_iterator(root, segment, view))

            return lambda: self._run_instance_with_retry(
                ctx, scheduler, 0, segment, scan_ids, None, slice_span, work
            )

        per_segment = scheduler.run_slice(
            [instance(segment) for segment in range(self.num_segments)]
        )
        return [row for seg_rows in per_segment for row in seg_rows]

    def _run_motion_slice(
        self,
        motion: phys.Motion,
        ctx: ExecContext,
        scheduler: SegmentScheduler,
        slice_id: int,
        scan_ids: set[int],
        slice_span,
    ) -> None:
        """Run one motion slice's per-segment producer instances, then
        seal the receive queues so the consuming slice may drain them."""
        buffer = ctx.motion_buffer(id(motion))
        hash_fns = None
        if isinstance(motion, phys.RedistributeMotion):
            layout = motion.children[0].output_layout()
            hash_fns = [
                compile_expression(expr, layout, ctx.params)
                for expr in motion.hash_exprs
            ]

        def instance(segment: int) -> Callable[[], None]:
            def work(view: ExecContext) -> None:
                self._send_segment(motion, view, segment, buffer, hash_fns)

            return lambda: self._run_instance_with_retry(
                ctx,
                scheduler,
                slice_id,
                segment,
                scan_ids,
                id(motion),
                slice_span,
                work,
            )

        scheduler.run_slice(
            [instance(segment) for segment in range(self.num_segments)]
        )
        buffer.close()

    def _run_instance_with_retry(
        self,
        ctx: ExecContext,
        scheduler: SegmentScheduler,
        slice_id: int,
        segment: int,
        scan_ids: set[int],
        motion_id: int | None,
        slice_span,
        work: Callable[[ExecContext], Any],
    ) -> Any:
        """Run one (slice, segment) instance, retrying it — and only it —
        on :class:`SegmentFailure`.

        A transient failure retries in place after exponential backoff; a
        persistent one fails the segment over to its mirror first.  Before
        each retry exactly the failed instance's state is discarded: its
        segment's OID channels (instance-local by the Figure 12 invariant)
        and its producer run in the Motion send queues.  Other segments'
        instances — possibly still running on sibling workers — are
        untouched.  Per-worker metric accumulators merge on success *and*
        failure so counters stay cumulative across attempts."""
        policy = self.retry_policy
        attempt = 0
        slept: float | None = None
        started = time.perf_counter()
        try:
            while True:
                view = ctx.worker_view(segment)
                span = (
                    obs_trace.worker_span(
                        slice_span, f"segment:{segment}", slice=slice_id
                    )
                    if scheduler.parallel
                    else obs_trace._NULL_SPAN
                )
                try:
                    with span:
                        result = work(view)
                    if view is not ctx:
                        view.metrics.merge()
                    return result
                except SegmentFailure as failure:
                    if view is not ctx:
                        view.metrics.merge()
                    attempt += 1
                    if attempt > policy.max_retries:
                        raise
                    if not self._recover(failure, ctx):
                        raise
                    ctx.metrics.record_retry(
                        slice_id, attempt, failure.segment, failure.point
                    )
                    ctx.reset_instance(
                        scan_ids, segment, motion_id=motion_id
                    )
                    # decorrelated jitter: this wait seeds the next draw
                    slept = policy.backoff(attempt, previous=slept)
        finally:
            ctx.metrics.record_instance(
                slice_id, segment, time.perf_counter() - started
            )

    def _recover(self, failure: SegmentFailure, ctx: ExecContext) -> bool:
        """Attempt recovery from one segment failure.

        Transient faults need no state change — the retry itself is the
        recovery.  Persistent faults mark the primary down; recovery
        succeeds iff the mirror can take over.
        """
        if failure.transient:
            return True
        health = self.storage.health
        reason = failure.point or "segment failure"
        mirror_ok = health.failover(failure.segment, reason)
        ctx.metrics.record_failover(failure.segment, reason)
        return mirror_ok

    # -- motions ------------------------------------------------------------

    def _send_segment(
        self,
        motion: phys.Motion,
        view: ExecContext,
        segment: int,
        buffer: MotionBuffer,
        hash_fns,
    ) -> None:
        """One producer instance: run the motion's child subtree on
        ``segment`` and route every row into the receive queues, tagged
        with this segment as the producer (the deterministic-merge key)."""
        child = motion.children[0]
        record = view.metrics.record_motion
        faults = view.faults if view.faults.active else None
        charge = view.limits.charge_rows if view.limits.active else None
        if faults is not None:
            faults.maybe_fire(SLICE_START, segment)
        if view.batch_size > 1:
            self._send_segment_batches(
                motion, view, segment, buffer, hash_fns, faults
            )
            return
        for row in build_iterator(child, segment, view):
            if faults is not None:
                faults.maybe_fire(MOTION_SEND, segment)
            if isinstance(motion, phys.GatherMotion):
                buffer.send(COORDINATOR_SEGMENT, row, segment)
                record(motion, "gather", COORDINATOR_SEGMENT, row)
                if charge is not None:
                    charge(1)
            elif isinstance(motion, phys.BroadcastMotion):
                for target in range(self.num_segments):
                    buffer.send(target, row, segment)
                    record(motion, "broadcast", target, row)
                if charge is not None:
                    charge(self.num_segments)
            else:
                values = tuple(fn(row) for fn in hash_fns)
                if len(values) == 1:
                    target = segment_for(values[0], self.num_segments)
                else:
                    target = (
                        sum(stable_hash(v) for v in values)
                        % self.num_segments
                    )
                buffer.send(target, row, segment)
                record(motion, "redistribute", target, row)
                if charge is not None:
                    charge(1)

    def _send_segment_batches(
        self,
        motion: phys.Motion,
        view: ExecContext,
        segment: int,
        buffer: MotionBuffer,
        hash_fns,
        faults,
    ) -> None:
        """Batch-mode producer instance: whole batches go into the receive
        queues in one lock acquisition, with the ``motion_send`` fault
        point and the buffered-row charges at per-batch granularity
        (charges replicate the row path's crossing row exactly)."""
        child = motion.children[0]
        record = view.metrics.record_motion_batch
        limits = view.limits if view.limits.active else None
        gather = isinstance(motion, phys.GatherMotion)
        broadcast = isinstance(motion, phys.BroadcastMotion)
        for batch in build_batches(child, segment, view):
            if faults is not None:
                faults.maybe_fire(MOTION_SEND, segment)
            if gather:
                buffer.send_batch(COORDINATOR_SEGMENT, batch, segment)
                record(motion, "gather", COORDINATOR_SEGMENT, batch)
                if limits is not None:
                    limits.charge_rows_batch(len(batch))
            elif broadcast:
                for target in range(self.num_segments):
                    buffer.send_batch(target, batch, segment)
                    record(motion, "broadcast", target, batch)
                if limits is not None:
                    limits.charge_rows_batch(
                        len(batch), per_row=self.num_segments
                    )
            else:
                by_target: dict[int, list[tuple]] = {}
                for row in batch:
                    values = tuple(fn(row) for fn in hash_fns)
                    if len(values) == 1:
                        target = segment_for(values[0], self.num_segments)
                    else:
                        target = (
                            sum(stable_hash(v) for v in values)
                            % self.num_segments
                        )
                    by_target.setdefault(target, []).append(row)
                for target in sorted(by_target):
                    rows = by_target[target]
                    buffer.send_batch(target, rows, segment)
                    record(motion, "redistribute", target, rows)
                if limits is not None:
                    limits.charge_rows_batch(len(batch))

    def _run_motion(self, motion: phys.Motion, ctx: ExecContext) -> None:
        """Serial compat path: run every producer instance inline and seal
        the buffer (used by benchmarks that drive a single Motion by
        hand)."""
        buffer = ctx.motion_buffer(id(motion))
        hash_fns = None
        if isinstance(motion, phys.RedistributeMotion):
            layout = motion.children[0].output_layout()
            hash_fns = [
                compile_expression(expr, layout, ctx.params)
                for expr in motion.hash_exprs
            ]
        for segment in range(self.num_segments):
            self._send_segment(motion, ctx, segment, buffer, hash_fns)
        buffer.close()


def _motions_deepest_first(root: phys.PhysicalOp) -> list[phys.Motion]:
    """Motions in post-order, so producers are buffered before consumers."""
    found: list[phys.Motion] = []

    def visit(op: phys.PhysicalOp) -> None:
        for child in op.children:
            visit(child)
        if isinstance(op, phys.Motion):
            found.append(op)

    visit(root)
    return found


def _slice_part_scan_ids(root: phys.PhysicalOp) -> set[int]:
    """Partition-OID channel ids owned by one slice.

    Walks the subtree without descending through Motions (their subtrees
    are other slices, already complete).  Because no Motion separates a
    PartitionSelector from its DynamicScan, these ids are exactly the
    channels an instance retry must discard and rebuild (scoped to the
    failed segment).
    """
    from .lowering import PropagatingProject

    ids: set[int] = set()

    def visit(op: phys.PhysicalOp) -> None:
        if isinstance(op, phys.PartitionSelector):
            ids.add(op.spec.part_scan_id)
        elif isinstance(op, phys.DynamicScan):
            ids.add(op.part_scan_id)
        elif isinstance(op, PropagatingProject):
            ids.add(op.produces_part_scan_id)
        elif (
            isinstance(op, phys.LeafScan) and op.guard_scan_id is not None
        ):
            ids.add(op.guard_scan_id)
        for child in op.children:
            if not isinstance(child, phys.Motion):
                visit(child)

    if not isinstance(root, phys.Motion):
        visit(root)
    else:
        # A Motion as slice root reads its buffer only; no channels.
        pass
    return ids
