"""Slice-at-a-time MPP execution.

A plan is cut at Motion boundaries.  Motions are executed deepest-first:
the child subtree runs once per segment and its output is routed into
per-segment receive buffers —

* **Gather** → everything to the coordinator (segment 0);
* **Broadcast** → a copy to every segment;
* **Redistribute** → by hash of the motion's key expressions.

The consuming slice then runs on every segment, reading buffered rows at
the Motion node.  Because producer PartitionSelectors and consumer
DynamicScans are never separated by a Motion (the plan validator enforces
the paper's Figure 12 rule), every OID channel is filled and closed within
one (slice, segment) instance before its consumer opens — the shared-memory
contract of Section 2.2.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from ..catalog import Catalog
from ..expr.eval import compile_expression
from ..obs.metrics import MetricsCollector, ScanTracker
from ..obs.render import render_explain_analyze
from ..physical import ops as phys
from ..physical.plan import Plan
from ..storage import StorageManager
from ..storage.distribution import segment_for, stable_hash
from .context import COORDINATOR_SEGMENT, ExecContext
from .iterators import build_iterator


class ExecutionResult:
    """Rows plus the measurements the paper's experiments report.

    ``metrics`` is the full per-node :class:`MetricsCollector`;
    ``tracker``, ``partitions_scanned`` and ``rows_scanned`` are thin
    aliases over it, kept for older callers.
    """

    def __init__(
        self,
        rows: list[tuple],
        column_names: list[str],
        metrics: MetricsCollector,
        elapsed_seconds: float,
    ):
        self.rows = rows
        self.column_names = column_names
        self.metrics = metrics
        self.elapsed_seconds = elapsed_seconds

    @property
    def tracker(self) -> ScanTracker:
        """Deprecated aggregate view; prefer :attr:`metrics`."""
        return self.metrics.tracker

    def partitions_scanned(self, table_name: str | None = None) -> int:
        return self.metrics.partitions_scanned(table_name)

    @property
    def rows_scanned(self) -> int:
        return self.metrics.total_rows_scanned

    def explain_analyze(self) -> str:
        """The executed plan annotated with this run's actuals."""
        return render_explain_analyze(self.metrics)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return (
            f"ExecutionResult({len(self.rows)} rows, "
            f"{self.rows_scanned} rows scanned)"
        )


class MppExecutor:
    """Executes validated physical plans over the segment simulator."""

    def __init__(
        self,
        catalog: Catalog,
        storage: StorageManager,
        num_segments: int,
    ):
        self.catalog = catalog
        self.storage = storage
        self.num_segments = num_segments

    def execute(
        self,
        plan: Plan,
        params: Sequence[Any] | None = None,
        analyze: bool = False,
    ) -> ExecutionResult:
        """Run the plan; ``analyze=True`` additionally collects per-node
        wall-clock timings (row and partition counters are always on)."""
        plan.validate()
        metrics = MetricsCollector(self.num_segments, timing=analyze)
        metrics.register_plan(plan)
        started = time.perf_counter()
        ctx = ExecContext(
            self.catalog, self.storage, self.num_segments, params, metrics
        )
        # Slice k (k >= 1) is the subtree below the k-th Motion in
        # post-order; slice 0 is the root slice.
        for slice_id, motion in enumerate(
            _motions_deepest_first(plan.root), start=1
        ):
            slice_started = time.perf_counter()
            self._run_motion(motion, ctx)
            metrics.record_slice(
                slice_id,
                f"below {motion.name}",
                time.perf_counter() - slice_started,
            )
        rows: list[tuple] = []
        root_started = time.perf_counter()
        for segment in range(self.num_segments):
            rows.extend(build_iterator(plan.root, segment, ctx))
        metrics.record_slice(0, "root", time.perf_counter() - root_started)
        elapsed = time.perf_counter() - started
        metrics.finish(elapsed)
        names = [name for _, name in plan.root.output_layout().slots]
        return ExecutionResult(rows, names, metrics, elapsed)

    def _run_motion(self, motion: phys.Motion, ctx: ExecContext) -> None:
        buffer = ctx.motion_buffer(id(motion))
        child = motion.children[0]
        record = ctx.metrics.record_motion
        if isinstance(motion, phys.RedistributeMotion):
            layout = child.output_layout()
            hash_fns = [
                compile_expression(expr, layout, ctx.params)
                for expr in motion.hash_exprs
            ]
        for segment in range(self.num_segments):
            for row in build_iterator(child, segment, ctx):
                if isinstance(motion, phys.GatherMotion):
                    buffer[COORDINATOR_SEGMENT].append(row)
                    record(motion, "gather", COORDINATOR_SEGMENT, row)
                elif isinstance(motion, phys.BroadcastMotion):
                    for target in range(self.num_segments):
                        buffer[target].append(row)
                        record(motion, "broadcast", target, row)
                else:
                    values = tuple(fn(row) for fn in hash_fns)
                    if len(values) == 1:
                        target = segment_for(values[0], self.num_segments)
                    else:
                        target = (
                            sum(stable_hash(v) for v in values)
                            % self.num_segments
                        )
                    buffer[target].append(row)
                    record(motion, "redistribute", target, row)


def _motions_deepest_first(root: phys.PhysicalOp) -> list[phys.Motion]:
    """Motions in post-order, so producers are buffered before consumers."""
    found: list[phys.Motion] = []

    def visit(op: phys.PhysicalOp) -> None:
        for child in op.children:
            visit(child)
        if isinstance(op, phys.Motion):
            found.append(op)

    visit(root)
    return found
