"""Slice-at-a-time MPP execution.

A plan is cut at Motion boundaries.  Motions are executed deepest-first:
the child subtree runs once per segment and its output is routed into
per-segment receive buffers —

* **Gather** → everything to the coordinator (segment 0);
* **Broadcast** → a copy to every segment;
* **Redistribute** → by hash of the motion's key expressions.

The consuming slice then runs on every segment, reading buffered rows at
the Motion node.  Because producer PartitionSelectors and consumer
DynamicScans are never separated by a Motion (the plan validator enforces
the paper's Figure 12 rule), every OID channel is filled and closed within
one (slice, segment) instance before its consumer opens — the shared-memory
contract of Section 2.2.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from ..catalog import Catalog
from ..expr.eval import compile_expression
from ..physical import ops as phys
from ..physical.plan import Plan
from ..storage import StorageManager
from ..storage.distribution import segment_for, stable_hash
from .context import COORDINATOR_SEGMENT, ExecContext, ScanTracker
from .iterators import build_iterator


class ExecutionResult:
    """Rows plus the measurements the paper's experiments report."""

    def __init__(
        self,
        rows: list[tuple],
        column_names: list[str],
        tracker: ScanTracker,
        elapsed_seconds: float,
    ):
        self.rows = rows
        self.column_names = column_names
        self.tracker = tracker
        self.elapsed_seconds = elapsed_seconds

    def partitions_scanned(self, table_name: str | None = None) -> int:
        if table_name is not None:
            return self.tracker.partitions_scanned(table_name)
        return self.tracker.total_partitions_scanned()

    @property
    def rows_scanned(self) -> int:
        return self.tracker.rows_scanned

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return (
            f"ExecutionResult({len(self.rows)} rows, "
            f"{self.rows_scanned} rows scanned)"
        )


class MppExecutor:
    """Executes validated physical plans over the segment simulator."""

    def __init__(
        self,
        catalog: Catalog,
        storage: StorageManager,
        num_segments: int,
    ):
        self.catalog = catalog
        self.storage = storage
        self.num_segments = num_segments

    def execute(
        self, plan: Plan, params: Sequence[Any] | None = None
    ) -> ExecutionResult:
        plan.validate()
        started = time.perf_counter()
        ctx = ExecContext(
            self.catalog, self.storage, self.num_segments, params
        )
        for motion in _motions_deepest_first(plan.root):
            self._run_motion(motion, ctx)
        rows: list[tuple] = []
        for segment in range(self.num_segments):
            rows.extend(build_iterator(plan.root, segment, ctx))
        elapsed = time.perf_counter() - started
        names = [name for _, name in plan.root.output_layout().slots]
        return ExecutionResult(rows, names, ctx.tracker, elapsed)

    def _run_motion(self, motion: phys.Motion, ctx: ExecContext) -> None:
        buffer = ctx.motion_buffer(id(motion))
        child = motion.children[0]
        if isinstance(motion, phys.RedistributeMotion):
            layout = child.output_layout()
            hash_fns = [
                compile_expression(expr, layout, ctx.params)
                for expr in motion.hash_exprs
            ]
        for segment in range(self.num_segments):
            for row in build_iterator(child, segment, ctx):
                if isinstance(motion, phys.GatherMotion):
                    buffer[COORDINATOR_SEGMENT].append(row)
                elif isinstance(motion, phys.BroadcastMotion):
                    for target in range(self.num_segments):
                        buffer[target].append(row)
                else:
                    values = tuple(fn(row) for fn in hash_fns)
                    if len(values) == 1:
                        target = segment_for(values[0], self.num_segments)
                    else:
                        target = (
                            sum(stable_hash(v) for v in values)
                            % self.num_segments
                        )
                    buffer[target].append(row)


def _motions_deepest_first(root: phys.PhysicalOp) -> list[phys.Motion]:
    """Motions in post-order, so producers are buffered before consumers."""
    found: list[phys.Motion] = []

    def visit(op: phys.PhysicalOp) -> None:
        for child in op.children:
            visit(child)
        if isinstance(op, phys.Motion):
            found.append(op)

    visit(root)
    return found
