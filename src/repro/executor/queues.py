"""Bounded tuple queues: the Motion interconnect of the parallel backend.

A :class:`TupleQueue` carries one Motion's traffic toward one target
segment.  Producers are the (slice, segment) instances of the sending
slice — under the parallel scheduler they run on different worker threads
and push concurrently — and the consumer is the receiving slice's instance
on the target segment, which runs after every producer has finished
(slice-at-a-time execution preserves the paper's
producer-closes-then-consumer-drains contract, exactly like the
partition-OID channels of Section 2.2).

Three properties the executor relies on:

* **Thread safety with backpressure.**  All state is guarded by one lock
  with condition variables.  When a capacity is set, :meth:`put` blocks
  while the queue is full and a streaming consumer is attached, waking as
  :meth:`stream` frees space — classic bounded-buffer backpressure.  When
  no consumer is attached (the engine's slice-at-a-time schedule drains
  only after close, so nothing could ever free space) a full queue raises
  :class:`~repro.errors.ChannelError` immediately instead of deadlocking.
* **Deterministic merge order.**  Rows are kept in per-producer *runs* and
  merged in ascending producer-segment order, so the drained sequence is
  byte-identical to a serial run's append order no matter how the worker
  threads interleaved their pushes.
* **The ChannelError contract.**  Draining before every producer closed,
  pushing after close, and closing twice all raise — the same misuse
  surface :class:`~repro.executor.channels.OidChannel` polices.

Slice retry discards only the failed instance's run
(:meth:`TupleQueue.discard_producer`), leaving healthy producers' rows in
place — the parallel analogue of the segment-scoped channel discard.
"""

from __future__ import annotations

import threading
from typing import Iterator

from ..errors import ChannelError


class TupleQueue:
    """One Motion's row traffic toward one target segment.

    ``limits`` (optional) is the query's
    :class:`~repro.resilience.guardrails.QueryLimits`: a producer blocked
    under backpressure re-checks it on every wait tick, so a cancellation
    or timeout unblocks the producer promptly instead of leaving it
    parked until the stall timeout — the guarantee per-session cancel in
    the serving layer relies on.
    """

    def __init__(
        self,
        capacity: int | None = None,
        stall_timeout_s: float = 10.0,
        limits=None,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self.stall_timeout_s = stall_timeout_s
        self.limits = limits
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        #: producer segment -> rows pushed by that producer, in push order
        self._runs: dict[int, list[tuple]] = {}
        self._size = 0
        self._closed = False
        self._consumers = 0
        self._streamed = False
        self._merged: list[tuple] | None = None

    # -- producer side -------------------------------------------------------

    def put(self, row: tuple, producer: int = 0) -> None:
        """Push one row from ``producer``'s run, blocking under backpressure.

        Blocks while the queue is at capacity and a streaming consumer is
        attached; raises :class:`ChannelError` when full with no consumer
        (nothing could free space — failing fast beats deadlocking), when
        the queue stalls past ``stall_timeout_s``, or after close.
        """
        with self._not_full:
            if self.capacity is not None:
                waited = 0.0
                while self._size >= self.capacity and not self._closed:
                    if self._consumers == 0:
                        raise ChannelError(
                            f"motion queue is full ({self.capacity} rows) "
                            "with no consumer attached; raise the capacity "
                            "or attach a streaming consumer"
                        )
                    if waited >= self.stall_timeout_s:
                        raise ChannelError(
                            "motion queue stalled: consumer made no "
                            f"progress for {self.stall_timeout_s}s"
                        )
                    # a cancelled/timed-out query must not stay parked
                    # here waiting for a consumer that will never drain
                    if self.limits is not None and self.limits.active:
                        self.limits.check()
                    self._not_full.wait(timeout=0.05)
                    waited += 0.05
            if self._closed:
                raise ChannelError("put to closed motion queue")
            self._runs.setdefault(producer, []).append(row)
            self._size += 1
            self._not_empty.notify()

    def put_batch(self, rows: list[tuple], producer: int = 0) -> None:
        """Push a batch of rows from ``producer``'s run in one lock
        acquisition — the Motion-amortization fast path.

        Bounded queues fall back to per-row :meth:`put` so backpressure
        (and the full-with-no-consumer :class:`ChannelError`) fires on
        exactly the same row as the row-at-a-time path.
        """
        if not rows:
            return
        if self.capacity is not None:
            for row in rows:
                self.put(row, producer)
            return
        with self._lock:
            if self._closed:
                raise ChannelError("put to closed motion queue")
            self._runs.setdefault(producer, []).extend(rows)
            self._size += len(rows)
            self._not_empty.notify()

    def close(self) -> None:
        """Seal the queue.  Closing twice raises — two producers racing to
        own the queue's lifecycle is a real coordination bug."""
        with self._lock:
            if self._closed:
                raise ChannelError("double close of motion queue")
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def discard_producer(self, producer: int) -> int:
        """Drop one producer's run (instance retry rebuilds it); returns
        the number of rows discarded."""
        with self._lock:
            run = self._runs.pop(producer, None)
            if run is None:
                return 0
            self._size -= len(run)
            self._merged = None
            self._not_full.notify_all()
            return len(run)

    # -- consumer side -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return self._size

    def rows(self) -> list[tuple]:
        """All rows, merged in producer-segment order — the deterministic
        drain used by the slice-at-a-time executor.

        Requires every producer to have closed the queue first and is
        non-destructive (a retried consumer instance re-reads the same
        rows).  Raises after a streaming consumer already drained rows.
        """
        with self._lock:
            if not self._closed:
                raise ChannelError(
                    "motion queue drained before its producers closed"
                )
            if self._streamed:
                raise ChannelError(
                    "motion queue was already drained by a streaming consumer"
                )
            if self._merged is None:
                self._merged = [
                    row
                    for producer in sorted(self._runs)
                    for row in self._runs[producer]
                ]
            return self._merged

    def stream(self) -> Iterator[tuple]:
        """Yield rows as they arrive, concurrently with producers.

        This is the backpressure path: while the generator is live it
        counts as an attached consumer, so bounded :meth:`put` calls block
        instead of raising, and every yielded row frees one slot.  Rows
        arrive in lowest-producer-first order within what is buffered;
        interleaving across producers is inherently arrival-ordered.  The
        stream ends when the queue is closed and empty.
        """
        with self._lock:
            self._consumers += 1
        try:
            while True:
                with self._not_empty:
                    while self._size == 0 and not self._closed:
                        self._not_empty.wait()
                    if self._size == 0 and self._closed:
                        return
                    producer = min(
                        p for p, run in self._runs.items() if run
                    )
                    row = self._runs[producer].pop(0)
                    self._size -= 1
                    self._streamed = True
                    self._not_full.notify()
                yield row
        finally:
            with self._lock:
                self._consumers -= 1

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"TupleQueue({self._size} rows, {state})"


class MotionBuffer:
    """All of one Motion's receive queues — one :class:`TupleQueue` per
    target segment.  The executor sends into it from producer instances
    and the consuming slice reads one target's merged rows."""

    def __init__(
        self,
        num_segments: int,
        capacity: int | None = None,
        limits=None,
    ):
        self.num_segments = num_segments
        self._queues = [
            TupleQueue(capacity, limits=limits) for _ in range(num_segments)
        ]

    def send(self, target: int, row: tuple, producer: int) -> None:
        self._queues[target].put(row, producer)

    def send_batch(
        self, target: int, rows: list[tuple], producer: int
    ) -> None:
        self._queues[target].put_batch(rows, producer)

    def close(self) -> None:
        for queue in self._queues:
            queue.close()

    @property
    def closed(self) -> bool:
        return all(queue.closed for queue in self._queues)

    def discard_producer(self, producer: int) -> int:
        """Drop one producer instance's rows from every target queue."""
        return sum(
            queue.discard_producer(producer) for queue in self._queues
        )

    def rows(self, target: int) -> list[tuple]:
        """The merged, deterministic row sequence for one target segment."""
        return self._queues[target].rows()

    def queue(self, target: int) -> TupleQueue:
        return self._queues[target]

    def __getitem__(self, target: int) -> list[tuple]:
        return self.rows(target)

    def __iter__(self) -> Iterator[list[tuple]]:
        return (self.rows(target) for target in range(self.num_segments))

    def __repr__(self) -> str:
        total = sum(len(queue) for queue in self._queues)
        return f"MotionBuffer({self.num_segments} targets, {total} rows)"
