"""The built-in partition selection functions of the paper's Table 1.

These are the run-time face of the partitioning metadata; the
PartitionSelector iterator is implemented on top of them, and the
Section 3.2 lowering (:mod:`repro.executor.lowering`) exposes them as
explicit plan operators.

===========================  ====================================================
function                     description (paper Table 1)
===========================  ====================================================
``partition_expansion``      set of all child partition OIDs for a root OID
``partition_selection``      OID of the child partition containing the given
                             value(s) for the partitioning key(s)
``partition_constraints``    child partition OIDs with their range constraints
``partition_propagation``    push a partition OID to the DynamicScan with the
                             given id
===========================  ====================================================
"""

from __future__ import annotations

from typing import Any, NamedTuple, Sequence

from ..catalog import Catalog
from ..errors import PartitionError
from .context import ExecContext


def partition_expansion(catalog: Catalog, root_oid: int) -> list[int]:
    """All child partition OIDs of the partitioned table ``root_oid``."""
    table = catalog.table_by_oid(root_oid)
    if not table.is_partitioned:
        raise PartitionError(f"table {table.name!r} is not partitioned")
    return table.all_leaf_oids()


def partition_selection(
    catalog: Catalog, root_oid: int, values: Sequence[Any] | Any
) -> int | None:
    """OID of the child partition containing ``values`` for the partition
    key(s); ``None`` for the invalid partition ⊥.

    Accepts a single value for single-level tables or one value per level
    for multi-level tables.
    """
    table = catalog.table_by_oid(root_oid)
    scheme = table.partition_scheme
    if scheme is None:
        raise PartitionError(f"table {table.name!r} is not partitioned")
    if not isinstance(values, (list, tuple)):
        values = [values]
    if len(values) != scheme.num_levels:
        raise PartitionError(
            f"partition_selection expects {scheme.num_levels} value(s), "
            f"got {len(values)}"
        )
    leaf = scheme.route(dict(zip(scheme.keys, values)))
    if leaf is None:
        return None
    return table.leaf_oid(leaf)


class PartitionConstraint(NamedTuple):
    """One row of ``partition_constraints`` output: a leaf OID with one
    (min, max) interval per partitioning level."""

    oid: int
    min_values: tuple
    min_inclusive: tuple[bool, ...]
    max_values: tuple
    max_inclusive: tuple[bool, ...]


def partition_constraints(
    catalog: Catalog, root_oid: int
) -> list[PartitionConstraint]:
    """Child partition OIDs with their per-level range constraints.

    For constraints that are unions of several intervals only the overall
    envelope (min of mins, max of maxes) is reported, matching the shape of
    the paper's built-in.
    """
    table = catalog.table_by_oid(root_oid)
    scheme = table.partition_scheme
    if scheme is None:
        raise PartitionError(f"table {table.name!r} is not partitioned")
    results = []
    for leaf in scheme.leaf_ids():
        mins, min_inc, maxs, max_inc = [], [], [], []
        for level, slot_idx in zip(scheme.levels, leaf):
            constraint = level.slots[slot_idx].constraint
            first = constraint.intervals[0]
            last = constraint.intervals[-1]
            mins.append(first.lo)
            min_inc.append(first.lo_inclusive)
            maxs.append(last.hi)
            max_inc.append(last.hi_inclusive)
        results.append(
            PartitionConstraint(
                table.leaf_oid(leaf),
                tuple(mins),
                tuple(min_inc),
                tuple(maxs),
                tuple(max_inc),
            )
        )
    return results


def partition_propagation(
    ctx: ExecContext, part_scan_id: int, segment: int, oid: int
) -> None:
    """Push ``oid`` to the DynamicScan with ``part_scan_id`` on ``segment``.

    Every selected partition — static or dynamic, native selector or the
    Section 3.2 lowered form — flows through here, which makes it the one
    place the per-DynamicScan partition-selection counters are recorded.
    """
    ctx.metrics.record_propagation(part_scan_id, segment, oid)
    ctx.channel(part_scan_id, segment).push(oid)
