"""Section 3.2 lowering: PartitionSelectors as plain query operators over
the Table 1 built-in functions (paper Figure 15).

GPDB implements PartitionSelectors with "a combination of special-purpose
built-in functions, and existing query operators to invoke these
functions".  This module reproduces that realisation for single-level
partitioned tables:

* **Figure 15(b)** (range/constant selection)::

      Sequence
        Project(partition_propagation(...))     -> PropagatingProject(mode=oids)
          Filter(range overlap)
            FunctionScan(partition_constraints) -> ConstraintsFunctionScan
        <consumer subtree with DynamicScan>

* **Figure 15(a)** (per-tuple equality selection, join DPE)::

      ...Join...
        PropagatingProject(mode=selection)      -> partition_selection(key)
          <producer-side subtree>
        DynamicScan

:func:`lower_partition_selectors` rewrites every lowerable
PartitionSelector in a plan into this form; selectors it cannot lower
(multi-level tables, non-equality streaming predicates, mixed shapes) are
left native.  Both forms execute identically to the native selector, which
the test suite verifies, demonstrating the paper's point that "static" and
"dynamic" partition selection share one uniform runtime mechanism.
"""

from __future__ import annotations

from ..catalog import TableDescriptor
from ..catalog.constraints import IntervalSet
from ..expr.analysis import (
    conjuncts,
    derive_interval_set,
    join_comparison_on_key,
)
from ..expr.ast import (
    BoolExpr,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    column_refs,
)
from ..expr.eval import RowLayout, compile_expression
from ..physical.ops import PartitionSelector, PhysicalOp, Sequence
from ..physical.plan import Plan
from ..resilience.faults import CHANNEL_CLOSE
from .context import ExecContext
from .iterators import (
    EXTRA_BATCH_ITERATORS,
    EXTRA_ITERATORS,
    _rebatch,
    build_batches,
    build_iterator,
)
from .runtime_funcs import (
    partition_constraints,
    partition_propagation,
    partition_selection,
)

OID_COLUMN = "oid"
MIN_COLUMN = "min_value"
MAX_COLUMN = "max_value"


class ConstraintsFunctionScan(PhysicalOp):
    """FunctionScan over ``partition_constraints(rootOid)`` (Figure 15(b)).

    Emits one row per leaf partition: (oid, min, min_incl, max, max_incl)
    for a single-level partitioned table.
    """

    def __init__(self, table: TableDescriptor):
        self.table = table

    def output_layout(self) -> RowLayout:
        return RowLayout(
            [
                (None, OID_COLUMN),
                (None, MIN_COLUMN),
                (None, "min_inclusive"),
                (None, MAX_COLUMN),
                (None, "max_inclusive"),
            ]
        )

    def describe(self) -> str:
        return f"partition_constraints({self.table.name})"

    def serial_fields(self) -> dict:
        return {"function": "partition_constraints", "table_oid": self.table.oid}


class PropagatingProject(PhysicalOp):
    """Project invoking ``partition_propagation`` per row (both Figure 15
    shapes).

    ``mode='oids'``: the input rows carry a partition OID column (from a
    filtered ConstraintsFunctionScan); each OID is propagated.
    ``mode='selection'``: compute ``partition_selection(key_expr(row))``
    per input row and propagate the resulting OID — the equality/join form.
    Rows pass through unchanged, like a pass-through PartitionSelector.
    """

    streaming_producer = True  # producing finishes when input is exhausted

    def __init__(
        self,
        child: PhysicalOp,
        table: TableDescriptor,
        part_scan_id: int,
        mode: str,
        key_expr: Expression | None = None,
    ):
        if mode not in ("oids", "selection"):
            raise ValueError(f"unknown PropagatingProject mode {mode!r}")
        if mode == "selection" and key_expr is None:
            raise ValueError("selection mode requires a key expression")
        self.children = (child,)
        self.table = table
        self.produces_part_scan_id = part_scan_id
        self.mode = mode
        self.key_expr = key_expr

    def output_layout(self) -> RowLayout:
        return self.children[0].output_layout()

    def describe(self) -> str:
        if self.mode == "oids":
            call = f"partition_propagation({self.produces_part_scan_id}, {OID_COLUMN})"
        else:
            call = (
                f"partition_propagation({self.produces_part_scan_id}, "
                f"partition_selection({self.table.name}, {self.key_expr!r}))"
            )
        return call

    def serial_fields(self) -> dict:
        return {
            "part_scan_id": self.produces_part_scan_id,
            "table_oid": self.table.oid,
            "mode": self.mode,
            "key_expr": repr(self.key_expr) if self.key_expr else None,
        }


def _constraints_scan_iter(op: ConstraintsFunctionScan, segment: int, ctx: ExecContext):
    for row in partition_constraints(ctx.catalog, op.table.oid):
        yield (
            row.oid,
            row.min_values[0],
            row.min_inclusive[0],
            row.max_values[0],
            row.max_inclusive[0],
        )


def _propagating_project_iter(op: PropagatingProject, segment: int, ctx: ExecContext):
    child = op.children[0]
    scan_id = op.produces_part_scan_id
    channel = ctx.channel(scan_id, segment)
    ctx.metrics.node(op).part_scan_id = scan_id
    # 'oids' is the Figure 15(b) constant/range form (static elimination);
    # 'selection' is the per-tuple join form (dynamic elimination).
    ctx.metrics.record_selector(
        scan_id,
        "static" if op.mode == "oids" else "dynamic",
        op.table.num_leaves,
    )
    if op.mode == "oids":
        layout = child.output_layout()
        oid_index = layout.resolve(ColumnRef(OID_COLUMN))
        for row in build_iterator(child, segment, ctx):
            partition_propagation(ctx, scan_id, segment, row[oid_index])
            yield row
        if ctx.faults.active:
            ctx.faults.maybe_fire(CHANNEL_CLOSE, segment)
        channel.close()
        return
    key_fn = compile_expression(
        op.key_expr, child.output_layout(), ctx.params
    )
    for row in build_iterator(child, segment, ctx):
        value = key_fn(row)
        oid = partition_selection(ctx.catalog, op.table.oid, value)
        if oid is not None:
            partition_propagation(ctx, scan_id, segment, oid)
        yield row
    if ctx.faults.active:
        ctx.faults.maybe_fire(CHANNEL_CLOSE, segment)
    channel.close()


def _constraints_scan_batches(
    op: ConstraintsFunctionScan, segment: int, ctx: ExecContext
):
    # one row per leaf partition — small enough that re-batching the row
    # iterator is the whole implementation
    return _rebatch(
        _constraints_scan_iter(op, segment, ctx), ctx.batch_size
    )


def _propagating_project_batches(
    op: PropagatingProject, segment: int, ctx: ExecContext
):
    child = op.children[0]
    scan_id = op.produces_part_scan_id
    channel = ctx.channel(scan_id, segment)
    ctx.metrics.node(op).part_scan_id = scan_id
    ctx.metrics.record_selector(
        scan_id,
        "static" if op.mode == "oids" else "dynamic",
        op.table.num_leaves,
    )
    if op.mode == "oids":
        layout = child.output_layout()
        oid_index = layout.resolve(ColumnRef(OID_COLUMN))
        for batch in build_batches(child, segment, ctx):
            for row in batch:
                partition_propagation(ctx, scan_id, segment, row[oid_index])
            yield batch
        if ctx.faults.active:
            ctx.faults.maybe_fire(CHANNEL_CLOSE, segment)
        channel.close()
        return
    key_fn = compile_expression(
        op.key_expr, child.output_layout(), ctx.params
    )
    for batch in build_batches(child, segment, ctx):
        for row in batch:
            oid = partition_selection(ctx.catalog, op.table.oid, key_fn(row))
            if oid is not None:
                partition_propagation(ctx, scan_id, segment, oid)
        yield batch
    if ctx.faults.active:
        ctx.faults.maybe_fire(CHANNEL_CLOSE, segment)
    channel.close()


EXTRA_ITERATORS[ConstraintsFunctionScan] = _constraints_scan_iter
EXTRA_ITERATORS[PropagatingProject] = _propagating_project_iter
EXTRA_BATCH_ITERATORS[ConstraintsFunctionScan] = _constraints_scan_batches
EXTRA_BATCH_ITERATORS[PropagatingProject] = _propagating_project_batches


# ---------------------------------------------------------------------------
# Rewriting plans into the lowered form
# ---------------------------------------------------------------------------


def lower_partition_selectors(plan: Plan) -> Plan:
    """Rewrite every lowerable PartitionSelector into the Figure 15 form."""
    lowered = Plan(_lower(plan.root), plan.parameter_count)
    lowered.validate()
    return lowered


def _lower(op: PhysicalOp) -> PhysicalOp:
    children = [_lower(child) for child in op.children]
    if op.children:
        op = op.with_children(children)
    if not isinstance(op, PartitionSelector):
        return op
    replacement = _lower_selector(op)
    return replacement if replacement is not None else op


def _lower_selector(op: PartitionSelector) -> PhysicalOp | None:
    spec = op.spec
    if len(spec.part_keys) != 1 or spec.table.partition_scheme.num_levels != 1:
        return None
    key = spec.part_keys[0]
    predicate = spec.part_predicates[0]
    child = op.children[0] if op.children else None

    if predicate is None or _is_constant_form(predicate, key):
        interval_set = (
            IntervalSet.ALL
            if predicate is None
            else derive_interval_set(
                predicate,
                key,
                best_effort=True,
                key_type=spec.table.schema.column(key.name).data_type,
            )
        )
        if interval_set is None:
            return None
        producer = _static_producer(spec.table, spec.part_scan_id, interval_set)
        if child is None:
            return producer
        # Pass-through static selector: run the producer first, then the
        # original input (Sequence keeps the ordering contract).
        return Sequence([producer, child])

    # Streaming form: only single equality comparisons lower to
    # partition_selection (Figure 15(a)).
    if child is None:
        return None
    comparisons = join_comparison_on_key(predicate, key)
    if (
        len(comparisons) != 1
        or comparisons[0].op != "="
        or len(conjuncts(predicate)) != 1
    ):
        return None
    return PropagatingProject(
        child,
        spec.table,
        spec.part_scan_id,
        mode="selection",
        key_expr=comparisons[0].right,
    )


def _is_constant_form(predicate: Expression, key: ColumnRef) -> bool:
    return all(ref.matches(key) for ref in column_refs(predicate))


def _static_producer(
    table: TableDescriptor, part_scan_id: int, interval_set: IntervalSet
) -> PhysicalOp:
    """Figure 15(b): Filter over partition_constraints, propagated."""
    from ..physical.ops import Filter

    scan: PhysicalOp = ConstraintsFunctionScan(table)
    overlap = _overlap_predicate(interval_set)
    if overlap is not None:
        scan = Filter(scan, overlap)
    return PropagatingProject(scan, table, part_scan_id, mode="oids")


def _overlap_predicate(interval_set: IntervalSet) -> Expression | None:
    """A predicate over (min_value, max_value) rows that is true iff the
    partition's (single) constraint interval overlaps ``interval_set``.

    Exact for the single-interval slot constraints our range and point
    levels produce, because interval endpoints are compared directly.
    """
    if interval_set.is_universe:
        return None
    min_col = ColumnRef(MIN_COLUMN)
    max_col = ColumnRef(MAX_COLUMN)
    min_incl = ColumnRef("min_inclusive")
    max_incl = ColumnRef("max_inclusive")
    terms: list[Expression] = []
    for interval in interval_set:
        parts: list[Expression] = []
        if interval.hi is not None:
            # The partition must start before the query interval ends; the
            # boundary case needs both endpoints inclusive.
            strict = Comparison("<", min_col, Literal(interval.hi))
            if interval.hi_inclusive:
                boundary = BoolExpr(
                    "AND",
                    [Comparison("=", min_col, Literal(interval.hi)), min_incl],
                )
                parts.append(BoolExpr("OR", [strict, boundary]))
            else:
                parts.append(strict)
        if interval.lo is not None:
            strict = Comparison(">", max_col, Literal(interval.lo))
            if interval.lo_inclusive:
                boundary = BoolExpr(
                    "AND",
                    [Comparison("=", max_col, Literal(interval.lo)), max_incl],
                )
                parts.append(BoolExpr("OR", [strict, boundary]))
            else:
                parts.append(strict)
        if not parts:
            return None
        terms.append(parts[0] if len(parts) == 1 else BoolExpr("AND", parts))
    if len(terms) == 1:
        return terms[0]
    return BoolExpr("OR", terms)
