"""The legacy "Planner" baseline optimizer.

This reproduces the behaviour of GPDB's pre-Orca planner as the paper
describes it (Sections 4.4 and 5):

* **Partitioned scans are expanded statically**: the plan contains an
  Append listing one LeafScan per partition that survives *static*
  elimination — so plan size grows **linearly** with the partition count
  (Figure 18(a,b)).
* **Static elimination only at plan time**: constant predicates on the
  partition key prune the Append's children; parameters and join values
  cannot prune (they are unknown), so all leaves stay listed.
* **Rudimentary dynamic elimination**: for the simple pattern of an
  equality hash join on a single-level partition key, the planner computes
  qualifying partition OIDs at run time into a parameter (modelled by a
  PartitionSelector producer feeding ``guard_scan_id``-marked LeafScans).
  The plan still lists every leaf.  Anything more complex — multi-level
  keys, redistributed probe sides — falls back to scanning all listed
  partitions, matching the paper's "works for simple queries and schema
  designs".
* **DML over partitioned tables enumerates partition-pair joins**: an
  UPDATE joining two partitioned tables becomes an Append over all
  (target leaf × source leaf) joins — **quadratic** plan growth
  (Figure 18(c)).
* Join order is the query's FROM order (no exploration); distribution is
  fixed by simple heuristics, not costed alternatives.
"""

from __future__ import annotations

from ..catalog import Catalog, DistributionPolicy, TableDescriptor
from ..errors import OptimizerError
from ..expr.analysis import derive_interval_set, find_preds_on_keys
from ..expr.ast import ColumnRef, Expression
from ..logical.ops import (
    LogicalDelete,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalOp,
    LogicalProject,
    LogicalSelect,
    LogicalSort,
    LogicalUpdate,
)
from ..physical import ops as phys
from ..physical.plan import Plan
from ..physical.properties import DistributionSpec, PartSelectorSpec
from .rules import split_equijoin
from .stats import StatsRegistry


class PlannerOptimizer:
    """Heuristic bottom-up planner with static partition expansion."""

    def __init__(
        self,
        catalog: Catalog,
        stats: StatsRegistry,
        num_segments: int = 4,
        enable_static_elimination: bool = True,
        enable_param_dpe: bool = True,
        enable_partition_wise_join: bool = False,
    ):
        self.catalog = catalog
        self.stats = stats
        self.num_segments = num_segments
        self.enable_static_elimination = enable_static_elimination
        self.enable_param_dpe = enable_param_dpe
        #: Oracle-style partition-wise joins (paper Section 5 related work):
        #: when two tables are partitioned identically on their join keys,
        #: join matching partitions pairwise instead of whole tables.
        self.enable_partition_wise_join = enable_partition_wise_join
        self._next_guard_id = 1

    # -- public API -------------------------------------------------------

    def optimize(
        self, logical_root: LogicalOp, parameter_count: int = 0
    ) -> Plan:
        self._next_guard_id = 1
        root, delivered = self._translate(logical_root)
        if delivered.kind != DistributionSpec.SINGLETON:
            root = phys.GatherMotion(root)
            root.distribution = DistributionSpec.singleton()
        plan = Plan(root, parameter_count)
        plan.validate()
        return plan

    # -- recursion ------------------------------------------------------------

    def _translate(
        self, op: LogicalOp
    ) -> tuple[phys.PhysicalOp, DistributionSpec]:
        if isinstance(op, LogicalGet):
            return self._translate_get(op, predicate=None)
        if isinstance(op, LogicalSelect):
            return self._translate_select(op)
        if isinstance(op, LogicalProject):
            child, dist = self._translate(op.child)
            return phys.Project(child, op.items), dist
        if isinstance(op, LogicalJoin):
            return self._translate_join(op)
        if isinstance(op, LogicalGroupBy):
            return self._translate_group_by(op)
        if isinstance(op, LogicalSort):
            child, _ = self._gathered(op.child)
            return phys.Sort(child, op.keys), DistributionSpec.singleton()
        if isinstance(op, LogicalLimit):
            child, _ = self._gathered(op.child)
            return phys.Limit(child, op.count), DistributionSpec.singleton()
        if isinstance(op, LogicalUpdate):
            return self._translate_update(op)
        if isinstance(op, LogicalDelete):
            return self._translate_delete(op)
        raise OptimizerError(f"planner cannot translate {type(op).__name__}")

    def _gathered(
        self, op: LogicalOp
    ) -> tuple[phys.PhysicalOp, DistributionSpec]:
        child, dist = self._translate(op)
        if dist.kind != DistributionSpec.SINGLETON:
            child = phys.GatherMotion(child)
            child.distribution = DistributionSpec.singleton()
        return child, DistributionSpec.singleton()

    # -- scans ---------------------------------------------------------------------

    def _natural(self, table: TableDescriptor, alias: str) -> DistributionSpec:
        if table.distribution.kind == DistributionPolicy.REPLICATED:
            return DistributionSpec.replicated()
        return DistributionSpec.hashed(
            [ColumnRef(table.distribution.column, alias)]
        )

    def _translate_get(
        self, op: LogicalGet, predicate: Expression | None
    ) -> tuple[phys.PhysicalOp, DistributionSpec]:
        dist = self._natural(op.table, op.alias)
        if not op.table.is_partitioned:
            return phys.Scan(op.table, op.alias), dist
        oids = self._statically_selected_oids(op.table, op.alias, predicate)
        if not oids:
            return phys.EmptyScan(op.table, op.alias), dist
        scans: list[phys.PhysicalOp] = [
            phys.LeafScan(op.table, op.alias, oid) for oid in oids
        ]
        return phys.Append(scans), dist

    def _statically_selected_oids(
        self,
        table: TableDescriptor,
        alias: str,
        predicate: Expression | None,
    ) -> list[int]:
        """Static partition elimination: prune the explicit leaf list using
        constant predicates known at plan time."""
        if predicate is None or not self.enable_static_elimination:
            return table.all_leaf_oids()
        keys = [ColumnRef(key, alias) for key in table.partition_keys]
        level_preds = find_preds_on_keys(predicate, keys)
        derived = {}
        for key, level_pred in zip(keys, level_preds):
            if level_pred is None:
                continue
            # Parameters are unknown at plan time: best_effort treats them
            # as unrestricted, so the planner keeps all leaves.
            interval_set = derive_interval_set(
                level_pred,
                key,
                best_effort=True,
                key_type=table.schema.column(key.name).data_type,
            )
            if interval_set is not None:
                derived[key.name] = interval_set
        return table.select_leaf_oids(derived)

    def _translate_select(
        self, op: LogicalSelect
    ) -> tuple[phys.PhysicalOp, DistributionSpec]:
        if isinstance(op.child, LogicalGet):
            child, dist = self._translate_get(op.child, op.predicate)
            return phys.Filter(child, op.predicate), dist
        child, dist = self._translate(op.child)
        return phys.Filter(child, op.predicate), dist

    # -- joins ---------------------------------------------------------------------

    def _translate_join(
        self, op: LogicalJoin
    ) -> tuple[phys.PhysicalOp, DistributionSpec]:
        left_phys, left_dist = self._translate(op.left)
        right_phys, right_dist = self._translate(op.right)
        left_layout = op.left.output_layout()
        right_layout = op.right.output_layout()
        left_keys, right_keys, residual = split_equijoin(
            op.predicate, left_layout, right_layout
        )
        if self.enable_partition_wise_join and op.kind == "inner":
            pairwise = self._try_partition_wise_join(
                op, left_keys, right_keys, residual
            )
            if pairwise is not None:
                return pairwise

        if not left_keys:
            # Non-equi join: broadcast the inner side.
            right_phys = self._ensure(
                right_phys, right_dist, DistributionSpec.replicated()
            )
            join = phys.NLJoin(op.kind, left_phys, right_phys, op.predicate)
            join.distribution = left_dist
            return join, left_dist

        if op.kind == "semi":
            build_phys, build_dist = right_phys, right_dist
            probe_phys, probe_dist = left_phys, left_dist
            build_keys, probe_keys = right_keys, left_keys
        else:
            build_phys, build_dist = left_phys, left_dist
            probe_phys, probe_dist = right_phys, right_dist
            build_keys, probe_keys = left_keys, right_keys

        build_phys, probe_phys, delivered = self._colocate(
            build_phys,
            build_dist,
            build_keys,
            probe_phys,
            probe_dist,
            probe_keys,
        )
        build_phys = self._maybe_param_dpe(
            build_phys, probe_phys, build_keys, probe_keys
        )
        join = phys.HashJoin(
            op.kind, build_phys, probe_phys, build_keys, probe_keys, residual
        )
        join.distribution = delivered
        return join, delivered

    def _ensure(
        self,
        node: phys.PhysicalOp,
        delivered: DistributionSpec,
        required: DistributionSpec,
    ) -> phys.PhysicalOp:
        if delivered.satisfies(required):
            return node
        if required.kind == DistributionSpec.REPLICATED:
            motion: phys.PhysicalOp = phys.BroadcastMotion(node)
        elif required.kind == DistributionSpec.SINGLETON:
            motion = phys.GatherMotion(node)
        else:
            motion = phys.RedistributeMotion(node, list(required.columns))
        motion.distribution = required
        return motion

    def _colocate(
        self,
        build: phys.PhysicalOp,
        build_dist: DistributionSpec,
        build_keys,
        probe: phys.PhysicalOp,
        probe_dist: DistributionSpec,
        probe_keys,
    ) -> tuple[phys.PhysicalOp, phys.PhysicalOp, DistributionSpec]:
        """Fixed heuristic: keep naturally co-located sides in place;
        otherwise redistribute hashable keys, else broadcast the build."""
        build_req = (
            DistributionSpec.hashed(build_keys)
            if all(isinstance(k, ColumnRef) for k in build_keys)
            else None
        )
        probe_req = (
            DistributionSpec.hashed(probe_keys)
            if all(isinstance(k, ColumnRef) for k in probe_keys)
            else None
        )
        if build_req is not None and probe_req is not None:
            new_build = self._ensure(build, build_dist, build_req)
            new_probe = self._ensure(probe, probe_dist, probe_req)
            delivered = (
                probe_req
                if probe_dist.kind != DistributionSpec.REPLICATED
                else build_req
            )
            return new_build, new_probe, delivered
        new_build = self._ensure(
            build, build_dist, DistributionSpec.replicated()
        )
        return new_build, probe, probe_dist

    def _try_partition_wise_join(
        self, op: LogicalJoin, left_keys, right_keys, residual
    ) -> tuple[phys.PhysicalOp, DistributionSpec] | None:
        """Oracle-style partition-wise join: both sides partitioned
        *identically* on the (single) equi-join key and hash-distributed on
        it, so each partition pair joins locally with no Motion and no
        cross-pair work.  Static pruning on either side drops the pair."""
        left_side = self._partitioned_side(op.left)
        right_side = self._partitioned_side(op.right)
        if left_side is None or right_side is None:
            return None
        (left_get, left_pred), (right_get, right_pred) = left_side, right_side
        left_scheme = left_get.table.partition_scheme
        right_scheme = right_get.table.partition_scheme
        assert left_scheme is not None and right_scheme is not None
        if not left_scheme.compatible_with(right_scheme):
            return None
        if left_scheme.num_levels != 1:
            return None
        # The single equi key pair must be partition key = partition key.
        matched = None
        for bk, pk in zip(left_keys, right_keys):
            if (
                isinstance(bk, ColumnRef)
                and isinstance(pk, ColumnRef)
                and bk.matches(ColumnRef(left_scheme.keys[0], left_get.alias))
                and pk.matches(ColumnRef(right_scheme.keys[0], right_get.alias))
            ):
                matched = (bk, pk)
                break
        if matched is None:
            return None
        # Co-location: both tables hash-distributed on the join key.
        for get in (left_get, right_get):
            dist = get.table.distribution
            if (
                dist.kind != DistributionPolicy.HASHED
                or dist.column != get.table.partition_scheme.keys[0]
            ):
                return None

        left_leaves = {
            left_get.table.leaf_id(oid): oid
            for oid in self._statically_selected_oids(
                left_get.table, left_get.alias, left_pred
            )
        }
        right_leaves = {
            right_get.table.leaf_id(oid): oid
            for oid in self._statically_selected_oids(
                right_get.table, right_get.alias, right_pred
            )
        }
        surviving = sorted(set(left_leaves) & set(right_leaves))
        if not surviving:
            empty: phys.PhysicalOp = phys.EmptyScan(left_get.table, left_get.alias)
            dist = self._natural(left_get.table, left_get.alias)
            # layout must match the join output: synthesize via NLJoin of
            # two empty scans
            right_empty = phys.EmptyScan(right_get.table, right_get.alias)
            join: phys.PhysicalOp = phys.NLJoin(
                "inner", empty, right_empty, op.predicate
            )
            join.distribution = dist
            return join, dist
        pair_joins: list[phys.PhysicalOp] = []
        for leaf in surviving:
            left_scan: phys.PhysicalOp = phys.LeafScan(
                left_get.table, left_get.alias, left_leaves[leaf]
            )
            if left_pred is not None:
                left_scan = phys.Filter(left_scan, left_pred)
            right_scan: phys.PhysicalOp = phys.LeafScan(
                right_get.table, right_get.alias, right_leaves[leaf]
            )
            if right_pred is not None:
                right_scan = phys.Filter(right_scan, right_pred)
            pair_joins.append(
                phys.HashJoin(
                    op.kind, left_scan, right_scan,
                    left_keys, right_keys, residual,
                )
            )
        delivered = DistributionSpec.hashed(
            [k for k in left_keys if isinstance(k, ColumnRef)][:1]
        )
        result = phys.Append(pair_joins)
        result.distribution = delivered
        return result, delivered

    def _partitioned_side(self, op: LogicalOp):
        """A (possibly filtered) Get over a partitioned table, or None."""
        if isinstance(op, LogicalGet):
            get, predicate = op, None
        elif isinstance(op, LogicalSelect) and isinstance(op.child, LogicalGet):
            get, predicate = op.child, op.predicate
        else:
            return None
        if not get.table.is_partitioned:
            return None
        return get, predicate

    def _maybe_param_dpe(
        self,
        build: phys.PhysicalOp,
        probe: phys.PhysicalOp,
        build_keys,
        probe_keys,
    ) -> phys.PhysicalOp:
        """Planner's rudimentary dynamic elimination: when the probe side is
        an Append over a single-level partitioned table joined by equality
        on its partition key (with no Motion in between), compute the OID
        set at run time from the build stream and guard each listed leaf."""
        if not self.enable_param_dpe:
            return build
        append = probe
        if isinstance(append, phys.Filter):
            append = append.children[0]
        if not isinstance(append, phys.Append):
            return build
        leaf_scans = [
            child
            for child in append.children
            if isinstance(child, phys.LeafScan)
        ]
        if len(leaf_scans) != len(append.children) or not leaf_scans:
            return build
        table = leaf_scans[0].table
        scheme = table.partition_scheme
        if scheme is None or scheme.num_levels != 1:
            return build
        if any(scan.guard_scan_id is not None for scan in leaf_scans):
            return build
        alias = leaf_scans[0].alias
        part_key = ColumnRef(scheme.keys[0], alias)
        join_pred = None
        for build_key, probe_key in zip(build_keys, probe_keys):
            if isinstance(probe_key, ColumnRef) and probe_key.matches(part_key):
                from ..expr.ast import Comparison

                join_pred = Comparison("=", part_key, build_key)
                break
        if join_pred is None:
            return build
        guard_id = self._next_guard_id
        self._next_guard_id += 1
        for scan in leaf_scans:
            scan.guard_scan_id = guard_id
        spec = PartSelectorSpec(guard_id, table, [part_key], [join_pred])
        selector = phys.PartitionSelector(spec, build)
        selector.distribution = build.distribution
        return selector

    # -- aggregation -----------------------------------------------------------------

    def _translate_group_by(
        self, op: LogicalGroupBy
    ) -> tuple[phys.PhysicalOp, DistributionSpec]:
        child, dist = self._translate(op.child)
        if op.group_keys:
            required = DistributionSpec.hashed(list(op.group_keys))
            child = self._ensure(child, dist, required)
            agg = phys.HashAgg(child, op.group_keys, op.aggregates)
            agg.distribution = required
            return agg, required
        child = self._ensure(child, dist, DistributionSpec.singleton())
        agg = phys.HashAgg(child, (), op.aggregates)
        agg.distribution = DistributionSpec.singleton()
        return agg, DistributionSpec.singleton()

    # -- DML -------------------------------------------------------------------------

    def _translate_update(
        self, op: LogicalUpdate
    ) -> tuple[phys.PhysicalOp, DistributionSpec]:
        child = self._translate_update_source(op.child)
        child = self._ensure(
            child, DistributionSpec.any(), DistributionSpec.singleton()
        )
        update = phys.Update(child, op.target, op.target_alias, op.assignments)
        update.distribution = DistributionSpec.singleton()
        return update, DistributionSpec.singleton()

    def _translate_delete(
        self, op: LogicalDelete
    ) -> tuple[phys.PhysicalOp, DistributionSpec]:
        child = self._translate_update_source(op.child)
        child = self._ensure(
            child, DistributionSpec.any(), DistributionSpec.singleton()
        )
        delete = phys.Delete(child, op.target, op.target_alias)
        delete.distribution = DistributionSpec.singleton()
        return delete, DistributionSpec.singleton()

    def _translate_update_source(self, op: LogicalOp) -> phys.PhysicalOp:
        """The paper's quadratic case: a join of two partitioned tables
        under DML is expanded into every partition-pair join."""
        if isinstance(op, LogicalJoin) and op.kind == "inner":
            left_parts = self._partition_branches(op.left)
            right_parts = self._partition_branches(op.right)
            if (
                left_parts is not None
                and right_parts is not None
                and (len(left_parts) > 1 or len(right_parts) > 1)
            ):
                left_layout = op.left.output_layout()
                right_layout = op.right.output_layout()
                left_keys, right_keys, residual = split_equijoin(
                    op.predicate, left_layout, right_layout
                )
                joins: list[phys.PhysicalOp] = []
                for left_branch in left_parts:
                    for right_branch in right_parts:
                        right_side = phys.BroadcastMotion(
                            _clone(right_branch)
                        )
                        if left_keys:
                            joins.append(
                                phys.HashJoin(
                                    "inner",
                                    _clone(left_branch),
                                    right_side,
                                    left_keys,
                                    right_keys,
                                    residual,
                                )
                            )
                        else:
                            joins.append(
                                phys.NLJoin(
                                    "inner",
                                    _clone(left_branch),
                                    right_side,
                                    op.predicate,
                                )
                            )
                return phys.Append(joins)
        node, _ = self._translate(op)
        return node

    def _partition_branches(
        self, op: LogicalOp
    ) -> list[phys.PhysicalOp] | None:
        """Per-partition scan branches for a (possibly filtered) Get."""
        if isinstance(op, LogicalGet):
            get, predicate = op, None
        elif isinstance(op, LogicalSelect) and isinstance(
            op.child, LogicalGet
        ):
            get, predicate = op.child, op.predicate
        else:
            return None
        table = get.table
        if not table.is_partitioned:
            scan: phys.PhysicalOp = phys.Scan(table, get.alias)
            if predicate is not None:
                scan = phys.Filter(scan, predicate)
            return [scan]
        oids = self._statically_selected_oids(table, get.alias, predicate)
        if not oids:
            return [phys.EmptyScan(table, get.alias)]
        branches: list[phys.PhysicalOp] = []
        for oid in oids:
            leaf: phys.PhysicalOp = phys.LeafScan(table, get.alias, oid)
            if predicate is not None:
                leaf = phys.Filter(leaf, predicate)
            branches.append(leaf)
        return branches


def _clone(op: phys.PhysicalOp) -> phys.PhysicalOp:
    """Deep-copy a plan branch so repeated uses stay independent."""
    return op.with_children([_clone(child) for child in op.children])
