"""Exploration and implementation rules.

Exploration enlarges the logical space (join commutativity — what lets the
Memo of the paper's Figure 13 contain both ``HashJoin[1,2]`` and
``HashJoin[2,1]``); implementation turns logical expressions into physical
alternatives within the same group.
"""

from __future__ import annotations

from ..errors import OptimizerError
from ..expr.analysis import conj, conjuncts
from ..expr.ast import Comparison, Expression, column_refs
from ..expr.eval import RowLayout
from ..obs import opt_events
from ..logical.ops import (
    LogicalDelete,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalSelect,
    LogicalSort,
    LogicalUpdate,
)
from ..physical import ops as phys
from .memo import Group, GroupExpression, Memo

JOIN_COMMUTE = "join_commute"


def explore(memo: Memo) -> None:
    """Apply exploration rules to a fixpoint."""
    changed = True
    while changed:
        changed = False
        for group in memo:
            for gexpr in list(group.logical_exprs()):
                if _apply_join_commutativity(group, gexpr):
                    changed = True


def _apply_join_commutativity(group: Group, gexpr: GroupExpression) -> bool:
    op = gexpr.op
    if not isinstance(op, LogicalJoin) or op.kind != "inner":
        return False
    if JOIN_COMMUTE in gexpr.rule_mask:
        return False
    gexpr.rule_mask.add(JOIN_COMMUTE)
    swapped = GroupExpression(
        op.with_children(()),
        (gexpr.child_groups[1], gexpr.child_groups[0]),
        is_logical=True,
    )
    added = group.add(swapped)
    swapped.rule_mask.add(JOIN_COMMUTE)
    if added:
        log = opt_events.log()
        if log is not None:
            log.rule_fired(JOIN_COMMUTE, group.id)
    return added


def implement(memo: Memo) -> None:
    """Create physical alternatives for every logical expression."""
    log = opt_events.log()
    for group in memo:
        for gexpr in list(group.logical_exprs()):
            for physical in _implementations(memo, group, gexpr):
                if group.add(physical) and log is not None:
                    log.rule_fired(
                        f"implement_{type(physical.op).__name__}", group.id
                    )


def _implementations(memo: Memo, group: Group, gexpr: GroupExpression):
    op = gexpr.op
    kids = gexpr.child_groups
    if isinstance(op, LogicalGet):
        if op.table.is_partitioned:
            scan_id = next(iter(group.consumer_ids))
            yield GroupExpression(
                phys.DynamicScan(op.table, op.alias, scan_id), kids, False
            )
        else:
            yield GroupExpression(phys.Scan(op.table, op.alias), kids, False)
        return
    if isinstance(op, LogicalSelect):
        yield GroupExpression(
            _bare(phys.Filter, predicate=op.predicate), kids, False
        )
        return
    if isinstance(op, LogicalProject):
        yield GroupExpression(_bare(phys.Project, items=op.items), kids, False)
        return
    if isinstance(op, LogicalJoin):
        yield from _implement_join(memo, op, kids)
        return
    if isinstance(op, LogicalGroupBy):
        yield GroupExpression(
            _bare(
                phys.HashAgg,
                group_keys=op.group_keys,
                aggregates=op.aggregates,
                mode="single",
            ),
            kids,
            False,
        )
        return
    if isinstance(op, LogicalSort):
        yield GroupExpression(_bare(phys.Sort, keys=op.keys), kids, False)
        return
    if isinstance(op, LogicalLimit):
        yield GroupExpression(_bare(phys.Limit, count=op.count), kids, False)
        return
    if isinstance(op, LogicalUpdate):
        yield GroupExpression(
            _bare(
                phys.Update,
                target=op.target,
                target_alias=op.target_alias,
                assignments=op.assignments,
            ),
            kids,
            False,
        )
        return
    if isinstance(op, LogicalDelete):
        yield GroupExpression(
            _bare(
                phys.Delete,
                target=op.target,
                target_alias=op.target_alias,
            ),
            kids,
            False,
        )
        return
    raise OptimizerError(f"no implementation rule for {type(op).__name__}")


def _bare(cls, **attrs):
    """Construct a physical operator template without children.

    Physical constructors take children positionally; templates in the Memo
    have none, so we allocate and set the parameter fields directly.
    """
    op = cls.__new__(cls)
    op.children = ()
    for name, value in attrs.items():
        setattr(op, name, tuple(value) if isinstance(value, list) else value)
    return op


def _implement_join(memo: Memo, op: LogicalJoin, kids: tuple[int, ...]):
    left_layout = memo.group(kids[0]).layout
    right_layout = memo.group(kids[1]).layout
    left_keys, right_keys, residual = split_equijoin(
        op.predicate, left_layout, right_layout
    )
    if op.kind == "inner":
        if left_keys:
            yield GroupExpression(
                _bare(
                    phys.HashJoin,
                    kind="inner",
                    build_keys=left_keys,
                    probe_keys=right_keys,
                    residual=residual,
                ),
                kids,
                False,
            )
        yield GroupExpression(
            _bare(phys.NLJoin, kind="inner", predicate=op.predicate),
            kids,
            False,
        )
        return
    # Semi join: emit left-side rows with >=1 match on the right.  The hash
    # implementation builds on the RIGHT input (executed first) and probes
    # with the LEFT input, so the physical child order is (right, left) —
    # this is what lets the subquery side drive dynamic partition
    # elimination for the paper's Figure 4 query.
    if left_keys:
        yield GroupExpression(
            _bare(
                phys.HashJoin,
                kind="semi",
                build_keys=right_keys,
                probe_keys=left_keys,
                residual=residual,
            ),
            (kids[1], kids[0]),
            False,
        )
    yield GroupExpression(
        _bare(phys.NLJoin, kind="semi", predicate=op.predicate),
        kids,
        False,
    )


def split_equijoin(
    predicate: Expression | None,
    left_layout: RowLayout,
    right_layout: RowLayout,
) -> tuple[list[Expression], list[Expression], Expression | None]:
    """Split a join predicate into aligned equi-key lists plus a residual.

    A conjunct ``a = b`` becomes a key pair when one side's columns all
    resolve in the left layout and the other side's all in the right.
    """
    left_keys: list[Expression] = []
    right_keys: list[Expression] = []
    residual: list[Expression] = []
    for conjunct in conjuncts(predicate):
        pair = _equi_pair(conjunct, left_layout, right_layout)
        if pair is not None:
            left_keys.append(pair[0])
            right_keys.append(pair[1])
        else:
            residual.append(conjunct)
    return left_keys, right_keys, conj(residual)


def _equi_pair(
    conjunct: Expression,
    left_layout: RowLayout,
    right_layout: RowLayout,
) -> tuple[Expression, Expression] | None:
    if not isinstance(conjunct, Comparison) or conjunct.op != "=":
        return None
    sides = (conjunct.left, conjunct.right)
    refs = [column_refs(side) for side in sides]
    if not refs[0] or not refs[1]:
        return None

    def fits(side_refs, layout: RowLayout) -> bool:
        return all(layout.has(ref) for ref in side_refs)

    if fits(refs[0], left_layout) and fits(refs[1], right_layout):
        return sides[0], sides[1]
    if fits(refs[1], left_layout) and fits(refs[0], right_layout):
        return sides[1], sides[0]
    return None
