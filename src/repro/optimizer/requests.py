"""Optimization requests and best-plan bookkeeping.

An :class:`OptimizationRequest` is the paper's request pair extended with
the co-location constraint needed to express the Figure 12 validity rule in
the request calculus:

* ``dist`` — required :class:`DistributionSpec`;
* ``props`` — required :class:`PartitionPropagationSpec`, the set of
  PartSelectorSpecs still to be resolved in (or on top of) the subtree;
* ``colocated`` — part scan ids whose *consumer* lives in this subtree and
  whose *producer* was placed outside it (join-driven dynamic elimination):
  no Motion may appear between this subtree's root and those consumers, so
  Motion enforcers are forbidden while the set is non-empty.

:class:`BestInfo` records, per (group, request), the winning alternative:
a group expression with its child requests, a Motion enforcer, a
PartitionSelector enforcer, or the ``Sequence``-like selector+DynamicScan
unit at a scan group.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..physical.properties import (
    DistributionSpec,
    PartitionPropagationSpec,
    PartSelectorSpec,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .memo import GroupExpression


class OptimizationRequest:
    """Required physical properties submitted to a Memo group."""

    __slots__ = ("dist", "props", "colocated")

    def __init__(
        self,
        dist: DistributionSpec,
        props: PartitionPropagationSpec | None = None,
        colocated: frozenset[int] = frozenset(),
    ):
        self.dist = dist
        self.props = props or PartitionPropagationSpec.none()
        self.colocated = colocated

    def with_dist(self, dist: DistributionSpec) -> "OptimizationRequest":
        return OptimizationRequest(dist, self.props, self.colocated)

    def with_props(
        self, props: PartitionPropagationSpec
    ) -> "OptimizationRequest":
        return OptimizationRequest(self.dist, props, self.colocated)

    def _key(self) -> tuple:
        return (self.dist, self.props, self.colocated)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OptimizationRequest):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        parts = [repr(self.dist), repr(self.props)]
        if self.colocated:
            parts.append(f"coloc={sorted(self.colocated)}")
        return "{" + ", ".join(parts) + "}"


class BestInfo:
    """The winning alternative for one (group, request) pair."""

    GEXPR = "gexpr"
    MOTION = "motion"
    SELECTOR = "selector"
    SCAN_UNIT = "scan_unit"
    TWO_STAGE_AGG = "two_stage_agg"
    TOP_N = "top_n"

    __slots__ = (
        "kind",
        "cost",
        "delivered",
        "gexpr",
        "child_requests",
        "motion_kind",
        "motion_exprs",
        "selector_spec",
        "child_request",
        "extra",
    )

    def __init__(
        self,
        kind: str,
        cost: float,
        delivered: DistributionSpec,
        gexpr: "GroupExpression | None" = None,
        child_requests: Sequence[OptimizationRequest] = (),
        motion_kind: str | None = None,
        motion_exprs: tuple = (),
        selector_spec: PartSelectorSpec | None = None,
        child_request: OptimizationRequest | None = None,
        extra: dict | None = None,
    ):
        self.kind = kind
        self.cost = cost
        self.delivered = delivered
        self.gexpr = gexpr
        self.child_requests = tuple(child_requests)
        self.motion_kind = motion_kind
        self.motion_exprs = motion_exprs
        self.selector_spec = selector_spec
        self.child_request = child_request
        #: alternative-specific payload (e.g. top-N sort keys)
        self.extra = extra or {}

    def __repr__(self) -> str:
        if self.kind == self.GEXPR:
            return f"Best(gexpr={self.gexpr!r}, cost={self.cost:.1f})"
        if self.kind == self.MOTION:
            return f"Best(motion={self.motion_kind}, cost={self.cost:.1f})"
        if self.kind == self.SELECTOR:
            return f"Best(selector={self.selector_spec!r}, cost={self.cost:.1f})"
        return f"Best(scan_unit={self.selector_spec!r}, cost={self.cost:.1f})"
