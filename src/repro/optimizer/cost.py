"""The cost model.

Costs are abstract units, linear in the work each operator performs.
Partitioning enters the model in three places, mirroring the paper:

* a DynamicScan pays a **per-partition open overhead** on top of per-row
  scan cost — this is what the Table 2 experiment measures (and why the
  overhead stays within a few percent: the per-row term dominates);
* a PartitionSelector with constant predicates reduces the consumer's scan
  cost by the **exact** fraction of partitions selected (``f*_T`` can be
  evaluated at costing time for constant predicates);
* a PartitionSelector with join predicates (dynamic elimination) reduces it
  by the configurable ``dpe_fraction`` — the optimizer cannot know at plan
  time how many partitions survive, exactly the cost-model-tuning caveat
  the paper discusses with its Figure 17 outliers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """Cost constants.  All per-row unless stated otherwise."""

    scan_row: float = 1.0
    partition_open: float = 5.0  # per leaf partition opened
    filter_row: float = 0.1
    project_row: float = 0.05
    hash_build_row: float = 1.5
    hash_probe_row: float = 1.0
    nl_pair: float = 0.5  # per (outer, inner) pair examined
    agg_row: float = 1.2
    sort_row_log: float = 0.3  # multiplied by rows * log2(rows)
    motion_row: float = 2.0  # network transfer per row per destination
    gather_row: float = 1.0
    selector_tuple: float = 0.2  # per tuple through a streaming selector
    selector_setup: float = 10.0
    output_row: float = 0.1
    update_row: float = 4.0
    #: assumed fraction of partitions surviving dynamic (join-driven)
    #: partition elimination — a tunable, like the paper's cost parameters.
    dpe_fraction: float = 0.1

    def sort_cost(self, rows: float) -> float:
        import math

        if rows <= 1:
            return self.sort_row_log
        return self.sort_row_log * rows * math.log2(rows)


#: Cost of a plan alternative that violates a hard constraint.
INFINITE = float("inf")
