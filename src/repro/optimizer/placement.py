"""PartitionSelector placement — the paper's Section 2.3 algorithms.

Given a physical operator tree that contains DynamicScans but no
PartitionSelectors, compute where the selectors go:

* :func:`place_part_selectors` is **Algorithm 1** (``PlacePartSelectors``):
  initialise one :class:`PartSelectorSpec` per DynamicScan, then recurse,
  asking each operator which specs go *on top* of it and which are pushed
  to which child.
* :func:`_compute_default` is **Algorithm 2**: non-filtering operators
  (Project, GroupBy, Sort, Motion, ...) push each spec toward the child
  that defines its DynamicScan, or report it for enforcement on top.
* :func:`_compute_select` is **Algorithm 3**: Select additionally extracts
  partition-filtering predicates on the partitioning key(s) (via
  ``FindPredOnKey``) and augments the pushed spec with them — this is what
  turns a WHERE clause into static partition elimination.
* :func:`_compute_join` is **Algorithm 4**: if the DynamicScan lives in the
  join's **outer** (left, first-executed) child the spec is pushed there
  unchanged; if it lives in the **inner** child and the join predicate
  constrains the partitioning key, the spec — augmented with the join
  predicate — is pushed to the *outer* side, yielding dynamic partition
  elimination; otherwise it stays on the inner side.

Enforcement mirrors the paper's figures: a spec enforced on top of a
subtree becomes a pass-through PartitionSelector; a spec that reaches its
own DynamicScan becomes the ``Sequence(PartitionSelector, DynamicScan)``
pattern of Figure 5.  Predicates that reference columns not available at
the enforcement point (join-form predicates that ended up at the scan)
are dropped from the selector, degrading to "select all" — never unsound.

Multi-level partitioning (Section 2.4) is handled throughout by keeping
one optional predicate per partitioning level (Figure 11's extended
PartSelectorSpec).
"""

from __future__ import annotations

from ..errors import OptimizerError
from ..expr.analysis import conj, find_preds_on_keys
from ..obs import opt_events
from ..obs import trace as obs_trace
from ..expr.ast import ColumnRef, Expression, column_refs
from ..physical.ops import (
    DynamicScan,
    HashJoin,
    NLJoin,
    PartitionSelector,
    PhysicalOp,
    Sequence,
)
from ..physical.properties import PartSelectorSpec

__all__ = [
    "initial_specs",
    "place_part_selectors",
]


def initial_specs(root: PhysicalOp) -> list[PartSelectorSpec]:
    """One empty-predicate spec per DynamicScan in the tree (the
    initialisation step described with Algorithm 1)."""
    specs = []
    for op in root.walk():
        if isinstance(op, DynamicScan):
            specs.append(
                PartSelectorSpec.for_table(op.part_scan_id, op.table, op.alias)
            )
    return specs


def place_part_selectors(
    root: PhysicalOp,
    specs: list[PartSelectorSpec] | None = None,
) -> PhysicalOp:
    """Algorithm 1: return a new tree with all PartitionSelectors placed."""
    if specs is None:
        specs = initial_specs(root)
    with obs_trace.span("place_partition_selectors", specs=len(specs)):
        placed = _place(root, specs)
    unresolved = [
        spec for spec in specs if not _has_part_scan_id(placed, spec.part_scan_id)
    ]
    if unresolved:
        raise OptimizerError(
            f"could not resolve PartitionSelectors for specs {unresolved!r}"
        )
    return placed


def _place(expr: PhysicalOp, input_specs: list[PartSelectorSpec]) -> PhysicalOp:
    if isinstance(expr, DynamicScan):
        return _enforce_at_scan(expr, input_specs)

    on_top, child_specs = _compute_part_selectors(expr, input_specs)
    new_children = [
        _place(child, specs)
        for child, specs in zip(expr.children, child_specs)
    ]
    result = expr.with_children(new_children) if expr.children else expr
    return _enforce_on_top(result, on_top)


def _enforce_on_top(
    expr: PhysicalOp, specs: list[PartSelectorSpec]
) -> PhysicalOp:
    """EnforcePartSelectors: wrap ``expr`` in pass-through selectors."""
    log = opt_events.log()
    for spec in specs:
        if log is not None:
            log.enforcer_added(
                opt_events.PARTITION_SELECTOR,
                -1,  # standalone placement runs outside any Memo group
                f"part_scan {spec.part_scan_id}",
                placement="on_top",
            )
        expr = PartitionSelector(_prune_unavailable(spec, expr), expr)
    return expr


def _enforce_at_scan(
    scan: DynamicScan, specs: list[PartSelectorSpec]
) -> PhysicalOp:
    """Specs arriving at a DynamicScan leaf.

    The scan's own spec becomes the ``Sequence(PartitionSelector,
    DynamicScan)`` pattern of Figure 5.  Foreign specs (routed here by a
    join because this subtree executes first) are enforced *on top* as
    pass-through selectors over the scan's tuple stream — the degenerate
    case of the paper's "on top" placement when the producer-side subtree
    is just a scan.
    """
    mine = [s for s in specs if s.part_scan_id == scan.part_scan_id]
    others = [s for s in specs if s.part_scan_id != scan.part_scan_id]
    if len(mine) > 1:
        raise OptimizerError(
            f"multiple specs for DynamicScan {scan.part_scan_id}"
        )
    result: PhysicalOp = scan
    if mine:
        spec = _constant_only(mine[0])
        log = opt_events.log()
        if log is not None:
            log.enforcer_added(
                opt_events.PARTITION_SELECTOR,
                -1,
                f"part_scan {spec.part_scan_id}",
                placement="scan_unit",
            )
        result = Sequence([PartitionSelector(spec), scan])
    return _enforce_on_top(result, others)


def _constant_only(spec: PartSelectorSpec) -> PartSelectorSpec:
    """Drop predicates that need streamed tuples (join-form) — a standalone
    selector under a Sequence has no input rows to evaluate them on."""
    predicates = []
    for key, predicate in zip(spec.part_keys, spec.part_predicates):
        if predicate is None or _references_only_key(predicate, key):
            predicates.append(predicate)
        else:
            predicates.append(None)
    return spec.with_predicates(predicates)


def _prune_unavailable(
    spec: PartSelectorSpec, child: PhysicalOp
) -> PartSelectorSpec:
    """Drop predicate parts whose non-key columns are not produced by the
    selector's input — they cannot be evaluated at this point."""
    layout = child.output_layout()
    predicates = []
    for key, predicate in zip(spec.part_keys, spec.part_predicates):
        if predicate is None:
            predicates.append(None)
            continue
        usable = all(
            ref.matches(key) or layout.has(ref)
            for ref in column_refs(predicate)
        )
        predicates.append(predicate if usable else None)
    return spec.with_predicates(predicates)


def _references_only_key(predicate: Expression, key: ColumnRef) -> bool:
    return all(ref.matches(key) for ref in column_refs(predicate))


def _has_part_scan_id(expr: PhysicalOp, part_scan_id: int) -> bool:
    """``Operator::HasPartScanId``: is the DynamicScan with this id in the
    subtree rooted at ``expr``?"""
    return any(
        isinstance(op, DynamicScan) and op.part_scan_id == part_scan_id
        for op in expr.walk()
    )


# ---------------------------------------------------------------------------
# ComputePartSelectors overloads
# ---------------------------------------------------------------------------


def _compute_part_selectors(
    expr: PhysicalOp, input_specs: list[PartSelectorSpec]
) -> tuple[list[PartSelectorSpec], list[list[PartSelectorSpec]]]:
    """Dispatch to the operator-specific overload.  Returns
    ``(partSelectorsOnTop, childPartSelectors)``."""
    if isinstance(expr, (HashJoin, NLJoin)):
        return _compute_join(expr, input_specs)
    from ..physical.ops import Filter

    if isinstance(expr, Filter):
        return _compute_select(expr, input_specs)
    return _compute_default(expr, input_specs)


def _compute_default(
    expr: PhysicalOp, input_specs: list[PartSelectorSpec]
) -> tuple[list[PartSelectorSpec], list[list[PartSelectorSpec]]]:
    """Algorithm 2: push each spec to the child defining its DynamicScan."""
    on_top: list[PartSelectorSpec] = []
    child_specs: list[list[PartSelectorSpec]] = [[] for _ in expr.children]
    for spec in input_specs:
        placed = False
        for i, child in enumerate(expr.children):
            if _has_part_scan_id(child, spec.part_scan_id):
                child_specs[i].append(spec)
                placed = True
                break
        if not placed:
            on_top.append(spec)
    return on_top, child_specs


def _compute_select(
    expr: "PhysicalOp", input_specs: list[PartSelectorSpec]
) -> tuple[list[PartSelectorSpec], list[list[PartSelectorSpec]]]:
    """Algorithm 3: augment pushed specs with partition-filtering
    predicates extracted from the Select's predicate."""
    on_top: list[PartSelectorSpec] = []
    child_specs: list[list[PartSelectorSpec]] = [[]]
    child = expr.children[0]
    for spec in input_specs:
        if not _has_part_scan_id(child, spec.part_scan_id):
            on_top.append(spec)
            continue
        key_preds = find_preds_on_keys(expr.predicate, spec.part_keys)
        if any(p is not None for p in key_preds):
            merged = [
                conj([extracted, existing])
                for extracted, existing in zip(key_preds, spec.part_predicates)
            ]
            child_specs[0].append(spec.with_predicates(merged))
        else:
            child_specs[0].append(spec)
    return on_top, child_specs


def _compute_join(
    expr: "HashJoin | NLJoin", input_specs: list[PartSelectorSpec]
) -> tuple[list[PartSelectorSpec], list[list[PartSelectorSpec]]]:
    """Algorithm 4.  Child 0 is the outer (first-executed) side."""
    on_top: list[PartSelectorSpec] = []
    child_specs: list[list[PartSelectorSpec]] = [[], []]
    outer, inner = expr.children
    predicate = _join_predicate(expr)
    for spec in input_specs:
        in_outer = _has_part_scan_id(outer, spec.part_scan_id)
        in_inner = _has_part_scan_id(inner, spec.part_scan_id)
        if not in_outer and not in_inner:
            on_top.append(spec)
            continue
        if in_outer:
            child_specs[0].append(spec)
            continue
        key_preds = find_preds_on_keys(predicate, spec.part_keys)
        if all(p is None for p in key_preds):
            child_specs[1].append(spec)
            continue
        merged = [
            conj([extracted, existing])
            for extracted, existing in zip(key_preds, spec.part_predicates)
        ]
        child_specs[0].append(spec.with_predicates(merged))
    return on_top, child_specs


def _join_predicate(expr: "HashJoin | NLJoin") -> Expression | None:
    if isinstance(expr, NLJoin):
        return expr.predicate
    equalities: list[Expression] = [
        _eq(b, p) for b, p in zip(expr.build_keys, expr.probe_keys)
    ]
    if expr.residual is not None:
        equalities.append(expr.residual)
    return conj(equalities)


def _eq(left: Expression, right: Expression) -> Expression:
    from ..expr.ast import Comparison

    return Comparison("=", left, right)
