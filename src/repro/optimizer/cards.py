"""Cardinality estimation.

Textbook System-R style estimation: uniform value distributions within
[min, max], independence between conjuncts, containment for joins.  The
estimates drive both optimizers' cost decisions; the paper itself notes
(Section 4.3) that cardinality misestimates are the main source of the
few regressions Orca shows — our model inherits the same character.
"""

from __future__ import annotations

import datetime
from typing import Any

from ..expr.ast import (
    Between,
    BoolExpr,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
    Parameter,
)
from .stats import ColumnStats, TableStats

#: Fallback selectivities when no statistics apply.
DEFAULT_EQ_SELECTIVITY = 0.05
DEFAULT_RANGE_SELECTIVITY = 0.3
DEFAULT_SELECTIVITY = 0.25


class RelationEstimate:
    """Estimated shape of an intermediate result: row count plus the column
    stats still known for it (keyed ``alias.column``)."""

    def __init__(self, rows: float, columns: dict[str, ColumnStats]):
        self.rows = max(rows, 1.0)
        self.columns = columns

    def column(self, ref: ColumnRef) -> ColumnStats | None:
        if ref.qualifier is not None:
            return self.columns.get(f"{ref.qualifier}.{ref.name}")
        matches = [
            stats
            for key, stats in self.columns.items()
            if key.split(".", 1)[-1] == ref.name
        ]
        if len(matches) == 1:
            return matches[0]
        return None

    @staticmethod
    def for_table(alias: str, stats: TableStats) -> "RelationEstimate":
        columns = {
            f"{alias}.{name}": col_stats
            for name, col_stats in stats.columns.items()
        }
        return RelationEstimate(float(stats.row_count), columns)

    def scaled(self, factor: float) -> "RelationEstimate":
        return RelationEstimate(self.rows * factor, dict(self.columns))

    def joined(self, other: "RelationEstimate", rows: float) -> "RelationEstimate":
        merged = dict(self.columns)
        merged.update(other.columns)
        return RelationEstimate(rows, merged)

    def __repr__(self) -> str:
        return f"RelationEstimate(rows={self.rows:.0f})"


def _as_fraction(value: Any, stats: ColumnStats) -> float | None:
    """Estimated fraction of rows with column value below ``value``.

    Uses the equi-depth histogram when one was collected (robust to skew);
    falls back to uniform interpolation within [min, max]."""
    if stats.histogram is not None:
        try:
            return stats.histogram.fraction_below(value)
        except TypeError:
            pass
    lo, hi = stats.min_value, stats.max_value
    if lo is None or hi is None or lo == hi:
        return None
    if isinstance(lo, datetime.date) and isinstance(value, datetime.date):
        span = (hi - lo).days
        pos = (value - lo).days
        return min(max(pos / span, 0.0), 1.0) if span else None
    if isinstance(lo, (int, float)) and isinstance(value, (int, float)):
        span = hi - lo
        pos = value - lo
        return min(max(pos / span, 0.0), 1.0) if span else None
    return None


def predicate_selectivity(
    predicate: Expression | None, input_est: RelationEstimate
) -> float:
    """Estimated fraction of input rows satisfying ``predicate``."""
    if predicate is None:
        return 1.0
    if isinstance(predicate, Literal):
        if predicate.value is True:
            return 1.0
        return 0.0
    if isinstance(predicate, BoolExpr):
        if predicate.op == BoolExpr.AND:
            result = 1.0
            for arg in predicate.args:
                result *= predicate_selectivity(arg, input_est)
            return result
        if predicate.op == BoolExpr.OR:
            miss = 1.0
            for arg in predicate.args:
                miss *= 1.0 - predicate_selectivity(arg, input_est)
            return 1.0 - miss
        return max(0.0, 1.0 - predicate_selectivity(predicate.args[0], input_est))
    if isinstance(predicate, Comparison):
        return _comparison_selectivity(predicate, input_est)
    if isinstance(predicate, Between):
        subject = predicate.subject
        if (
            isinstance(subject, ColumnRef)
            and isinstance(predicate.lo, Literal)
            and isinstance(predicate.hi, Literal)
        ):
            stats = input_est.column(subject)
            if stats is not None:
                lo = _as_fraction(predicate.lo.value, stats)
                hi = _as_fraction(predicate.hi.value, stats)
                if lo is not None and hi is not None:
                    return max(hi - lo, 1.0 / stats.ndv)
        return DEFAULT_RANGE_SELECTIVITY
    if isinstance(predicate, InList):
        subject = predicate.subject
        if isinstance(subject, ColumnRef):
            stats = input_est.column(subject)
            if stats is not None:
                return min(1.0, len(predicate.values) / stats.ndv)
        return min(1.0, len(predicate.values) * DEFAULT_EQ_SELECTIVITY)
    if isinstance(predicate, IsNull):
        subject = predicate.subject
        if isinstance(subject, ColumnRef):
            stats = input_est.column(subject)
            if stats is not None:
                frac = stats.null_fraction
                return 1.0 - frac if predicate.negated else frac
        return DEFAULT_EQ_SELECTIVITY
    return DEFAULT_SELECTIVITY


def _comparison_selectivity(
    predicate: Comparison, input_est: RelationEstimate
) -> float:
    left, right, op = predicate.left, predicate.right, predicate.op
    if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
        mirrored = predicate.mirrored()
        left, right, op = mirrored.left, mirrored.right, mirrored.op
    if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        # column = column inside one relation estimate: treat as join-style.
        left_stats = input_est.column(left)
        right_stats = input_est.column(right)
        if op == "=" and left_stats and right_stats:
            return 1.0 / max(left_stats.ndv, right_stats.ndv)
        return DEFAULT_EQ_SELECTIVITY if op == "=" else DEFAULT_RANGE_SELECTIVITY
    if isinstance(left, ColumnRef) and isinstance(right, (Literal, Parameter)):
        stats = input_est.column(left)
        if stats is None or isinstance(right, Parameter):
            return (
                DEFAULT_EQ_SELECTIVITY if op in ("=", "<>")
                else DEFAULT_RANGE_SELECTIVITY
            )
        value = right.value
        if op == "=":
            return 1.0 / stats.ndv
        if op == "<>":
            return 1.0 - 1.0 / stats.ndv
        fraction = _as_fraction(value, stats)
        if fraction is None:
            return DEFAULT_RANGE_SELECTIVITY
        if op in ("<", "<="):
            return max(fraction, 1.0 / stats.ndv)
        return max(1.0 - fraction, 1.0 / stats.ndv)
    return DEFAULT_SELECTIVITY


def join_estimate(
    left: RelationEstimate,
    right: RelationEstimate,
    predicate: Expression | None,
    kind: str = "inner",
) -> RelationEstimate:
    """Join cardinality: cross product scaled by predicate selectivity,
    with the classic ``1/max(ndv)`` rule for equi-conjuncts."""
    cross = left.rows * right.rows
    selectivity = 1.0
    if predicate is not None:
        from ..expr.analysis import conjuncts

        merged = left.joined(right, cross)
        for conjunct in conjuncts(predicate):
            selectivity *= predicate_selectivity(conjunct, merged)
    rows = cross * selectivity
    if kind == "semi":
        rows = min(left.rows, rows)
        return RelationEstimate(rows, dict(left.columns))
    return left.joined(right, rows)


def group_estimate(
    child: RelationEstimate, group_keys: list[ColumnRef]
) -> float:
    """Number of groups: product of key NDVs capped by input size."""
    if not group_keys:
        return 1.0
    ndv_product = 1.0
    for key in group_keys:
        stats = child.column(key)
        ndv_product *= stats.ndv if stats else 25.0
    return min(ndv_product, child.rows)


def distinct_values(
    est: RelationEstimate, ref: ColumnRef, default: float = 25.0
) -> float:
    stats = est.column(ref)
    if stats is None:
        return min(default, est.rows)
    return min(float(stats.ndv), est.rows)
