"""Query optimization: placement algorithms, statistics, cost model, the
Orca-style Cascades engine, and the legacy Planner baseline."""

from .cost import CostModel
from .orca import OrcaOptimizer
from .placement import initial_specs, place_part_selectors
from .planner import PlannerOptimizer
from .stats import StatsRegistry, TableStats, collect_stats

__all__ = [
    "CostModel",
    "OrcaOptimizer",
    "PlannerOptimizer",
    "StatsRegistry",
    "TableStats",
    "collect_stats",
    "initial_specs",
    "place_part_selectors",
]
