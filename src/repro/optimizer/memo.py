"""The Memo: compact encoding of the optimizer's search space.

Following the Cascades framework (and the paper's Figure 13), the Memo is a
set of **groups** of logically equivalent expressions; each **group
expression** is an operator whose children are *group references*, so a
very large plan space is encoded without duplication.

Each group carries logical properties computed once at copy-in:

* ``layout`` — the output columns (used to decide which side of a join an
  expression refers to);
* ``aliases`` — base relations visible in the subtree;
* ``consumer_specs`` — for every DynamicScan in the subtree, the initial
  (predicate-free) :class:`PartSelectorSpec`; this is how optimization
  requests are routed toward the consumer;
* ``estimate`` — the cardinality estimate driving the cost model;
* per-group **request hash tables** mapping each optimization request to
  its best plan (paper Figure 13's small tables).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..errors import OptimizerError
from ..expr.eval import RowLayout
from ..obs import opt_events
from ..logical.ops import (
    LogicalDelete,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalOp,
    LogicalProject,
    LogicalSelect,
    LogicalSort,
    LogicalUpdate,
)
from ..physical.properties import PartSelectorSpec
from .cards import (
    RelationEstimate,
    group_estimate,
    join_estimate,
    predicate_selectivity,
)
from .stats import StatsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .requests import BestInfo, OptimizationRequest


class GroupExpression:
    """An operator with group references as children."""

    __slots__ = ("op", "child_groups", "is_logical", "rule_mask")

    def __init__(self, op, child_groups: tuple[int, ...], is_logical: bool):
        self.op = op
        self.child_groups = child_groups
        self.is_logical = is_logical
        #: names of exploration rules already applied (loop prevention)
        self.rule_mask: set[str] = set()

    def key(self) -> tuple:
        return (type(self.op).__name__, _op_key(self.op), self.child_groups)

    def __repr__(self) -> str:
        kids = ",".join(str(g) for g in self.child_groups)
        kind = "L" if self.is_logical else "P"
        return f"{kind}:{type(self.op).__name__}[{kids}]"


def _op_key(op) -> tuple:
    """A hashable identity for an operator's parameters (children excluded)."""
    from ..physical import ops as phys

    if isinstance(op, LogicalGet):
        return (op.table.oid, op.alias)
    if isinstance(op, LogicalSelect):
        return (op.predicate,)
    if isinstance(op, LogicalProject):
        return (op.items,)
    if isinstance(op, LogicalJoin):
        return (op.kind, op.predicate)
    if isinstance(op, LogicalGroupBy):
        return (op.group_keys, op.aggregates)
    if isinstance(op, LogicalSort):
        return (op.keys,)
    if isinstance(op, LogicalLimit):
        return (op.count,)
    if isinstance(op, LogicalUpdate):
        return (op.target.oid, op.target_alias, op.assignments)
    if isinstance(op, LogicalDelete):
        return (op.target.oid, op.target_alias)
    if isinstance(op, phys.Scan):
        return (op.table.oid, op.alias)
    if isinstance(op, phys.DynamicScan):
        return (op.table.oid, op.alias, op.part_scan_id)
    if isinstance(op, phys.Filter):
        return (op.predicate,)
    if isinstance(op, phys.Project):
        return (op.items,)
    if isinstance(op, phys.HashJoin):
        return (op.kind, op.build_keys, op.probe_keys, op.residual)
    if isinstance(op, phys.NLJoin):
        return (op.kind, op.predicate)
    if isinstance(op, phys.HashAgg):
        return (op.group_keys, op.aggregates, op.mode)
    if isinstance(op, phys.Sort):
        return (op.keys,)
    if isinstance(op, phys.Limit):
        return (op.count,)
    if isinstance(op, phys.Update):
        return (op.target.oid, op.target_alias, op.assignments)
    if isinstance(op, phys.Delete):
        return (op.target.oid, op.target_alias)
    raise OptimizerError(f"no memo key for operator {type(op).__name__}")


class Group:
    """A set of logically equivalent expressions plus logical properties."""

    def __init__(
        self,
        group_id: int,
        layout: RowLayout,
        aliases: frozenset[str],
        consumer_specs: dict[int, PartSelectorSpec],
        estimate: RelationEstimate,
    ):
        self.id = group_id
        self.layout = layout
        self.aliases = aliases
        self.consumer_specs = consumer_specs
        self.estimate = estimate
        self.gexprs: list[GroupExpression] = []
        self._keys: set[tuple] = set()
        #: request hash table: OptimizationRequest -> BestInfo
        self.best: dict["OptimizationRequest", "BestInfo"] = {}
        self._in_progress: set["OptimizationRequest"] = set()

    @property
    def consumer_ids(self) -> set[int]:
        return set(self.consumer_specs)

    def add(self, gexpr: GroupExpression) -> bool:
        """Insert a group expression if not already present."""
        key = gexpr.key()
        if key in self._keys:
            return False
        self._keys.add(key)
        self.gexprs.append(gexpr)
        log = opt_events.log()
        if log is not None:
            log.expression_added(self.id, repr(gexpr), gexpr.is_logical)
        return True

    def logical_exprs(self) -> list[GroupExpression]:
        return [g for g in self.gexprs if g.is_logical]

    def physical_exprs(self) -> list[GroupExpression]:
        return [g for g in self.gexprs if not g.is_logical]

    def __repr__(self) -> str:
        return f"Group({self.id}, {len(self.gexprs)} exprs)"


class Memo:
    """All groups for one optimization run."""

    def __init__(self, stats: StatsRegistry):
        self.stats = stats
        self.groups: list[Group] = []
        self._next_part_scan_id = 1
        #: part_scan_id -> (table, alias) for every partitioned Get
        self.part_scans: dict[int, tuple] = {}

    def group(self, group_id: int) -> Group:
        return self.groups[group_id]

    def __iter__(self) -> Iterator[Group]:
        return iter(self.groups)

    # -- construction ---------------------------------------------------------

    def copy_in(self, op: LogicalOp) -> int:
        """Recursively insert a logical tree, returning the root group id.

        Partitioned Gets are assigned their ``part_scan_id`` here — the
        initialisation step of the paper's Algorithm 1.
        """
        child_ids = tuple(self.copy_in(child) for child in op.children)
        template = op.with_children(()) if op.children else op
        group = self._new_group_for(op, child_ids)
        group.add(GroupExpression(template, child_ids, is_logical=True))
        return group.id

    def _new_group_for(self, op: LogicalOp, child_ids: tuple[int, ...]) -> Group:
        layout = op.output_layout()
        aliases: frozenset[str] = frozenset()
        consumer_specs: dict[int, PartSelectorSpec] = {}
        for child_id in child_ids:
            child = self.group(child_id)
            aliases |= child.aliases
            consumer_specs.update(child.consumer_specs)

        estimate = self._estimate(op, child_ids)

        if isinstance(op, LogicalGet):
            aliases = frozenset({op.alias})
            if op.table.is_partitioned:
                scan_id = self._next_part_scan_id
                self._next_part_scan_id += 1
                spec = PartSelectorSpec.for_table(scan_id, op.table, op.alias)
                consumer_specs = {scan_id: spec}
                self.part_scans[scan_id] = (op.table, op.alias)
        elif isinstance(op, LogicalJoin) and op.kind == "semi":
            # Semi-join output hides the right side.
            pass

        group = Group(
            len(self.groups), layout, aliases, consumer_specs, estimate
        )
        self.groups.append(group)
        log = opt_events.log()
        if log is not None:
            log.group_created(group.id, estimate.rows)
        return group

    def _estimate(
        self, op: LogicalOp, child_ids: tuple[int, ...]
    ) -> RelationEstimate:
        children = [self.group(cid).estimate for cid in child_ids]
        if isinstance(op, LogicalGet):
            return RelationEstimate.for_table(
                op.alias, self.stats.get(op.table)
            )
        if isinstance(op, LogicalSelect):
            return children[0].scaled(
                predicate_selectivity(op.predicate, children[0])
            )
        if isinstance(op, LogicalJoin):
            return join_estimate(
                children[0], children[1], op.predicate, op.kind
            )
        if isinstance(op, LogicalProject):
            return RelationEstimate(children[0].rows, dict(children[0].columns))
        if isinstance(op, LogicalGroupBy):
            rows = group_estimate(children[0], list(op.group_keys))
            return RelationEstimate(rows, dict(children[0].columns))
        if isinstance(op, LogicalSort):
            return children[0]
        if isinstance(op, LogicalLimit):
            return RelationEstimate(
                min(float(op.count), children[0].rows),
                dict(children[0].columns),
            )
        if isinstance(op, (LogicalUpdate, LogicalDelete)):
            return RelationEstimate(1.0, {})
        raise OptimizerError(f"no estimate for {type(op).__name__}")

    # -- statistics of the search ------------------------------------------------

    def describe(self) -> str:
        """Human-readable dump of groups, expressions and request tables
        (the Figure 13 view)."""
        lines = []
        for group in self.groups:
            lines.append(
                f"GROUP {group.id} (rows≈{group.estimate.rows:.0f}, "
                f"consumers={sorted(group.consumer_ids)})"
            )
            for gexpr in group.gexprs:
                lines.append(f"  {gexpr!r}: {gexpr.op.describe()}")
            for request, best in group.best.items():
                cost = best.cost if best else float("inf")
                lines.append(f"  req {request!r} -> cost {cost:.1f}")
        return "\n".join(lines)
