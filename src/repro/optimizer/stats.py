"""Table and column statistics.

Collected by scanning storage (an ``ANALYZE`` analogue) and consumed by
cardinality estimation and the cost model.  Partitioned tables additionally
keep per-leaf row counts so the cost of scanning a *subset* of partitions
can be priced accurately.
"""

from __future__ import annotations

from typing import Any

from ..catalog import TableDescriptor
from ..storage.table import TableStore


#: number of buckets collected for equi-depth histograms
HISTOGRAM_BUCKETS = 32


class Histogram:
    """Equi-depth histogram: ``boundaries`` are the values at the bucket
    edges (``len == buckets + 1``), each bucket holding an equal share of
    the non-null rows.  Estimation is robust to skew, unlike the uniform
    min/max interpolation it replaces."""

    __slots__ = ("boundaries",)

    def __init__(self, boundaries: list):
        if len(boundaries) < 2:
            raise ValueError("histogram needs at least two boundaries")
        self.boundaries = boundaries

    @staticmethod
    def build(values: list, buckets: int = HISTOGRAM_BUCKETS) -> "Histogram | None":
        """Build from non-null values; ``None`` when there is nothing to
        summarise or the values do not order."""
        if len(values) < 2:
            return None
        try:
            ordered = sorted(values)
        except TypeError:
            return None
        buckets = min(buckets, len(ordered) - 1)
        boundaries = [
            ordered[round(i * (len(ordered) - 1) / buckets)]
            for i in range(buckets + 1)
        ]
        return Histogram(boundaries)

    def fraction_below(self, value: Any) -> float:
        """Estimated fraction of rows with column value < ``value``."""
        import bisect

        boundaries = self.boundaries
        if value <= boundaries[0]:
            return 0.0
        if value > boundaries[-1]:
            return 1.0
        index = bisect.bisect_left(boundaries, value)
        buckets = len(boundaries) - 1
        lo, hi = boundaries[index - 1], boundaries[index]
        within = 0.5
        if hi != lo:
            try:
                within = (value - lo) / (hi - lo)
            except TypeError:
                try:  # dates: subtract to timedeltas
                    within = (value - lo).days / max((hi - lo).days, 1)
                except Exception:  # noqa: BLE001 - non-arithmetic domain
                    within = 0.5
        return min(1.0, (index - 1 + within) / buckets)

    def __repr__(self) -> str:
        return f"Histogram({len(self.boundaries) - 1} buckets)"


class ColumnStats:
    """Summary statistics of one column."""

    __slots__ = ("min_value", "max_value", "ndv", "null_fraction", "histogram")

    def __init__(
        self,
        min_value: Any,
        max_value: Any,
        ndv: int,
        null_fraction: float,
        histogram: Histogram | None = None,
    ):
        self.min_value = min_value
        self.max_value = max_value
        self.ndv = max(1, ndv)
        self.null_fraction = null_fraction
        self.histogram = histogram

    def __repr__(self) -> str:
        return (
            f"ColumnStats(min={self.min_value!r}, max={self.max_value!r}, "
            f"ndv={self.ndv}, nulls={self.null_fraction:.2f})"
        )


class TableStats:
    """Statistics of one table: row count, per-column stats, per-leaf rows."""

    def __init__(
        self,
        row_count: int,
        columns: dict[str, ColumnStats],
        leaf_rows: dict[int, int] | None = None,
    ):
        self.row_count = row_count
        self.columns = columns
        self.leaf_rows = leaf_rows or {}

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)

    def __repr__(self) -> str:
        return f"TableStats(rows={self.row_count}, cols={len(self.columns)})"


#: Assumed row count for tables that were never analyzed — deliberately
#: sizable so that unanalyzed tables are not treated as trivially small.
DEFAULT_ROW_COUNT = 1000


def collect_stats(store: TableStore) -> TableStats:
    """Compute statistics by a full pass over a table's storage."""
    descriptor = store.descriptor
    rows = list(store.scan_all())
    column_values: list[list[Any]] = [[] for _ in descriptor.schema.columns]
    null_counts = [0] * len(descriptor.schema.columns)
    for row in rows:
        for i, value in enumerate(row):
            if value is None:
                null_counts[i] += 1
            else:
                column_values[i].append(value)
    columns: dict[str, ColumnStats] = {}
    total = len(rows)
    for i, col in enumerate(descriptor.schema.columns):
        values = column_values[i]
        if values:
            columns[col.name] = ColumnStats(
                min_value=min(values),
                max_value=max(values),
                ndv=len(set(values)),
                null_fraction=null_counts[i] / total if total else 0.0,
                histogram=Histogram.build(values),
            )
        else:
            columns[col.name] = ColumnStats(None, None, 1, 1.0 if total else 0.0)
    leaf_rows: dict[int, int] = {}
    if descriptor.is_partitioned:
        for oid in descriptor.all_leaf_oids():
            leaf_rows[oid] = store.leaf_row_count(oid)
    return TableStats(total, columns, leaf_rows)


class StatsRegistry:
    """Per-database registry of table statistics."""

    def __init__(self) -> None:
        self._stats: dict[int, TableStats] = {}

    def put(self, descriptor: TableDescriptor, stats: TableStats) -> None:
        self._stats[descriptor.oid] = stats

    def get(self, descriptor: TableDescriptor) -> TableStats:
        """Stats for a table; unanalyzed tables get a default estimate."""
        found = self._stats.get(descriptor.oid)
        if found is not None:
            return found
        return TableStats(DEFAULT_ROW_COUNT, {})

    def has(self, descriptor: TableDescriptor) -> bool:
        return descriptor.oid in self._stats

    def analyze(self, store: TableStore) -> TableStats:
        stats = collect_stats(store)
        self.put(store.descriptor, stats)
        return stats
