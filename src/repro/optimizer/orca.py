"""The Orca-style Cascades optimizer with partition-selection enforcement.

This module reproduces Section 3.1 of the paper: optimization requests are
``(distribution, partition propagation)`` property pairs submitted to Memo
groups; a group satisfies a request either through one of its physical
group expressions (which translate the request into child requests — the
in-Memo analogue of the placement Algorithms 2–4) or through an **enforcer**:

* Motion enforcers (Gather / Redistribute / Broadcast) deliver a required
  distribution.  A Motion may not carry a partition-propagation request for
  a *producer-side* spec (one whose consumer lies outside the subtree), and
  may never appear inside a co-location region — this is how the Figure 12
  validity rule ("no Motion between PartitionSelector, DynamicScan and
  their lowest common ancestor") is expressed in the request calculus.
* The PartitionSelector enforcer resolves a producer-side spec on top of
  any plan (the paper's "PartitionSelector is the enforcer of the partition
  selection property"), e.g. Plan 4 of Figure 14:
  ``PartitionSelector over Replicate over Scan(S)``.
* At a DynamicScan's own group, a spec resolves as the *scan unit*
  ``PartitionSelector → DynamicScan`` (the static pattern of Figure 5),
  costed with the **exact** partition fraction for constant predicates.

Join group expressions perform the dynamic-elimination routing of
Algorithm 4: a spec whose consumer sits on the probe side and whose key is
constrained by the join predicate is re-routed — augmented with that
predicate — to the build side, and the probe side is marked co-located so
no Motion can separate the consumer from the join.
"""

from __future__ import annotations

import time

from ..catalog import Catalog, DistributionPolicy, TableDescriptor
from ..errors import OptimizerError
from ..obs import opt_events
from ..obs import trace as obs_trace
from ..expr.analysis import (
    conj,
    derive_interval_set,
    find_preds_on_keys,
)
from ..expr.ast import ColumnRef, Comparison, Expression
from ..logical.ops import LogicalOp
from ..physical import ops as phys
from ..physical.plan import Plan
from ..physical.properties import (
    DistributionSpec,
    PartitionPropagationSpec,
    PartSelectorSpec,
)
from .cost import CostModel, INFINITE
from .memo import Group, GroupExpression, Memo
from .requests import BestInfo, OptimizationRequest
from .rules import explore, implement
from .stats import StatsRegistry


class OrcaOptimizer:
    """Cascades-style optimizer for the MPP engine.

    ``enable_partition_elimination=False`` keeps the DynamicScan machinery
    but never attaches predicates to PartitionSelectors, so every scan
    touches all partitions — the "partition selection disabled"
    configuration of the paper's Figure 17 experiment.
    ``enable_join_dpe=False`` disables only the join-driven (dynamic)
    routing, leaving static elimination intact (an ablation knob).
    """

    def __init__(
        self,
        catalog: Catalog,
        stats: StatsRegistry,
        cost_model: CostModel | None = None,
        num_segments: int = 4,
        enable_partition_elimination: bool = True,
        enable_join_dpe: bool = True,
        enable_two_stage_agg: bool = True,
        enable_top_n: bool = True,
    ):
        self.catalog = catalog
        self.stats = stats
        self.cost_model = cost_model or CostModel()
        self.num_segments = num_segments
        self.enable_partition_elimination = enable_partition_elimination
        self.enable_join_dpe = enable_join_dpe
        self.enable_two_stage_agg = enable_two_stage_agg
        self.enable_top_n = enable_top_n
        self.memo: Memo | None = None

    # -- public API --------------------------------------------------------

    def optimize(
        self, logical_root: LogicalOp, parameter_count: int = 0
    ) -> Plan:
        log = opt_events.log()
        started = time.perf_counter() if log is not None else 0.0
        memo = Memo(self.stats)
        root_gid = memo.copy_in(logical_root)
        explore(memo)
        implement(memo)
        self.memo = memo

        root_group = memo.group(root_gid)
        specs = PartitionPropagationSpec(root_group.consumer_specs.values())
        request = OptimizationRequest(DistributionSpec.singleton(), specs)
        best = self._optimize_group(root_gid, request)
        if best is None or best.cost == INFINITE:
            raise OptimizerError("no valid plan found for query")
        # Extraction is where enforcer decisions materialise into the tree —
        # the in-Memo analogue of the paper's PlacePartSelectors pass.
        with obs_trace.span("place_partition_selectors"):
            root_op = self._extract(root_gid, request)
        plan = Plan(root_op, parameter_count)
        plan.validate()
        if log is not None:
            log.set_optimization_seconds(time.perf_counter() - started)
        return plan

    # -- group optimization ----------------------------------------------------

    def _optimize_group(
        self, gid: int, request: OptimizationRequest
    ) -> BestInfo | None:
        assert self.memo is not None
        group = self.memo.group(gid)
        if request in group.best:
            return group.best[request]
        if request in group._in_progress:
            return None
        group._in_progress.add(request)
        log = opt_events.log()
        if log is not None:
            log.property_request(gid, repr(request))
        try:
            candidates: list[BestInfo] = []
            for gexpr in group.physical_exprs():
                candidates.extend(
                    self._gexpr_candidates(group, gexpr, request)
                )
            candidates.extend(self._enforcer_candidates(gid, group, request))
            best = None
            for candidate in candidates:
                if best is None or candidate.cost < best.cost:
                    best = candidate
            group.best[request] = best
            if log is not None and best is not None:
                log.winner_costed(
                    gid,
                    repr(request),
                    best.cost,
                    best.kind,
                    len(candidates) - 1,
                )
            return best
        finally:
            group._in_progress.discard(request)

    # -- enforcers ------------------------------------------------------------

    def _enforcer_candidates(
        self, gid: int, group: Group, request: OptimizationRequest
    ) -> list[BestInfo]:
        model = self.cost_model
        rows = group.estimate.rows
        candidates: list[BestInfo] = []
        log = opt_events.log()

        # Motion enforcers: only when no co-location constraint applies and
        # every pending spec's consumer is inside this subtree (otherwise
        # the Motion would separate producer from consumer — Figure 12).
        motion_ok = (
            request.dist.kind != DistributionSpec.ANY
            and not request.colocated
            and all(
                spec.part_scan_id in group.consumer_ids
                for spec in request.props
            )
        )
        if motion_ok:
            child_request = request.with_dist(DistributionSpec.any())
            child = self._optimize_group(gid, child_request)
            if child is not None:
                kind = request.dist.kind
                if kind == DistributionSpec.SINGLETON:
                    cost = child.cost + rows * model.gather_row
                elif kind == DistributionSpec.REPLICATED:
                    cost = child.cost + rows * self.num_segments * model.motion_row
                else:
                    cost = child.cost + rows * model.motion_row
                if not child.delivered.satisfies(request.dist):
                    if log is not None:
                        log.enforcer_added(opt_events.MOTION, gid, kind)
                    candidates.append(
                        BestInfo(
                            BestInfo.MOTION,
                            cost,
                            request.dist,
                            motion_kind=kind,
                            motion_exprs=request.dist.columns,
                            child_request=child_request,
                        )
                    )

        # PartitionSelector enforcer: resolves producer-side specs (consumer
        # outside this subtree) on top of the group's plan.
        for spec in request.props:
            if spec.part_scan_id in group.consumer_ids:
                continue
            child_request = request.with_props(request.props.remove(spec))
            child = self._optimize_group(gid, child_request)
            if child is None:
                continue
            cost = (
                child.cost
                + rows * model.selector_tuple
                + model.selector_setup
            )
            if log is not None:
                log.enforcer_added(
                    opt_events.PARTITION_SELECTOR,
                    gid,
                    f"part_scan {spec.part_scan_id}",
                    placement="on_top",
                )
            candidates.append(
                BestInfo(
                    BestInfo.SELECTOR,
                    cost,
                    child.delivered,
                    selector_spec=spec,
                    child_request=child_request,
                )
            )
        return candidates

    # -- group expression candidates -----------------------------------------

    def _gexpr_candidates(
        self, group: Group, gexpr: GroupExpression, request: OptimizationRequest
    ) -> list[BestInfo]:
        op = gexpr.op
        if isinstance(op, phys.Scan):
            return self._scan_candidates(group, gexpr, request)
        if isinstance(op, phys.DynamicScan):
            return self._dynamic_scan_candidates(group, gexpr, request)
        if isinstance(op, (phys.Filter, phys.Project)):
            return self._unary_passthrough_candidates(group, gexpr, request)
        if isinstance(op, phys.HashJoin):
            return self._hash_join_candidates(group, gexpr, request)
        if isinstance(op, phys.NLJoin):
            return self._nl_join_candidates(group, gexpr, request)
        if isinstance(op, phys.HashAgg):
            return self._agg_candidates(group, gexpr, request)
        if isinstance(op, (phys.Sort, phys.Limit, phys.Update, phys.Delete)):
            return self._singleton_unary_candidates(group, gexpr, request)
        raise OptimizerError(f"no candidate generator for {type(op).__name__}")

    def _natural_distribution(
        self, table: TableDescriptor, alias: str
    ) -> DistributionSpec:
        policy = table.distribution
        if policy.kind == DistributionPolicy.REPLICATED:
            return DistributionSpec.replicated()
        return DistributionSpec.hashed([ColumnRef(policy.column, alias)])

    def _scan_candidates(
        self, group: Group, gexpr: GroupExpression, request: OptimizationRequest
    ) -> list[BestInfo]:
        if not request.props.is_empty:
            return []
        op = gexpr.op
        delivered = self._natural_distribution(op.table, op.alias)
        if not delivered.satisfies(request.dist):
            return []
        cost = group.estimate.rows * self.cost_model.scan_row
        return [BestInfo(BestInfo.GEXPR, cost, delivered, gexpr)]

    def _dynamic_scan_candidates(
        self, group: Group, gexpr: GroupExpression, request: OptimizationRequest
    ) -> list[BestInfo]:
        op = gexpr.op
        own_specs = [
            s for s in request.props if s.part_scan_id == op.part_scan_id
        ]
        foreign = [
            s for s in request.props if s.part_scan_id != op.part_scan_id
        ]
        if foreign:
            return []
        delivered = self._natural_distribution(op.table, op.alias)
        if not delivered.satisfies(request.dist):
            return []
        model = self.cost_model
        rows = group.estimate.rows
        leaves = op.table.num_leaves
        if not own_specs:
            # Producer placed elsewhere (join DPE) — full nominal cost; the
            # join applies the elimination discount.
            cost = rows * model.scan_row + leaves * model.partition_open
            return [BestInfo(BestInfo.GEXPR, cost, delivered, gexpr)]
        spec = own_specs[0]
        fraction, selected = self._static_fraction(spec)
        cost = (
            rows * fraction * model.scan_row
            + selected * model.partition_open
            + model.selector_setup
        )
        log = opt_events.log()
        if log is not None:
            log.enforcer_added(
                opt_events.PARTITION_SELECTOR,
                group.id,
                f"part_scan {spec.part_scan_id}, {selected}/{leaves} leaves",
                placement="scan_unit",
            )
        return [
            BestInfo(
                BestInfo.SCAN_UNIT,
                cost,
                delivered,
                gexpr=gexpr,
                selector_spec=spec,
            )
        ]

    def _static_fraction(self, spec: PartSelectorSpec) -> tuple[float, int]:
        """Exact fraction of leaf partitions selected by the spec's
        constant predicates (join-form parts contribute no restriction at
        costing time)."""
        scheme = spec.table.partition_scheme
        assert scheme is not None
        predicates = {}
        for key, predicate in zip(spec.part_keys, spec.part_predicates):
            if predicate is None:
                continue
            derived = derive_interval_set(
                predicate,
                key,
                best_effort=True,
                key_type=spec.table.schema.column(key.name).data_type,
            )
            if derived is not None:
                predicates[key.name] = derived
        selected = len(scheme.select(predicates))
        total = max(1, scheme.num_leaves)
        return selected / total, selected

    def _unary_passthrough_candidates(
        self, group: Group, gexpr: GroupExpression, request: OptimizationRequest
    ) -> list[BestInfo]:
        assert self.memo is not None
        op = gexpr.op
        child_gid = gexpr.child_groups[0]
        child_group = self.memo.group(child_gid)

        routed = PartitionPropagationSpec.none()
        for spec in request.props:
            if spec.part_scan_id not in child_group.consumer_ids:
                return []
            routed = routed.add(self._augment_through_filter(op, spec))

        dist = request.dist
        if isinstance(op, phys.Project) and dist.kind == DistributionSpec.HASHED:
            translated = self._translate_through_project(op, dist)
            if translated is None:
                return []
            dist = translated

        child_request = OptimizationRequest(dist, routed, request.colocated)
        child = self._optimize_group(child_gid, child_request)
        if child is None:
            return []
        model = self.cost_model
        child_rows = child_group.estimate.rows
        if isinstance(op, phys.Filter):
            cost = child.cost + child_rows * model.filter_row
        else:
            cost = child.cost + child_rows * model.project_row
        delivered = child.delivered
        if (
            isinstance(op, phys.Project)
            and dist is not request.dist
            and request.dist.kind == DistributionSpec.HASHED
        ):
            delivered = request.dist
        return [
            BestInfo(
                BestInfo.GEXPR, cost, delivered, gexpr, [child_request]
            )
        ]

    def _augment_through_filter(
        self, op, spec: PartSelectorSpec
    ) -> PartSelectorSpec:
        """Algorithm 3 in the Memo: extend the spec with partition-filtering
        predicates found in a Filter's predicate."""
        if not isinstance(op, phys.Filter) or not self.enable_partition_elimination:
            return spec
        key_preds = find_preds_on_keys(op.predicate, spec.part_keys)
        if all(p is None for p in key_preds):
            return spec
        merged = [
            conj([extracted, existing])
            for extracted, existing in zip(key_preds, spec.part_predicates)
        ]
        return spec.with_predicates(merged)

    def _translate_through_project(
        self, op: phys.Project, dist: DistributionSpec
    ) -> DistributionSpec | None:
        """Rewrite a hashed requirement on Project output columns into one
        on its input columns, when every key is a plain passthrough."""
        mapping: dict[str, Expression] = {
            name: expr for expr, name in op.items
        }
        translated: list[ColumnRef] = []
        for col in dist.columns:
            source = mapping.get(col.name)
            if not isinstance(source, ColumnRef):
                return None
            translated.append(source)
        return DistributionSpec.hashed(translated)

    # -- joins ---------------------------------------------------------------------

    def _route_join_props(
        self,
        request: OptimizationRequest,
        first: Group,
        second: Group,
        join_predicate: Expression | None,
        dpe_allowed: bool,
    ):
        """Algorithm 4 in the Memo.  ``first`` executes before ``second``.

        Returns ``(props_first, props_second, coloc_first, coloc_second,
        dpe_tables)`` or ``None`` when a spec cannot be routed.
        ``dpe_tables`` lists the tables whose scans (in ``second``) receive
        join-driven elimination, for cost discounting.
        """
        props_first = PartitionPropagationSpec.none()
        props_second = PartitionPropagationSpec.none()
        coloc_first: set[int] = set()
        coloc_second: set[int] = set()
        dpe_tables: list[TableDescriptor] = []

        for scan_id in request.colocated:
            if scan_id in first.consumer_ids:
                coloc_first.add(scan_id)
            elif scan_id in second.consumer_ids:
                coloc_second.add(scan_id)
            else:
                return None

        for spec in request.props:
            if spec.part_scan_id in first.consumer_ids:
                props_first = props_first.add(spec)
                continue
            if spec.part_scan_id not in second.consumer_ids:
                return None
            if dpe_allowed:
                key_preds = find_preds_on_keys(join_predicate, spec.part_keys)
                if any(p is not None for p in key_preds):
                    merged = [
                        conj([extracted, existing])
                        for extracted, existing in zip(
                            key_preds, spec.part_predicates
                        )
                    ]
                    props_first = props_first.add(
                        spec.with_predicates(merged)
                    )
                    coloc_second.add(spec.part_scan_id)
                    dpe_tables.append(spec.table)
                    continue
            props_second = props_second.add(spec)
        return (
            props_first,
            props_second,
            frozenset(coloc_first),
            frozenset(coloc_second),
            dpe_tables,
        )

    def _dpe_discount(self, tables: list[TableDescriptor]) -> float:
        """Cost removed from the consumer side when join-driven elimination
        applies: (1 - assumed surviving fraction) of each table's scan."""
        model = self.cost_model
        discount = 0.0
        for table in tables:
            stats = self.stats.get(table)
            full = (
                stats.row_count * model.scan_row
                + table.num_leaves * model.partition_open
            )
            discount += (1.0 - model.dpe_fraction) * full
        return discount

    def _hash_join_candidates(
        self, group: Group, gexpr: GroupExpression, request: OptimizationRequest
    ) -> list[BestInfo]:
        assert self.memo is not None
        op = gexpr.op
        build_group = self.memo.group(gexpr.child_groups[0])
        probe_group = self.memo.group(gexpr.child_groups[1])
        predicate = conj(
            [
                Comparison("=", b, p)
                for b, p in zip(op.build_keys, op.probe_keys)
            ]
            + ([op.residual] if op.residual is not None else [])
        )
        dpe_allowed = (
            self.enable_partition_elimination and self.enable_join_dpe
        )
        routed = self._route_join_props(
            request, build_group, probe_group, predicate, dpe_allowed
        )
        candidates: list[BestInfo] = []
        routings = [routed] if routed is not None else []
        if dpe_allowed and routed is not None and routed[4]:
            # Also keep the non-DPE routing as an alternative.
            plain = self._route_join_props(
                request, build_group, probe_group, predicate, False
            )
            if plain is not None:
                routings.append(plain)
        for routing in routings:
            candidates.extend(
                self._hash_join_with_routing(
                    group, gexpr, request, routing
                )
            )
        return candidates

    def _hash_join_with_routing(
        self, group, gexpr, request, routing
    ) -> list[BestInfo]:
        assert self.memo is not None
        op = gexpr.op
        model = self.cost_model
        build_gid, probe_gid = gexpr.child_groups
        build_group = self.memo.group(build_gid)
        probe_group = self.memo.group(probe_gid)
        props_b, props_p, coloc_b, coloc_p, dpe_tables = routing
        discount = self._dpe_discount(dpe_tables)

        keys_hashable = all(
            isinstance(k, ColumnRef) for k in op.build_keys
        ) and all(isinstance(k, ColumnRef) for k in op.probe_keys)

        alternatives: list[tuple[DistributionSpec, DistributionSpec, str]] = []
        if keys_hashable:
            alternatives.append(
                (
                    DistributionSpec.hashed(op.build_keys),
                    DistributionSpec.hashed(op.probe_keys),
                    "probe",
                )
            )
        alternatives.append(
            (DistributionSpec.replicated(), DistributionSpec.any(), "probe")
        )
        if op.kind == "inner":
            alternatives.append(
                (DistributionSpec.any(), DistributionSpec.replicated(), "build")
            )

        build_rows = build_group.estimate.rows
        probe_rows = probe_group.estimate.rows
        out_rows = group.estimate.rows
        candidates: list[BestInfo] = []
        for build_dist, probe_dist, delivered_from in alternatives:
            build_request = OptimizationRequest(build_dist, props_b, coloc_b)
            probe_request = OptimizationRequest(probe_dist, props_p, coloc_p)
            build = self._optimize_group(build_gid, build_request)
            if build is None:
                continue
            probe = self._optimize_group(probe_gid, probe_request)
            if probe is None:
                continue
            if delivered_from == "probe":
                if probe_dist.kind == DistributionSpec.HASHED:
                    delivered = probe_dist
                else:
                    delivered = probe.delivered
            else:
                delivered = build.delivered
            if not delivered.satisfies(request.dist):
                continue
            probe_cost = max(
                probe.cost - discount, probe.cost * 0.01
            )
            cost = (
                build.cost
                + probe_cost
                + build_rows * model.hash_build_row
                + probe_rows * model.hash_probe_row
                + out_rows * model.output_row
            )
            candidates.append(
                BestInfo(
                    BestInfo.GEXPR,
                    cost,
                    delivered,
                    gexpr,
                    [build_request, probe_request],
                )
            )
        return candidates

    def _nl_join_candidates(
        self, group: Group, gexpr: GroupExpression, request: OptimizationRequest
    ) -> list[BestInfo]:
        assert self.memo is not None
        op = gexpr.op
        model = self.cost_model
        outer_gid, inner_gid = gexpr.child_groups
        outer_group = self.memo.group(outer_gid)
        inner_group = self.memo.group(inner_gid)
        dpe_allowed = (
            self.enable_partition_elimination and self.enable_join_dpe
        )
        routed = self._route_join_props(
            request, outer_group, inner_group, op.predicate, dpe_allowed
        )
        if routed is None:
            return []
        props_o, props_i, coloc_o, coloc_i, dpe_tables = routed
        discount = self._dpe_discount(dpe_tables)
        outer_rows = outer_group.estimate.rows
        inner_rows = inner_group.estimate.rows
        out_rows = group.estimate.rows

        alternatives = [
            (DistributionSpec.any(), DistributionSpec.replicated(), "outer"),
            (
                DistributionSpec.singleton(),
                DistributionSpec.singleton(),
                "singleton",
            ),
        ]
        candidates: list[BestInfo] = []
        for outer_dist, inner_dist, delivered_from in alternatives:
            outer_request = OptimizationRequest(outer_dist, props_o, coloc_o)
            inner_request = OptimizationRequest(inner_dist, props_i, coloc_i)
            outer = self._optimize_group(outer_gid, outer_request)
            if outer is None:
                continue
            inner = self._optimize_group(inner_gid, inner_request)
            if inner is None:
                continue
            delivered = (
                outer.delivered
                if delivered_from == "outer"
                else DistributionSpec.singleton()
            )
            if not delivered.satisfies(request.dist):
                continue
            inner_cost = max(inner.cost - discount, inner.cost * 0.01)
            cost = (
                outer.cost
                + inner_cost
                + outer_rows * inner_rows * model.nl_pair
                + out_rows * model.output_row
            )
            candidates.append(
                BestInfo(
                    BestInfo.GEXPR,
                    cost,
                    delivered,
                    gexpr,
                    [outer_request, inner_request],
                )
            )
        return candidates

    # -- aggregation / ordering / DML ---------------------------------------------

    def _agg_candidates(
        self, group: Group, gexpr: GroupExpression, request: OptimizationRequest
    ) -> list[BestInfo]:
        assert self.memo is not None
        op = gexpr.op
        child_gid = gexpr.child_groups[0]
        child_group = self.memo.group(child_gid)
        for spec in request.props:
            if spec.part_scan_id not in child_group.consumer_ids:
                return []
        model = self.cost_model
        child_rows = child_group.estimate.rows
        alternatives: list[DistributionSpec] = [DistributionSpec.singleton()]
        if op.group_keys:
            alternatives.insert(
                0, DistributionSpec.hashed(list(op.group_keys))
            )
        candidates: list[BestInfo] = []
        for child_dist in alternatives:
            child_request = OptimizationRequest(
                child_dist, request.props, request.colocated
            )
            child = self._optimize_group(child_gid, child_request)
            if child is None:
                continue
            delivered = (
                child_dist
                if child_dist.kind != DistributionSpec.ANY
                else child.delivered
            )
            if not delivered.satisfies(request.dist):
                continue
            cost = child.cost + child_rows * model.agg_row
            candidates.append(
                BestInfo(
                    BestInfo.GEXPR, cost, delivered, gexpr, [child_request]
                )
            )
        candidates.extend(
            self._two_stage_agg_candidates(group, gexpr, request)
        )
        return candidates

    def _two_stage_agg_candidates(
        self, group: Group, gexpr: GroupExpression, request: OptimizationRequest
    ) -> list[BestInfo]:
        """Two-stage aggregation: a partial HashAgg on each segment, a
        Motion carrying the (much smaller) transition rows, and a final
        combining HashAgg.  Classic MPP plan shape; invalid inside a
        co-location region because of the Motion between the stages.
        """
        if request.colocated or not self.enable_two_stage_agg:
            return []
        assert self.memo is not None
        op = gexpr.op
        child_gid = gexpr.child_groups[0]
        child_group = self.memo.group(child_gid)
        child_request = OptimizationRequest(
            DistributionSpec.any(), request.props, frozenset()
        )
        child = self._optimize_group(child_gid, child_request)
        if child is None:
            return []
        if op.group_keys:
            delivered = DistributionSpec.hashed(list(op.group_keys))
            motion_kind = DistributionSpec.HASHED
        else:
            delivered = DistributionSpec.singleton()
            motion_kind = DistributionSpec.SINGLETON
        if not delivered.satisfies(request.dist):
            return []
        model = self.cost_model
        child_rows = child_group.estimate.rows
        # each segment emits at most one transition row per group
        partial_rows = min(
            child_rows, group.estimate.rows * self.num_segments
        )
        cost = (
            child.cost
            + child_rows * model.agg_row
            + partial_rows * model.motion_row
            + partial_rows * model.agg_row
        )
        return [
            BestInfo(
                BestInfo.TWO_STAGE_AGG,
                cost,
                delivered,
                gexpr,
                [child_request],
                motion_kind=motion_kind,
                motion_exprs=tuple(op.group_keys),
            )
        ]

    def _singleton_unary_candidates(
        self, group: Group, gexpr: GroupExpression, request: OptimizationRequest
    ) -> list[BestInfo]:
        assert self.memo is not None
        op = gexpr.op
        child_gid = gexpr.child_groups[0]
        child_group = self.memo.group(child_gid)
        for spec in request.props:
            if spec.part_scan_id not in child_group.consumer_ids:
                return []
        delivered = DistributionSpec.singleton()
        if not delivered.satisfies(request.dist):
            return []
        child_request = OptimizationRequest(
            DistributionSpec.singleton(), request.props, request.colocated
        )
        child = self._optimize_group(child_gid, child_request)
        if child is None:
            return []
        model = self.cost_model
        child_rows = child_group.estimate.rows
        if isinstance(op, phys.Sort):
            cost = child.cost + model.sort_cost(child_rows)
        elif isinstance(op, phys.Limit):
            cost = child.cost + min(child_rows, op.count) * model.output_row
        else:  # Update / Delete
            cost = child.cost + child_rows * model.update_row
        candidates = [
            BestInfo(BestInfo.GEXPR, cost, delivered, gexpr, [child_request])
        ]
        if isinstance(op, phys.Limit):
            candidates.extend(self._top_n_candidates(gexpr, request))
        return candidates

    def _top_n_candidates(
        self, limit_gexpr: GroupExpression, request: OptimizationRequest
    ) -> list[BestInfo]:
        """Distributed top-N: when Limit sits over Sort, each segment sorts
        and limits locally so the Gather moves only ``n × segments`` rows;
        a final Sort+Limit merges on the coordinator."""
        if request.colocated or not self.enable_top_n:
            return []
        assert self.memo is not None
        limit_op = limit_gexpr.op
        sort_group = self.memo.group(limit_gexpr.child_groups[0])
        sort_gexprs = [
            ge
            for ge in sort_group.physical_exprs()
            if isinstance(ge.op, phys.Sort)
        ]
        if not sort_gexprs:
            return []
        if not DistributionSpec.singleton().satisfies(request.dist):
            return []
        model = self.cost_model
        candidates: list[BestInfo] = []
        for sort_gexpr in sort_gexprs:
            data_gid = sort_gexpr.child_groups[0]
            data_group = self.memo.group(data_gid)
            if any(
                spec.part_scan_id not in data_group.consumer_ids
                for spec in request.props
            ):
                continue
            data_request = OptimizationRequest(
                DistributionSpec.any(), request.props, frozenset()
            )
            data = self._optimize_group(data_gid, data_request)
            if data is None:
                continue
            data_rows = data_group.estimate.rows
            moved = min(data_rows, limit_op.count * self.num_segments)
            cost = (
                data.cost
                + model.sort_cost(data_rows)  # per-segment sorts
                + moved * model.gather_row
                + model.sort_cost(moved)  # coordinator merge
                + limit_op.count * model.output_row
            )
            candidates.append(
                BestInfo(
                    BestInfo.TOP_N,
                    cost,
                    DistributionSpec.singleton(),
                    limit_gexpr,
                    [data_request],
                    extra={
                        "sort_keys": sort_gexpr.op.keys,
                        "data_gid": data_gid,
                    },
                )
            )
        return candidates

    # -- plan extraction ---------------------------------------------------------

    def _extract(self, gid: int, request: OptimizationRequest) -> phys.PhysicalOp:
        node = self._extract_node(gid, request)
        if node.estimated_rows is None:
            assert self.memo is not None
            node.estimated_rows = self.memo.group(gid).estimate.rows
        return node

    def _extract_node(
        self, gid: int, request: OptimizationRequest
    ) -> phys.PhysicalOp:
        assert self.memo is not None
        group = self.memo.group(gid)
        best = group.best.get(request)
        if best is None:
            raise OptimizerError(
                f"no best plan recorded for group {gid} request {request!r}"
            )
        if best.kind == BestInfo.MOTION:
            child = self._extract(gid, best.child_request)
            if best.motion_kind == DistributionSpec.SINGLETON:
                node: phys.PhysicalOp = phys.GatherMotion(child)
            elif best.motion_kind == DistributionSpec.REPLICATED:
                node = phys.BroadcastMotion(child)
            else:
                node = phys.RedistributeMotion(child, list(best.motion_exprs))
            node.distribution = best.delivered
            return node
        if best.kind == BestInfo.SELECTOR:
            child = self._extract(gid, best.child_request)
            node = phys.PartitionSelector(best.selector_spec, child)
            node.distribution = best.delivered
            return node
        if best.kind == BestInfo.TWO_STAGE_AGG:
            assert best.gexpr is not None
            child = self._extract(
                best.gexpr.child_groups[0], best.child_requests[0]
            )
            op = best.gexpr.op
            partial = phys.HashAgg(
                child, op.group_keys, op.aggregates, mode="partial"
            )
            if best.motion_kind == DistributionSpec.SINGLETON:
                motion: phys.PhysicalOp = phys.GatherMotion(partial)
            else:
                motion = phys.RedistributeMotion(
                    partial, list(best.motion_exprs)
                )
            motion.distribution = best.delivered
            final = phys.HashAgg(
                motion, op.group_keys, op.aggregates, mode="final"
            )
            final.distribution = best.delivered
            return final
        if best.kind == BestInfo.TOP_N:
            assert best.gexpr is not None
            data = self._extract(
                best.extra["data_gid"], best.child_requests[0]
            )
            keys = best.extra["sort_keys"]
            count = best.gexpr.op.count
            local = phys.Limit(phys.Sort(data, keys), count)
            gather = phys.GatherMotion(local)
            gather.distribution = best.delivered
            node = phys.Limit(phys.Sort(gather, keys), count)
            node.distribution = best.delivered
            return node
        if best.kind == BestInfo.SCAN_UNIT:
            assert best.gexpr is not None
            scan_template = best.gexpr.op
            scan = phys.DynamicScan(
                scan_template.table,
                scan_template.alias,
                scan_template.part_scan_id,
            )
            scan.distribution = best.delivered
            spec = best.selector_spec
            assert spec is not None
            if not self.enable_partition_elimination:
                spec = spec.with_predicates([None] * len(spec.part_keys))
            node = phys.PartitionSelector(spec, scan)
            node.distribution = best.delivered
            return node
        assert best.gexpr is not None
        children = [
            self._extract(child_gid, child_request)
            for child_gid, child_request in zip(
                best.gexpr.child_groups, best.child_requests
            )
        ]
        node = best.gexpr.op.with_children(children)
        node.distribution = best.delivered
        return node
