"""The public engine facade.

:class:`Database` wires together catalog, storage, statistics, the SQL
front end, both optimizers (Orca-style and the legacy Planner baseline)
and the MPP executor:

.. code-block:: python

    from repro import Database

    db = Database(num_segments=4)
    db.create_table(...)            # programmatic DDL (partitioning et al.)
    db.sql("INSERT INTO t VALUES (1, 'x')")
    db.analyze()                    # collect optimizer statistics
    result = db.sql("SELECT * FROM t WHERE pk < 10")
    print(db.explain("SELECT ...", optimizer="planner"))
"""

from __future__ import annotations

from typing import Any, Sequence

from .catalog import (
    Catalog,
    DistributionPolicy,
    PartitionScheme,
    TableDescriptor,
    TableSchema,
)
from .errors import ReproError
from .executor.executor import ExecutionResult, MppExecutor
from .logical.ops import LogicalOp
from .optimizer.cost import CostModel
from .optimizer.orca import OrcaOptimizer
from .optimizer.planner import PlannerOptimizer
from .optimizer.stats import StatsRegistry
from .physical.plan import Plan
from .resilience import (
    CancelToken,
    FaultInjector,
    QueryLimits,
    RetryPolicy,
)
from .sql.ast import InsertStmt
from .sql.binder import Binder
from .sql.parser import parse

ORCA = "orca"
PLANNER = "planner"


class Database:
    """One in-process MPP database instance."""

    def __init__(
        self,
        num_segments: int = 4,
        cost_model: CostModel | None = None,
    ):
        from .storage import StorageManager

        self.num_segments = num_segments
        self.catalog = Catalog()
        self.storage = StorageManager(self.catalog, num_segments)
        self.stats = StatsRegistry()
        self.cost_model = cost_model or CostModel()
        self.binder = Binder(self.catalog)
        #: shared fault injector — arm via ``db.faults.arm(...)`` (or the
        #: CLI's ``SET inject_fault ...``); injected faults exercise the
        #: retry/failover machinery end to end.
        self.faults = FaultInjector()
        self.retry_policy = RetryPolicy()
        self.executor = MppExecutor(
            self.catalog,
            self.storage,
            num_segments,
            faults=self.faults,
            retry_policy=self.retry_policy,
        )

    @property
    def health(self):
        """The instance's :class:`~repro.resilience.SegmentHealth`."""
        return self.storage.health

    # -- DDL / data -----------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: TableSchema,
        distribution: DistributionPolicy | None = None,
        partition_scheme: PartitionScheme | None = None,
    ) -> TableDescriptor:
        descriptor = self.catalog.create_table(
            name, schema, distribution, partition_scheme
        )
        self.storage.register(descriptor)
        return descriptor

    def drop_table(self, name: str) -> None:
        descriptor = self.catalog.table(name)
        self.storage.unregister(descriptor)
        self.catalog.drop_table(name)

    def insert(self, table: str, rows) -> int:
        """Bulk-load rows (faster than SQL INSERT for generators)."""
        return self.storage.store_by_name(table).insert_many(rows)

    def analyze(self, table: str | None = None) -> None:
        """Collect statistics (ANALYZE) for one or all tables."""
        if table is not None:
            self.stats.analyze(self.storage.store_by_name(table))
            return
        for descriptor in self.catalog.tables():
            self.stats.analyze(self.storage.store(descriptor.oid))

    # -- optimizers ---------------------------------------------------------------

    def make_optimizer(
        self,
        optimizer: str = ORCA,
        **options,
    ):
        """Build an optimizer instance; ``options`` forward to its
        constructor (e.g. ``enable_partition_elimination=False``)."""
        if optimizer == ORCA:
            return OrcaOptimizer(
                self.catalog,
                self.stats,
                cost_model=self.cost_model,
                num_segments=self.num_segments,
                **options,
            )
        if optimizer == PLANNER:
            return PlannerOptimizer(
                self.catalog,
                self.stats,
                num_segments=self.num_segments,
                **options,
            )
        raise ReproError(f"unknown optimizer {optimizer!r}")

    def bind(self, query: str) -> LogicalOp:
        statement = parse(query)
        if isinstance(statement, InsertStmt):
            raise ReproError("INSERT statements are executed, not planned")
        return self.binder.bind(statement)

    def plan(
        self,
        query: str,
        optimizer: str = ORCA,
        parameter_count: int = 0,
        **options,
    ) -> Plan:
        """Parse, bind and optimize a query into a physical plan."""
        logical = self.bind(query)
        engine = self.make_optimizer(optimizer, **options)
        return engine.optimize(logical, parameter_count)

    def explain(self, query: str, optimizer: str = ORCA, **options) -> str:
        return self.plan(query, optimizer, **options).explain()

    def explain_analyze(
        self,
        query: str,
        optimizer: str = ORCA,
        params: Sequence[Any] | None = None,
        **options,
    ) -> str:
        """Execute the query with full metrics collection and render the
        physical plan annotated with per-node actuals (EXPLAIN ANALYZE)."""
        result = self.sql(
            query, optimizer, params=params, analyze=True, **options
        )
        return result.explain_analyze()

    # -- execution ---------------------------------------------------------------------

    def sql(
        self,
        query: str,
        optimizer: str = ORCA,
        params: Sequence[Any] | None = None,
        analyze: bool = False,
        timeout: float | None = None,
        max_rows: int | None = None,
        cancel: CancelToken | None = None,
        **options,
    ) -> ExecutionResult:
        """Parse, plan and execute one statement.

        ``analyze=True`` enables per-node wall-clock timing collection on
        top of the always-on row/partition/motion counters; the result's
        ``metrics`` object and ``explain_analyze()`` expose them.

        The guardrail parameters build the query's
        :class:`~repro.resilience.QueryLimits`: ``timeout`` (seconds of
        wall clock before :class:`~repro.errors.QueryTimeout`),
        ``max_rows`` (budget of buffered rows across blocking operators
        and motion buffers before
        :class:`~repro.errors.ResourceLimitExceeded`) and ``cancel`` (a
        :class:`~repro.resilience.CancelToken` whose :meth:`cancel` makes
        the next checkpoint raise :class:`~repro.errors.QueryCancelled`).
        """
        limits = QueryLimits(
            timeout_seconds=timeout, max_rows=max_rows, cancel=cancel
        )
        statement = parse(query)
        if isinstance(statement, InsertStmt):
            from .obs import MetricsCollector

            if statement.select is not None:
                # INSERT ... SELECT: plan and run the query, then load its
                # rows (schema-validated and re-routed through f_T).
                target = self.catalog.table(statement.table.name)
                logical = self.binder.bind_select(statement.select)
                engine = self.make_optimizer(optimizer, **options)
                plan = engine.optimize(logical, len(params) if params else 0)
                if len(plan.root.output_layout()) != len(target.schema):
                    raise ReproError(
                        f"INSERT INTO {target.name}: SELECT produces "
                        f"{len(plan.root.output_layout())} columns, table "
                        f"has {len(target.schema)}"
                    )
                selected = self.executor.execute(
                    plan, params, analyze=analyze, limits=limits
                )
                count = self.insert(target.name, selected.rows)
                return ExecutionResult(
                    [(count,)],
                    ["inserted"],
                    selected.metrics,
                    selected.elapsed_seconds,
                )
            table, rows = self.binder.bind_insert_rows(statement)
            count = self.insert(table, rows)
            return ExecutionResult(
                [(count,)],
                ["inserted"],
                MetricsCollector(self.num_segments),
                0.0,
            )
        logical = self.binder.bind(statement)
        engine = self.make_optimizer(optimizer, **options)
        plan = engine.optimize(logical, len(params) if params else 0)
        return self.executor.execute(plan, params, analyze=analyze, limits=limits)

    def execute_plan(
        self,
        plan: Plan,
        params: Sequence[Any] | None = None,
        analyze: bool = False,
        limits: QueryLimits | None = None,
    ) -> ExecutionResult:
        return self.executor.execute(
            plan, params, analyze=analyze, limits=limits
        )
