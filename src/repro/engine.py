"""The public engine facade.

:class:`Database` wires together catalog, storage, statistics, the SQL
front end, both optimizers (Orca-style and the legacy Planner baseline)
and the MPP executor:

.. code-block:: python

    from repro import Database

    db = Database(num_segments=4)
    db.create_table(...)            # programmatic DDL (partitioning et al.)
    db.sql("INSERT INTO t VALUES (1, 'x')")
    db.analyze()                    # collect optimizer statistics
    result = db.sql("SELECT * FROM t WHERE pk < 10")
    print(db.explain("SELECT ...", optimizer="planner"))
"""

from __future__ import annotations

from typing import Any, Sequence

from .cache import CacheConfig, CacheManager, result_footprint, statement_key
from .catalog import (
    Catalog,
    DistributionPolicy,
    PartitionScheme,
    TableDescriptor,
    TableSchema,
)
from .errors import ReproError
from .executor.executor import ExecutionResult, MppExecutor
from .logical.ops import LogicalOp
from .obs import trace as obs_trace
from .obs.live import LiveTelemetry
from .obs.render import render_explain_trace
from .obs.stats_store import QueryStatsStore
from .obs.trace import Tracer
from .optimizer.cost import CostModel
from .optimizer.orca import OrcaOptimizer
from .optimizer.planner import PlannerOptimizer
from .optimizer.stats import StatsRegistry
from .physical.plan import Plan
from .resilience import (
    CancelToken,
    FaultInjector,
    QueryLimits,
    RetryPolicy,
)
from .sql.ast import InsertStmt
from .sql.binder import Binder
from .sql.parser import parse

ORCA = "orca"
PLANNER = "planner"


class Database:
    """One in-process MPP database instance."""

    def __init__(
        self,
        num_segments: int = 4,
        cost_model: CostModel | None = None,
        workers: int = 1,
        batch_size: int = 1024,
        cache: str | CacheConfig | CacheManager | None = None,
        data_dir: str | None = None,
        wal_sync: str = "sync",
        checkpoint_interval_s: float | None = None,
        faults: FaultInjector | None = None,
    ):
        from .storage import StorageManager

        self.num_segments = num_segments
        #: default segment-scheduler pool size (1 = serial execution);
        #: per-query override via ``sql(..., workers=N)``
        self.workers = workers
        #: default vectorized batch width (1 = the exact row-at-a-time
        #: pipeline); per-query override via ``sql(..., batch_size=N)``
        self.batch_size = batch_size
        self.catalog = Catalog()
        self.storage = StorageManager(self.catalog, num_segments)
        #: the instance's :class:`~repro.cache.CacheManager`.  ``cache``
        #: sets the default mode ('off' | 'partitions' | 'results') or
        #: passes a full config/manager; per-query override via
        #: ``sql(..., cache=...)``.  Storage mutations feed its
        #: partition-scoped invalidation whatever the mode.
        if isinstance(cache, CacheManager):
            self.cache = cache
        elif isinstance(cache, CacheConfig):
            self.cache = CacheManager(cache)
        else:
            self.cache = CacheManager(
                CacheConfig(mode=cache) if cache is not None else None
            )
        self.storage.add_mutation_listener(self.cache.on_mutation)
        #: optimizer statistics (ANALYZE results) — renamed from ``stats``
        #: so :meth:`stats` can surface the cumulative query-stats store
        self.statistics = StatsRegistry()
        self.cost_model = cost_model or CostModel()
        self.binder = Binder(self.catalog)
        #: process-lifetime cumulative per-fingerprint query statistics
        #: (every ``sql()`` call is recorded; read via :meth:`stats`)
        self.query_stats = QueryStatsStore()
        #: shared fault injector — arm via ``db.faults.arm(...)`` (or the
        #: CLI's ``SET inject_fault ...``); injected faults exercise the
        #: retry/failover machinery end to end.  Passing ``faults=`` lets
        #: a caller arm recovery-path points *before* restart recovery
        #: replays the WAL (the crash-testable-recovery contract).
        self.faults = faults if faults is not None else FaultInjector()
        self.storage.set_faults(self.faults)
        #: the instance's :class:`~repro.durability.DurabilityManager`
        #: (None = volatile).  ``data_dir`` turns on write-ahead logging
        #: and — when the directory already holds a checkpoint/WAL —
        #: replays it back into catalog + storage before anything else
        #: runs.  ``wal_sync`` is the fsync gate ('sync' | 'async');
        #: ``checkpoint_interval_s`` starts the background checkpointer.
        self.durability = None
        if data_dir is not None:
            from .durability import DurabilityManager

            self.durability = DurabilityManager(
                data_dir,
                num_segments,
                wal_sync=wal_sync,
                faults=self.faults,
            )
            self.storage.attach_durability(self.durability)
            self.durability.recover_into(self.catalog, self.storage)
            if checkpoint_interval_s is not None:
                self.durability.start_checkpointer(checkpoint_interval_s)
        self.retry_policy = RetryPolicy()
        self.executor = MppExecutor(
            self.catalog,
            self.storage,
            num_segments,
            faults=self.faults,
            retry_policy=self.retry_policy,
            workers=workers,
            batch_size=batch_size,
        )
        #: the instance's :class:`~repro.serving.QueryServer`, created
        #: lazily by :meth:`serve` / :meth:`session`
        self._server = None
        #: the live operations telemetry hub (in-flight activity registry,
        #: latency/queue-wait/scan-ratio histograms, sampled gauge series,
        #: slow-query log) — see docs/observability.md.  The background
        #: ticker is NOT auto-started; the scrape server (or a caller)
        #: starts it, and :meth:`LiveTelemetry.sample_now` works without it.
        self.live = LiveTelemetry()
        self._register_live_sources()

    def _register_live_sources(self) -> None:
        """The gauge sources the live ticker samples.  Serving-tier
        sources read through :attr:`_server` at call time and return None
        (= skip the tick) while no server is open."""
        live = self.live
        live.add_source("queries_in_flight", lambda: float(len(live.activity)))
        live.add_source("cache_hit_rate", self._cache_hit_rate)

        def admission_gauge(key: str):
            def read() -> float | None:
                server = self._server
                if server is None or server.closed:
                    return None
                return float(server.admission.stats()[key])

            return read

        live.add_source("queue_depth", admission_gauge("queue_depth"))
        live.add_source("inflight_admitted", admission_gauge("inflight"))
        live.add_source(
            "resyncing_segments",
            lambda: float(len(self.health.resyncing_segments)),
        )

        def pool_busy() -> float | None:
            server = self._server
            if server is None or server.closed:
                return None
            return server.scheduler.busy_fraction()

        live.add_source("pool_busy_fraction", pool_busy)

    def _cache_hit_rate(self) -> float | None:
        """Combined hit rate across both cache stores (None = no lookups
        yet, so the series records nothing rather than a fake zero)."""
        stats = self.cache.stats_dict()
        hits = misses = 0
        for store in ("partitions", "results"):
            hits += stats[store]["hits"]
            misses += stats[store]["misses"]
        total = hits + misses
        return hits / total if total else None

    @property
    def health(self):
        """The instance's :class:`~repro.resilience.SegmentHealth`."""
        return self.storage.health

    # -- serving --------------------------------------------------------------

    def serve(self, **config):
        """The instance's concurrent serving front end (created on first
        use).  ``config`` forwards to
        :class:`~repro.serving.ServingConfig` — admission caps, queue
        bounds, shared-pool width — and is only honoured on creation;
        reconfiguring requires :meth:`~repro.serving.QueryServer.close`
        first.  See docs/serving.md."""
        from .serving import QueryServer, ServingConfig

        if self._server is not None and self._server.closed:
            self._server = None
        if self._server is None:
            self._server = QueryServer(self, ServingConfig(**config))
        elif config:
            raise ReproError(
                "server already running; close() it before reconfiguring"
            )
        return self._server

    def session(self, **settings):
        """Open one serving :class:`~repro.serving.Session` against the
        (lazily created) server: isolated per-session defaults (workers,
        timeout, max_rows, cache mode, optimizer, fault injector) and a
        per-session cancel that never touches other sessions' queries."""
        return self.serve().session(**settings)

    def serve_scrape(self, host: str = "127.0.0.1", port: int = 0):
        """Start the HTTP scrape sidecar (``/metrics``, ``/healthz``,
        ``/activity``) bound to ``host:port`` (port 0 = ephemeral) and
        start the live-telemetry ticker.  Returns the
        :class:`~repro.serving.ScrapeServer`; the caller owns its
        ``close()``."""
        from .serving import ScrapeServer

        return ScrapeServer(self, host=host, port=port)

    # -- DDL / data -----------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: TableSchema,
        distribution: DistributionPolicy | None = None,
        partition_scheme: PartitionScheme | None = None,
    ) -> TableDescriptor:
        with self.storage.write_lock:
            descriptor = self.catalog.create_table(
                name, schema, distribution, partition_scheme
            )
            self.storage.register(descriptor)
            if self.durability is not None:
                self.durability.log_create_table(descriptor)
        return descriptor

    def drop_table(self, name: str) -> None:
        with self.storage.write_lock:
            descriptor = self.catalog.table(name)
            self.storage.unregister(descriptor)
            self.catalog.drop_table(name)
            if self.durability is not None:
                self.durability.log_drop_table(descriptor)

    def checkpoint(self) -> dict:
        """Take a durability checkpoint now: snapshot every table, swap it
        in atomically, and truncate the WAL when every copy is caught up.
        Returns the checkpoint summary (lsn, bytes, seconds,
        wal_truncated).  Raises
        :class:`~repro.errors.DurabilityError` when the instance has no
        ``data_dir``."""
        if self.durability is None:
            from .errors import DurabilityError

            raise DurabilityError(
                "no durability configured (Database(data_dir=...))"
            )
        return self.durability.checkpoint()

    def insert(self, table: str, rows) -> int:
        """Bulk-load rows (faster than SQL INSERT for generators)."""
        return self.storage.store_by_name(table).insert_many(rows)

    def analyze(self, table: str | None = None) -> None:
        """Collect statistics (ANALYZE) for one or all tables."""
        if table is not None:
            self.statistics.analyze(self.storage.store_by_name(table))
            return
        for descriptor in self.catalog.tables():
            self.statistics.analyze(self.storage.store(descriptor.oid))

    # -- observability -------------------------------------------------------

    def stats(self) -> QueryStatsStore:
        """The cumulative query statistics store (pg_stat_statements-style):
        per-fingerprint calls, timings, rows, partitions scanned vs.
        eligible, retries/failovers.  Export with ``.to_json()`` or
        ``.to_prometheus()``; reset with ``.reset()``."""
        return self.query_stats

    # -- optimizers ---------------------------------------------------------------

    def make_optimizer(
        self,
        optimizer: str = ORCA,
        **options,
    ):
        """Build an optimizer instance; ``options`` forward to its
        constructor (e.g. ``enable_partition_elimination=False``)."""
        if optimizer == ORCA:
            return OrcaOptimizer(
                self.catalog,
                self.statistics,
                cost_model=self.cost_model,
                num_segments=self.num_segments,
                **options,
            )
        if optimizer == PLANNER:
            return PlannerOptimizer(
                self.catalog,
                self.statistics,
                num_segments=self.num_segments,
                **options,
            )
        raise ReproError(f"unknown optimizer {optimizer!r}")

    def bind(self, query: str) -> LogicalOp:
        with obs_trace.span("parse"):
            statement = parse(query)
        if isinstance(statement, InsertStmt):
            raise ReproError("INSERT statements are executed, not planned")
        with obs_trace.span("bind"):
            return self.binder.bind(statement)

    def _optimize(
        self,
        logical: LogicalOp,
        optimizer: str,
        parameter_count: int,
        **options,
    ) -> Plan:
        """The optimize lifecycle phase (one span; the optimizer emits the
        nested ``place_partition_selectors`` span and search events)."""
        engine = self.make_optimizer(optimizer, **options)
        with obs_trace.span("optimize", optimizer=optimizer):
            return engine.optimize(logical, parameter_count)

    def plan(
        self,
        query: str,
        optimizer: str = ORCA,
        parameter_count: int = 0,
        **options,
    ) -> Plan:
        """Parse, bind and optimize a query into a physical plan."""
        logical = self.bind(query)
        return self._optimize(logical, optimizer, parameter_count, **options)

    def explain(self, query: str, optimizer: str = ORCA, **options) -> str:
        return self.plan(query, optimizer, **options).explain()

    def explain_trace(
        self, query: str, optimizer: str = ORCA, **options
    ) -> str:
        """``EXPLAIN (TRACE)``: plan the query under a fresh tracer and
        render the physical plan, the lifecycle span tree and the
        optimizer search summary (groups, rule firings, enforcer
        decisions, alternatives pruned, optimization time)."""
        tracer = Tracer()
        with obs_trace.activate(tracer):
            plan = self.plan(query, optimizer, **options)
        return render_explain_trace(plan.explain(), tracer)

    def explain_analyze(
        self,
        query: str,
        optimizer: str = ORCA,
        params: Sequence[Any] | None = None,
        **options,
    ) -> str:
        """Execute the query with full metrics collection and render the
        physical plan annotated with per-node actuals (EXPLAIN ANALYZE)."""
        result = self.sql(
            query, optimizer, params=params, analyze=True, **options
        )
        return result.explain_analyze()

    # -- execution ---------------------------------------------------------------------

    def sql(
        self,
        query: str,
        optimizer: str = ORCA,
        params: Sequence[Any] | None = None,
        analyze: bool = False,
        timeout: float | None = None,
        max_rows: int | None = None,
        cancel: CancelToken | None = None,
        trace: bool = False,
        lower_selectors: bool = False,
        workers: int | None = None,
        batch_size: int | None = None,
        cache: str | None = None,
        faults=None,
        scheduler=None,
        activity=None,
        **options,
    ) -> ExecutionResult:
        """Parse, plan and execute one statement.

        Every call registers with the live activity registry
        (``db.live``): the statement is visible in ``db.activity()`` /
        ``\\activity`` while it runs — current phase, rows and partitions
        so far — and its completion feeds the latency histograms, the
        slow-query log and the metrics export's ``live`` section (schema
        v7).  ``activity`` passes a pre-registered
        :class:`~repro.obs.live.QueryActivity` (the serving layer
        registers before admission so queued statements are visible);
        None registers a fresh record.  Statements with a ``cancel``
        token — every serving-session query has one — are cancellable by
        id via :meth:`cancel_query`.

        ``faults`` overrides the instance-wide
        :class:`~repro.resilience.FaultInjector` for this query (serving
        sessions each carry an isolated one); ``scheduler`` runs the
        query's segment instances on a caller-owned
        :class:`~repro.executor.scheduler.SegmentScheduler` — the serving
        layer's shared worker pool — instead of a per-query pool.

        ``cache`` overrides the Database-level cache mode for this query:
        ``'off'``, ``'partitions'`` (replay partition-selector OID sets for
        repeat statements), or ``'results'`` (additionally serve repeat
        SELECTs from cached result sets).  Cached entries are keyed by
        fingerprint + literal/parameter values + plan options and
        invalidated per touched partition by DML (see docs/caching.md).

        ``workers`` sets the segment-scheduler pool size for this query
        (``None`` uses the Database default, normally 1 = serial).  With
        ``workers > 1`` each slice's per-segment instances run
        concurrently on a thread pool; results are guaranteed identical
        to a serial run (see docs/parallelism.md).

        ``batch_size`` sets the vectorized batch width for this query
        (``None`` uses the Database default, normally 1024; ``1`` runs
        the exact row-at-a-time pipeline).  Results, partition counters
        and guardrail firing rows are identical at any batch size (see
        docs/parallelism.md, "Vectorized batch execution").

        ``analyze=True`` enables per-node wall-clock timing collection on
        top of the always-on row/partition/motion counters; the result's
        ``metrics`` object and ``explain_analyze()`` expose them.

        ``trace=True`` additionally records a lifecycle trace (parse →
        bind → optimize → place_partition_selectors → lower → execute,
        with per-slice child spans) plus the optimizer's typed search
        events; the tracer is attached as ``result.trace`` and summarised
        in the metrics export's ``trace``/``optimizer`` sections (schema
        v3).  Tracing is off by default and costs nothing when off.

        ``lower_selectors=True`` applies the Section 3.2 lowering (the
        ``lower`` phase rewrites PartitionSelectors into plain operator
        plumbing) before execution.

        The guardrail parameters build the query's
        :class:`~repro.resilience.QueryLimits`: ``timeout`` (seconds of
        wall clock before :class:`~repro.errors.QueryTimeout`),
        ``max_rows`` (budget of buffered rows across blocking operators
        and motion buffers before
        :class:`~repro.errors.ResourceLimitExceeded`) and ``cancel`` (a
        :class:`~repro.resilience.CancelToken` whose :meth:`cancel` makes
        the next checkpoint raise :class:`~repro.errors.QueryCancelled`).
        """
        if activity is None:
            activity = self.live.begin(
                query,
                workers=workers if workers is not None else self.workers,
                cancel=cancel,
            )
        else:
            activity.adopt_cancel(cancel)
        try:
            with obs_trace.feed_phases(activity.enter_phase):
                mode = self.cache.resolve_mode(cache)
                session = None
                if mode != "off":
                    key = self._statement_key(
                        query, params, optimizer, lower_selectors, options
                    )
                    if mode == "results":
                        entry = self.cache.lookup_result(key)
                        if entry is not None:
                            activity.enter_phase("cache_hit")
                            result = self._cached_result(key, mode, entry)
                            result.metrics.record_live(
                                self.live.complete(activity)
                            )
                            result.metrics.record_durability(
                                self._durability_summary()
                            )
                            self.query_stats.record(query, result)
                            return result
                    session = self.cache.begin(key, mode)
                tracer = Tracer() if trace else None
                with obs_trace.activate(tracer):
                    result = self._sql(
                        query,
                        optimizer,
                        params,
                        analyze,
                        QueryLimits(
                            timeout_seconds=timeout,
                            max_rows=max_rows,
                            cancel=cancel,
                        ),
                        lower_selectors,
                        workers,
                        session,
                        faults=faults,
                        scheduler=scheduler,
                        activity=activity,
                        batch_size=batch_size,
                        **options,
                    )
        except BaseException as error:
            self.live.complete(activity, error=error)
            raise
        if tracer is not None:
            result.trace = tracer
            result.metrics.record_trace(tracer.to_dict())
            result.metrics.record_optimizer(tracer.optimizer.summary())
        result.metrics.record_live(self.live.complete(activity))
        result.metrics.record_durability(self._durability_summary())
        self.query_stats.record(query, result)
        return result

    def _durability_summary(self) -> dict:
        """The metrics ``"durability"`` section (schema v8): WAL and
        checkpoint counters plus live resync state."""
        summary = (
            self.durability.stats_dict()
            if self.durability is not None
            else {"enabled": False}
        )
        summary["resyncing_segments"] = self.health.resyncing_segments
        summary["resync_count"] = self.health.resync_count
        return summary

    def activity(self) -> list[dict]:
        """The in-flight query registry as JSON-ready rows
        (``pg_stat_activity``-style): one dict per running statement with
        its id, session, fingerprint, current phase, elapsed/queued time
        and rows/partitions so far.  The full hub export — histograms,
        sampled series, slow-log state — is ``db.live.to_dict()``."""
        return self.live.activity.snapshot()

    def cancel_query(self, query_id: int) -> bool:
        """Cancel one in-flight query by its activity id; returns whether
        a cancellable query with that id was found.  Only statements
        running with a :class:`~repro.resilience.CancelToken` (every
        serving-session query) are cancellable — the token keeps the
        per-row guardrail path opt-in."""
        return self.live.activity.cancel(query_id)

    def _statement_key(
        self,
        query: str,
        params: Sequence[Any] | None,
        optimizer: str,
        lower_selectors: bool,
        options: dict,
    ):
        """The cache key for one execution.  Optimizer options change plan
        shape (and with it part_scan_id assignment), so they fold into the
        key's optimizer tag."""
        tag = optimizer
        if options:
            tag = f"{optimizer}|{sorted(options.items())!r}"
        return statement_key(query, params, tag, lower_selectors)

    def _cached_result(self, key, mode: str, entry) -> ExecutionResult:
        """Serve one SELECT from the result cache (no execution)."""
        from .obs import MetricsCollector

        metrics = MetricsCollector(self.num_segments)
        session = self.cache.begin(key, mode, lookup=False)
        session.result_outcome = "hit"
        metrics.record_cache(session.summary())
        return ExecutionResult(
            list(entry.rows), list(entry.column_names), metrics, 0.0
        )

    def _sql(
        self,
        query: str,
        optimizer: str,
        params: Sequence[Any] | None,
        analyze: bool,
        limits: QueryLimits,
        lower_selectors: bool,
        workers: int | None = None,
        session=None,
        faults=None,
        scheduler=None,
        activity=None,
        batch_size: int | None = None,
        **options,
    ) -> ExecutionResult:
        with obs_trace.span("parse"):
            statement = parse(query)
        if isinstance(statement, InsertStmt):
            from .obs import MetricsCollector

            if statement.select is not None:
                # INSERT ... SELECT: plan and run the query, then load its
                # rows (schema-validated and re-routed through f_T).
                target = self.catalog.table(statement.table.name)
                with obs_trace.span("bind"):
                    logical = self.binder.bind_select(statement.select)
                plan = self._optimize(
                    logical, optimizer, len(params) if params else 0, **options
                )
                if len(plan.root.output_layout()) != len(target.schema):
                    raise ReproError(
                        f"INSERT INTO {target.name}: SELECT produces "
                        f"{len(plan.root.output_layout())} columns, table "
                        f"has {len(target.schema)}"
                    )
                plan = self._lower(plan, lower_selectors)
                with obs_trace.span("execute"):
                    # The selection cache still applies to the source
                    # SELECT; results are never cached for DML statements.
                    selected = self.executor.execute(
                        plan,
                        params,
                        analyze=analyze,
                        limits=limits,
                        workers=workers,
                        cache=session,
                        faults=faults,
                        scheduler=scheduler,
                        activity=activity,
                        batch_size=batch_size,
                    )
                count = self.insert(target.name, selected.rows)
                return ExecutionResult(
                    [(count,)],
                    ["inserted"],
                    selected.metrics,
                    selected.elapsed_seconds,
                )
            with obs_trace.span("bind"):
                table, rows = self.binder.bind_insert_rows(statement)
            count = self.insert(table, rows)
            return ExecutionResult(
                [(count,)],
                ["inserted"],
                MetricsCollector(self.num_segments),
                0.0,
            )
        with obs_trace.span("bind"):
            logical = self.binder.bind(statement)
        plan = self._optimize(
            logical, optimizer, len(params) if params else 0, **options
        )
        plan = self._lower(plan, lower_selectors)
        with obs_trace.span("execute"):
            result = self.executor.execute(
                plan,
                params,
                analyze=analyze,
                limits=limits,
                workers=workers,
                cache=session,
                faults=faults,
                scheduler=scheduler,
                activity=activity,
                batch_size=batch_size,
            )
        if session is not None and session.results_active:
            # Commit the result set with its invalidation footprint: the
            # leaf partitions the run actually opened, per root table
            # (None = whole-table for unpartitioned scans).  DML plans
            # yield no footprint and are never cached.
            footprint = result_footprint(
                plan.root, result.metrics.tracker.partitions
            )
            if footprint is not None:
                session.result_outcome = "miss"
                session.commit_result(
                    result.rows, result.column_names, footprint
                )
                result.metrics.record_cache(session.summary())
        return result

    def _lower(self, plan: Plan, lower_selectors: bool) -> Plan:
        """The lower lifecycle phase: finalize the plan into its
        executable form — optionally rewriting PartitionSelectors via the
        Section 3.2 lowering — and re-validate it."""
        with obs_trace.span("lower", selectors_lowered=lower_selectors):
            if lower_selectors:
                from .executor.lowering import lower_partition_selectors

                plan = lower_partition_selectors(plan)
            plan.validate()
        return plan

    def execute_plan(
        self,
        plan: Plan,
        params: Sequence[Any] | None = None,
        analyze: bool = False,
        limits: QueryLimits | None = None,
        workers: int | None = None,
        batch_size: int | None = None,
    ) -> ExecutionResult:
        return self.executor.execute(
            plan,
            params,
            analyze=analyze,
            limits=limits,
            workers=workers,
            batch_size=batch_size,
        )
