"""Column types and value helpers.

The engine stores values as plain Python objects (``int``, ``float``,
``str``, :class:`datetime.date`, ``bool`` or ``None``).  A :class:`DataType`
describes the declared type of a column and provides validation/coercion so
that the storage layer and the expression evaluator can rely on values being
well-typed.

Dates are first-class because the paper's motivating workloads partition on
date columns; :func:`date_value` and :func:`add_months` make it convenient to
build monthly/weekly partition boundaries.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any

from .errors import ReproError


class TypeKind(enum.Enum):
    """Enumeration of supported column types."""

    INT = "int"
    BIGINT = "bigint"
    FLOAT = "float"
    TEXT = "text"
    DATE = "date"
    BOOL = "bool"


class DataType:
    """A declared column type.

    Instances are interned per kind, so identity comparison is safe.
    """

    _interned: dict[TypeKind, "DataType"] = {}

    def __new__(cls, kind: TypeKind) -> "DataType":
        existing = cls._interned.get(kind)
        if existing is not None:
            return existing
        obj = super().__new__(cls)
        cls._interned[kind] = obj
        return obj

    def __init__(self, kind: TypeKind):
        self.kind = kind

    def __repr__(self) -> str:
        return f"DataType({self.kind.value})"

    def __str__(self) -> str:
        return self.kind.value

    @property
    def is_numeric(self) -> bool:
        return self.kind in (TypeKind.INT, TypeKind.BIGINT, TypeKind.FLOAT)

    @property
    def is_orderable(self) -> bool:
        """Whether values of this type support range comparisons (all do)."""
        return True

    def validate(self, value: Any) -> Any:
        """Coerce ``value`` to this type, raising :class:`TypeMismatchError`
        when the value cannot represent the declared type.

        ``None`` (SQL NULL) is always accepted.
        """
        if value is None:
            return None
        kind = self.kind
        if kind in (TypeKind.INT, TypeKind.BIGINT):
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeMismatchError(self, value)
            return value
        if kind is TypeKind.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeMismatchError(self, value)
            return float(value)
        if kind is TypeKind.TEXT:
            if not isinstance(value, str):
                raise TypeMismatchError(self, value)
            return value
        if kind is TypeKind.DATE:
            if isinstance(value, datetime.date) and not isinstance(
                value, datetime.datetime
            ):
                return value
            if isinstance(value, str):
                return date_value(value)
            raise TypeMismatchError(self, value)
        if kind is TypeKind.BOOL:
            if not isinstance(value, bool):
                raise TypeMismatchError(self, value)
            return value
        raise AssertionError(f"unhandled type kind {kind}")


class TypeMismatchError(ReproError):
    """A value does not conform to its column's declared type."""

    def __init__(self, data_type: DataType, value: Any):
        super().__init__(
            f"value {value!r} of type {type(value).__name__} is not valid "
            f"for column type {data_type}"
        )
        self.data_type = data_type
        self.value = value


INT = DataType(TypeKind.INT)
BIGINT = DataType(TypeKind.BIGINT)
FLOAT = DataType(TypeKind.FLOAT)
TEXT = DataType(TypeKind.TEXT)
DATE = DataType(TypeKind.DATE)
BOOL = DataType(TypeKind.BOOL)


def date_value(text: str) -> datetime.date:
    """Parse an ISO ``YYYY-MM-DD`` (or US ``MM-DD-YYYY``) date literal.

    The paper's example queries use US-style literals such as
    ``'10-01-2013'``; both spellings are accepted.
    """
    parts = text.split("-")
    if len(parts) != 3:
        raise ReproError(f"cannot parse date literal {text!r}")
    a, b, c = parts
    try:
        if len(a) == 4:
            return datetime.date(int(a), int(b), int(c))
        return datetime.date(int(c), int(a), int(b))
    except ValueError as exc:
        raise ReproError(f"cannot parse date literal {text!r}: {exc}") from exc


def add_months(day: datetime.date, months: int) -> datetime.date:
    """Return ``day`` shifted by ``months`` whole months (day clamped)."""
    month_index = day.month - 1 + months
    year = day.year + month_index // 12
    month = month_index % 12 + 1
    last_day = _days_in_month(year, month)
    return datetime.date(year, month, min(day.day, last_day))


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        nxt = datetime.date(year + 1, 1, 1)
    else:
        nxt = datetime.date(year, month + 1, 1)
    return (nxt - datetime.date(year, month, 1)).days


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python literal value."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return TEXT
    if isinstance(value, datetime.date):
        return DATE
    raise ReproError(f"cannot infer SQL type for literal {value!r}")
