"""Predicate analysis: the paper's ``FindPredOnKey`` / ``Conj`` helpers and
the derivation of value sets (:class:`~repro.catalog.constraints.IntervalSet`)
from predicates on a partitioning key.

The derivation is what makes ``f*_T`` (Section 2.1) work for complex
predicates: a constant predicate on the key is translated into the set of
key values it admits; a partition may satisfy the predicate iff its check
constraint overlaps that set.  Predicates we cannot translate soundly
degrade to "no restriction" (select all partitions) — never to an unsound
pruning decision.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..catalog.constraints import Interval, IntervalSet
from ..errors import ReproError
from ..types import DataType
from .ast import (
    Between,
    BoolExpr,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
    Parameter,
    column_refs,
)
from .eval import evaluate


def conjuncts(expr: Expression | None) -> list[Expression]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BoolExpr) and expr.op == BoolExpr.AND:
        result: list[Expression] = []
        for arg in expr.args:
            result.extend(conjuncts(arg))
        return result
    return [expr]


def conj(predicates: Sequence[Expression | None]) -> Expression | None:
    """The paper's ``Conj``: conjunction of the non-null predicates,
    ``None`` when there are none."""
    present = [p for p in predicates if p is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    return BoolExpr(BoolExpr.AND, present)


def is_constant(expr: Expression, allow_params: bool = True) -> bool:
    """Whether ``expr`` references no columns (parameters optionally OK)."""
    for node in expr.walk():
        if isinstance(node, ColumnRef):
            return False
        if isinstance(node, Parameter) and not allow_params:
            return False
    return True


def references_key(expr: Expression, key: ColumnRef) -> bool:
    return any(ref.matches(key) for ref in column_refs(expr))


def _only_references_key(expr: Expression, key: ColumnRef) -> bool:
    refs = column_refs(expr)
    return bool(refs) and all(ref.matches(key) for ref in refs)


def _comparison_on_key(expr: Comparison, key: ColumnRef) -> Comparison | None:
    """Normalise a comparison so the key column is the left side, or return
    ``None`` when the comparison does not isolate the key on one side."""
    left_is_key = isinstance(expr.left, ColumnRef) and expr.left.matches(key)
    right_is_key = isinstance(expr.right, ColumnRef) and expr.right.matches(key)
    if left_is_key and not references_key(expr.right, key):
        return expr
    if right_is_key and not references_key(expr.left, key):
        return expr.mirrored()
    return None


def usable_on_key(expr: Expression, key: ColumnRef) -> bool:
    """Whether ``expr`` is a partition-filtering predicate for ``key``.

    Two accepted shapes:

    * **constant form** — every column referenced is the key itself
      (e.g. ``pk BETWEEN 10 AND 12``, ``pk = $1``, ``pk = 3 OR pk = 7``);
    * **join form** — a comparison with the key isolated on one side and an
      expression over *other* columns on the other (e.g. ``R.A = T.pk``),
      the shape dynamic partition elimination consumes at run time.
    """
    if _only_references_key(expr, key):
        return derive_interval_set(expr, key, best_effort=True) is not None
    if isinstance(expr, Comparison):
        normalized = _comparison_on_key(expr, key)
        if normalized is not None and column_refs(normalized.right):
            return True
    return False


def find_pred_on_key(
    predicate: Expression | None, key: ColumnRef
) -> Expression | None:
    """The paper's ``FindPredOnKey``: extract from ``predicate`` the
    conjunction of conjuncts usable for partition selection on ``key``."""
    usable = [c for c in conjuncts(predicate) if usable_on_key(c, key)]
    return conj(usable)


def find_preds_on_keys(
    predicate: Expression | None, keys: Sequence[ColumnRef]
) -> list[Expression | None]:
    """Multi-level variant (Section 2.4): one entry per partitioning level,
    ``None`` marking the absence of a predicate on that level's key."""
    return [find_pred_on_key(predicate, key) for key in keys]


def interval_for_comparison(op: str, value: Any) -> IntervalSet:
    """The set of key values admitted by ``key <op> value``.

    NULL comparands admit nothing (the comparison is never true).
    """
    if value is None:
        return IntervalSet.EMPTY
    if op == "=":
        return IntervalSet.of(Interval.point(value))
    if op == "<>":
        return IntervalSet.of(Interval.point(value)).complement()
    if op == "<":
        return IntervalSet.of(Interval.less_than(value))
    if op == "<=":
        return IntervalSet.of(Interval.at_most(value))
    if op == ">":
        return IntervalSet.of(Interval.greater_than(value))
    if op == ">=":
        return IntervalSet.of(Interval.at_least(value))
    raise ValueError(f"unknown comparison operator {op!r}")


def derive_interval_set(
    predicate: Expression,
    key: ColumnRef,
    params: Sequence[Any] | None = None,
    best_effort: bool = False,
    key_type: DataType | None = None,
) -> IntervalSet | None:
    """Translate a constant-form predicate on ``key`` into the set of key
    values it admits.

    Returns ``None`` when the predicate shape is not supported (callers must
    then fall back to selecting all partitions).  With ``best_effort=True``
    parameter markers are treated as derivable placeholders so the *shape*
    can be validated at plan time before parameter values exist.

    ``key_type`` — when given — coerces constant comparands to the key's
    declared type before interval arithmetic, so ``date_col IN
    ('2013-05-15', ...)`` compares dates to dates rather than strings to
    dates.  An uncoercible comparison bound degrades to "no restriction";
    an uncoercible IN value is dropped (it can never equal a well-typed
    key, so dropping it is sound).
    """
    try:
        return _derive_interval_set(
            predicate, key, params, best_effort, key_type
        )
    except TypeError:
        # Incomparable comparand types (e.g. a mixed IN list analysed
        # without type context) cannot be ordered into intervals; degrade
        # to "unsupported" rather than crash — callers then keep all
        # partitions, which is always sound.
        return None


def _derive_interval_set(
    predicate: Expression,
    key: ColumnRef,
    params: Sequence[Any] | None,
    best_effort: bool,
    key_type: DataType | None,
) -> IntervalSet | None:

    def fold(expr: Expression) -> Any:
        """Evaluate a column-free subexpression to a constant."""
        if best_effort and any(
            isinstance(n, Parameter) for n in expr.walk()
        ):
            return _SHAPE_ONLY
        return evaluate(expr, params=params)

    def coerce(value: Any) -> Any:
        if key_type is None or value is None or value is _SHAPE_ONLY:
            return value
        try:
            return key_type.validate(value)
        except ReproError:
            return _UNCOERCIBLE

    if isinstance(predicate, Comparison):
        normalized = _comparison_on_key(predicate, key)
        if normalized is None or not is_constant(normalized.right):
            return None
        value = fold(normalized.right)
        if value is _SHAPE_ONLY:
            return IntervalSet.ALL
        value = coerce(value)
        if value is _UNCOERCIBLE:
            return None
        return interval_for_comparison(normalized.op, value)

    if isinstance(predicate, Between):
        if not (
            isinstance(predicate.subject, ColumnRef)
            and predicate.subject.matches(key)
            and is_constant(predicate.lo)
            and is_constant(predicate.hi)
        ):
            return None
        lo, hi = fold(predicate.lo), fold(predicate.hi)
        if lo is _SHAPE_ONLY or hi is _SHAPE_ONLY:
            return IntervalSet.ALL
        lo, hi = coerce(lo), coerce(hi)
        if lo is _UNCOERCIBLE or hi is _UNCOERCIBLE:
            return None
        if lo is None or hi is None or hi < lo:
            return IntervalSet.EMPTY
        return IntervalSet.of(Interval(lo, hi, True, True))

    if isinstance(predicate, InList):
        if not (
            isinstance(predicate.subject, ColumnRef)
            and predicate.subject.matches(key)
        ):
            return None
        points = []
        for v in predicate.values:
            if v is None:
                continue
            v = coerce(v)
            if v is _UNCOERCIBLE:
                continue
            points.append(v)
        return IntervalSet.points(points)

    if isinstance(predicate, IsNull):
        if not (
            isinstance(predicate.subject, ColumnRef)
            and predicate.subject.matches(key)
        ):
            return None
        # Partition constraints never contain NULL, so IS NULL admits no
        # partitioned value and IS NOT NULL admits them all.
        return IntervalSet.ALL if predicate.negated else IntervalSet.EMPTY

    if isinstance(predicate, BoolExpr):
        child_sets = []
        for arg in predicate.args:
            child = derive_interval_set(
                arg, key, params, best_effort, key_type
            )
            if child is None:
                return None
            child_sets.append(child)
        if predicate.op == BoolExpr.AND:
            result = IntervalSet.ALL
            for cs in child_sets:
                result = result.intersect(cs)
            return result
        if predicate.op == BoolExpr.OR:
            result = IntervalSet.EMPTY
            for cs in child_sets:
                result = result.union(cs)
            return result
        # NOT: sound only because NULL keys cannot be stored in any
        # partition, so complementing the admitted set is exact.
        return child_sets[0].complement()

    if isinstance(predicate, Literal):
        if predicate.value is True:
            return IntervalSet.ALL
        if predicate.value in (False, None):
            return IntervalSet.EMPTY
        return None

    return None


class _ShapeOnly:
    """Sentinel: a parameter value unknown at plan time."""

    def __repr__(self) -> str:
        return "<shape-only>"


_SHAPE_ONLY = _ShapeOnly()


class _Uncoercible:
    """Sentinel: a comparand the key's type cannot represent."""

    def __repr__(self) -> str:
        return "<uncoercible>"


_UNCOERCIBLE = _Uncoercible()


def join_comparison_on_key(
    predicate: Expression | None, key: ColumnRef
) -> list[Comparison]:
    """All join-form conjuncts on ``key``, normalised key-on-the-left.

    These drive dynamic partition elimination: for each streamed tuple the
    PartitionSelector evaluates each comparison's right side and intersects
    the per-comparison admitted sets.
    """
    found = []
    for c in conjuncts(predicate):
        if not isinstance(c, Comparison):
            continue
        normalized = _comparison_on_key(c, key)
        if normalized is not None and column_refs(normalized.right):
            found.append(normalized)
    return found
