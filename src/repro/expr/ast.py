"""Scalar expression AST.

Expressions are immutable trees over column references and literals.
Column references are *qualified* (``alias.column``) after binding; the
executor resolves them against a :class:`~repro.expr.eval.RowLayout` when a
plan is instantiated, so the same expression tree can be evaluated at any
point of a plan where its columns are in scope.

SQL three-valued logic is honoured throughout: comparisons with NULL yield
NULL, AND/OR follow Kleene semantics, and filters only pass tuples for
which the predicate is *true* (not NULL).
"""

from __future__ import annotations

import datetime
from typing import Any, Iterator, Sequence

# Comparison operator tokens (canonical spellings).
EQ, NEQ, LT, LTE, GT, GTE = "=", "<>", "<", "<=", ">", ">="
COMPARISON_OPS = (EQ, NEQ, LT, LTE, GT, GTE)

#: op -> op with sides swapped (for normalising ``5 < x`` to ``x > 5``).
MIRRORED_OP = {EQ: EQ, NEQ: NEQ, LT: GT, LTE: GTE, GT: LT, GTE: LTE}

ARITH_OPS = ("+", "-", "*", "/", "%")


class Expression:
    """Base class for all scalar expressions."""

    __slots__ = ()

    def children(self) -> tuple["Expression", ...]:
        return ()

    def walk(self) -> Iterator["Expression"]:
        """Pre-order traversal of this expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    # Equality is structural; every subclass defines _key().
    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self._key() == other._key()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))


class Literal(Expression):
    """A constant value (possibly NULL)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def _key(self) -> tuple:
        return (self.value,)

    def __repr__(self) -> str:
        if isinstance(self.value, datetime.date):
            return f"'{self.value.isoformat()}'"
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


class ColumnRef(Expression):
    """A reference to a column, optionally qualified by a relation alias."""

    __slots__ = ("qualifier", "name")

    def __init__(self, name: str, qualifier: str | None = None):
        self.name = name
        self.qualifier = qualifier

    def _key(self) -> tuple:
        return (self.qualifier, self.name)

    def matches(self, other: "ColumnRef") -> bool:
        """Whether the two references denote the same column.

        An unqualified reference matches any qualifier with the same name;
        qualified references must agree exactly.
        """
        if self.name != other.name:
            return False
        if self.qualifier is None or other.qualifier is None:
            return True
        return self.qualifier == other.qualifier

    def __repr__(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


class Comparison(Expression):
    """``left <op> right`` for op in =, <>, <, <=, >, >=."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def mirrored(self) -> "Comparison":
        """The same predicate with sides swapped (``5 < x`` → ``x > 5``)."""
        return Comparison(MIRRORED_OP[self.op], self.right, self.left)

    def _key(self) -> tuple:
        return (self.op, self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BoolExpr(Expression):
    """AND/OR over two or more operands, or NOT over exactly one."""

    AND, OR, NOT = "AND", "OR", "NOT"
    __slots__ = ("op", "args")

    def __init__(self, op: str, args: Sequence[Expression]):
        if op not in (self.AND, self.OR, self.NOT):
            raise ValueError(f"unknown boolean operator {op!r}")
        if op == self.NOT and len(args) != 1:
            raise ValueError("NOT takes exactly one argument")
        if op != self.NOT and len(args) < 2:
            raise ValueError(f"{op} takes at least two arguments")
        self.op = op
        self.args: tuple[Expression, ...] = tuple(args)

    def children(self) -> tuple[Expression, ...]:
        return self.args

    def _key(self) -> tuple:
        return (self.op, self.args)

    def __repr__(self) -> str:
        if self.op == self.NOT:
            return f"NOT {self.args[0]!r}"
        joiner = f" {self.op} "
        return "(" + joiner.join(repr(a) for a in self.args) + ")"


class Between(Expression):
    """``subject BETWEEN lo AND hi`` (bounds inclusive)."""

    __slots__ = ("subject", "lo", "hi")

    def __init__(self, subject: Expression, lo: Expression, hi: Expression):
        self.subject = subject
        self.lo = lo
        self.hi = hi

    def children(self) -> tuple[Expression, ...]:
        return (self.subject, self.lo, self.hi)

    def _key(self) -> tuple:
        return (self.subject, self.lo, self.hi)

    def __repr__(self) -> str:
        return f"({self.subject!r} BETWEEN {self.lo!r} AND {self.hi!r})"


class InList(Expression):
    """``subject IN (v1, v2, ...)`` over literal values."""

    __slots__ = ("subject", "values")

    def __init__(self, subject: Expression, values: Sequence[Any]):
        self.subject = subject
        self.values: tuple = tuple(values)

    def children(self) -> tuple[Expression, ...]:
        return (self.subject,)

    def _key(self) -> tuple:
        return (self.subject, self.values)

    def __repr__(self) -> str:
        vals = ", ".join(repr(v) for v in self.values)
        return f"({self.subject!r} IN ({vals}))"


class IsNull(Expression):
    """``subject IS [NOT] NULL``."""

    __slots__ = ("subject", "negated")

    def __init__(self, subject: Expression, negated: bool = False):
        self.subject = subject
        self.negated = negated

    def children(self) -> tuple[Expression, ...]:
        return (self.subject,)

    def _key(self) -> tuple:
        return (self.subject, self.negated)

    def __repr__(self) -> str:
        tail = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.subject!r} {tail})"


class Arithmetic(Expression):
    """``left <op> right`` for op in +, -, *, /, %."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def _key(self) -> tuple:
        return (self.op, self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Parameter(Expression):
    """A prepared-statement parameter ``$n``, bound at execution time.

    The paper's Section 1 motivates dynamic partition elimination for
    prepared statements: parameter values are only known at run time, so a
    PartitionSelector over a Parameter predicate selects partitions when the
    query executes, not when it is optimized.
    """

    __slots__ = ("index",)

    def __init__(self, index: int):
        if index < 1:
            raise ValueError("parameter indices start at 1")
        self.index = index

    def _key(self) -> tuple:
        return (self.index,)

    def __repr__(self) -> str:
        return f"${self.index}"


class AggCall(Expression):
    """An aggregate call in a projection: COUNT/SUM/AVG/MIN/MAX.

    ``arg is None`` encodes ``COUNT(*)``.
    """

    FUNCS = ("count", "sum", "avg", "min", "max")
    __slots__ = ("func", "arg")

    def __init__(self, func: str, arg: Expression | None):
        func = func.lower()
        if func not in self.FUNCS:
            raise ValueError(f"unknown aggregate {func!r}")
        if arg is None and func != "count":
            raise ValueError(f"{func} requires an argument")
        self.func = func
        self.arg = arg

    def children(self) -> tuple[Expression, ...]:
        return (self.arg,) if self.arg is not None else ()

    def _key(self) -> tuple:
        return (self.func, self.arg)

    def __repr__(self) -> str:
        inner = "*" if self.arg is None else repr(self.arg)
        return f"{self.func}({inner})"


def column_refs(expr: Expression) -> list[ColumnRef]:
    """All column references in ``expr``, in traversal order."""
    return [node for node in expr.walk() if isinstance(node, ColumnRef)]


def contains_aggregate(expr: Expression) -> bool:
    return any(isinstance(node, AggCall) for node in expr.walk())


def contains_parameter(expr: Expression) -> bool:
    return any(isinstance(node, Parameter) for node in expr.walk())
