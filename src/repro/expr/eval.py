"""Compiled expression evaluation.

A :class:`RowLayout` names the columns of a tuple stream (each as a
``(qualifier, name)`` pair).  :func:`compile_expression` turns an expression
tree into a plain Python closure ``row -> value`` resolved against a layout
once, so the per-tuple cost is a few function calls rather than repeated
tree interpretation and name lookups.

SQL three-valued logic: closures return ``True``/``False``/``None`` for
predicates; :func:`compile_predicate` wraps a closure so filters pass only
rows where the predicate is strictly true.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..errors import BindError, ExecutionError
from .ast import (
    AggCall,
    Arithmetic,
    Between,
    BoolExpr,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
    Parameter,
)

RowFunc = Callable[[tuple], Any]


class RowLayout:
    """The (qualifier, name) identity of each slot in a tuple stream."""

    __slots__ = ("slots", "_by_name")

    def __init__(self, slots: Sequence[tuple[str | None, str]]):
        self.slots: tuple[tuple[str | None, str], ...] = tuple(slots)
        by_name: dict[str, list[int]] = {}
        for i, (_, name) in enumerate(self.slots):
            by_name.setdefault(name, []).append(i)
        self._by_name = by_name

    @staticmethod
    def for_table(alias: str, column_names: Iterable[str]) -> "RowLayout":
        return RowLayout([(alias, name) for name in column_names])

    def concat(self, other: "RowLayout") -> "RowLayout":
        """Layout of a join output: left slots then right slots."""
        return RowLayout(self.slots + other.slots)

    def resolve(self, ref: ColumnRef) -> int:
        """Slot index for a column reference.

        Raises :class:`BindError` when the reference is unknown or — for an
        unqualified name visible from several relations — ambiguous.
        """
        candidates = self._by_name.get(ref.name, [])
        if ref.qualifier is not None:
            candidates = [
                i for i in candidates if self.slots[i][0] == ref.qualifier
            ]
        if not candidates:
            raise BindError(f"column {ref!r} not found in row layout")
        if len(candidates) > 1:
            raise BindError(f"column reference {ref!r} is ambiguous")
        return candidates[0]

    def has(self, ref: ColumnRef) -> bool:
        try:
            self.resolve(ref)
        except BindError:
            return False
        return True

    def __len__(self) -> int:
        return len(self.slots)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RowLayout):
            return NotImplemented
        return self.slots == other.slots

    def __repr__(self) -> str:
        names = ", ".join(
            f"{q}.{n}" if q else n for q, n in self.slots
        )
        return f"RowLayout({names})"


def _compare(op: str, left: Any, right: Any) -> bool | None:
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise AssertionError(op)


def compile_expression(
    expr: Expression,
    layout: RowLayout,
    params: Sequence[Any] | None = None,
) -> RowFunc:
    """Compile ``expr`` into a closure evaluating it against rows shaped by
    ``layout``.  ``params`` supplies values for ``$n`` parameters."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, ColumnRef):
        idx = layout.resolve(expr)
        return lambda row: row[idx]

    if isinstance(expr, Parameter):
        if params is None or expr.index > len(params):
            raise ExecutionError(
                f"no value bound for parameter ${expr.index}"
            )
        value = params[expr.index - 1]
        return lambda row: value

    if isinstance(expr, Comparison):
        op = expr.op
        left = compile_expression(expr.left, layout, params)
        right = compile_expression(expr.right, layout, params)
        return lambda row: _compare(op, left(row), right(row))

    if isinstance(expr, BoolExpr):
        arg_funcs = [compile_expression(a, layout, params) for a in expr.args]
        if expr.op == BoolExpr.NOT:
            inner = arg_funcs[0]

            def negate(row: tuple) -> bool | None:
                value = inner(row)
                return None if value is None else not value

            return negate
        if expr.op == BoolExpr.AND:

            def conjunction(row: tuple) -> bool | None:
                saw_null = False
                for func in arg_funcs:
                    value = func(row)
                    if value is False:
                        return False
                    if value is None:
                        saw_null = True
                return None if saw_null else True

            return conjunction

        def disjunction(row: tuple) -> bool | None:
            saw_null = False
            for func in arg_funcs:
                value = func(row)
                if value is True:
                    return True
                if value is None:
                    saw_null = True
            return None if saw_null else False

        return disjunction

    if isinstance(expr, Between):
        subject = compile_expression(expr.subject, layout, params)
        lo = compile_expression(expr.lo, layout, params)
        hi = compile_expression(expr.hi, layout, params)

        def between(row: tuple) -> bool | None:
            value, low, high = subject(row), lo(row), hi(row)
            if value is None or low is None or high is None:
                return None
            return low <= value <= high

        return between

    if isinstance(expr, InList):
        subject = compile_expression(expr.subject, layout, params)
        values = set(expr.values)

        def in_list(row: tuple) -> bool | None:
            value = subject(row)
            if value is None:
                return None
            return value in values

        return in_list

    if isinstance(expr, IsNull):
        subject = compile_expression(expr.subject, layout, params)
        if expr.negated:
            return lambda row: subject(row) is not None
        return lambda row: subject(row) is None

    if isinstance(expr, Arithmetic):
        op = expr.op
        left = compile_expression(expr.left, layout, params)
        right = compile_expression(expr.right, layout, params)

        def arith(row: tuple) -> Any:
            a, b = left(row), right(row)
            if a is None or b is None:
                return None
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op == "/":
                if b == 0:
                    raise ExecutionError("division by zero")
                result = a / b
                if isinstance(a, int) and isinstance(b, int):
                    return a // b
                return result
            if b == 0:
                raise ExecutionError("division by zero")
            return a % b

        return arith

    if isinstance(expr, AggCall):
        raise ExecutionError(
            "aggregate calls are evaluated by the Agg operator, not inline"
        )

    raise ExecutionError(f"cannot compile expression {expr!r}")


def compile_predicate(
    expr: Expression,
    layout: RowLayout,
    params: Sequence[Any] | None = None,
) -> Callable[[tuple], bool]:
    """Compile a predicate; NULL results count as non-matching."""
    func = compile_expression(expr, layout, params)
    return lambda row: func(row) is True


def evaluate(
    expr: Expression,
    row: tuple = (),
    layout: RowLayout | None = None,
    params: Sequence[Any] | None = None,
) -> Any:
    """One-shot evaluation (convenience for tests and constant folding)."""
    return compile_expression(expr, layout or RowLayout(()), params)(row)
