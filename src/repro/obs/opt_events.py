"""Typed optimizer search events — the trace's view inside the Memo.

The Cascades search (`repro.optimizer.orca` / `memo.py` / `placement.py`)
emits one event per interesting step into the active tracer's
:class:`OptimizerEventLog`:

* :class:`GroupCreated` / :class:`ExpressionAdded` — Memo growth;
* :class:`RuleFired` — exploration (``join_commute``) and implementation
  rules, by name;
* :class:`PropertyRequest` — an ``(distribution, partition propagation)``
  optimization request submitted to a group (Section 3.1);
* :class:`EnforcerAdded` — an enforcer candidate generated for a request,
  with ``kind`` distinguishing Motion from PartitionSelector (and
  ``placement`` separating on-top selectors from the Figure 5 scan unit);
* :class:`WinnerCosted` — a request resolved to its best plan, with the
  winning cost and how many costed alternatives were pruned.

Every emission site guards on :func:`log` returning None, so the
instrumentation is free when tracing is off.  Event volume is bounded by
the search itself (groups × requests), never by data size.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import trace

#: EnforcerAdded.kind values
MOTION = "Motion"
PARTITION_SELECTOR = "PartitionSelector"


def log() -> "OptimizerEventLog | None":
    """The active tracer's event log, or None when tracing is off."""
    tracer = trace.current()
    if tracer is None:
        return None
    return tracer.optimizer


@dataclass(frozen=True)
class GroupCreated:
    group_id: int
    rows_estimate: float


@dataclass(frozen=True)
class ExpressionAdded:
    group_id: int
    expression: str
    logical: bool


@dataclass(frozen=True)
class RuleFired:
    rule: str
    group_id: int


@dataclass(frozen=True)
class PropertyRequest:
    group_id: int
    request: str


@dataclass(frozen=True)
class EnforcerAdded:
    kind: str  # MOTION | PARTITION_SELECTOR
    group_id: int
    detail: str  # motion kind, or "part_scan <id>" for selectors
    placement: str  # "on_top" | "scan_unit" for selectors; "" for motions


@dataclass(frozen=True)
class WinnerCosted:
    group_id: int
    request: str
    cost: float
    kind: str  # BestInfo kind of the winner ("gexpr", "motion", ...)
    alternatives_pruned: int


class OptimizerEventLog:
    """Accumulates typed events for one optimization and summarises them."""

    def __init__(self):
        self.events: list = []
        #: wall time of the optimize phase, seconds (set by the optimizer)
        self.optimization_seconds: float | None = None

    # -- emission (one helper per event type keeps call sites short) -------

    def group_created(self, group_id: int, rows_estimate: float) -> None:
        self.events.append(GroupCreated(group_id, rows_estimate))

    def expression_added(
        self, group_id: int, expression: str, logical: bool
    ) -> None:
        self.events.append(ExpressionAdded(group_id, expression, logical))

    def rule_fired(self, rule: str, group_id: int) -> None:
        self.events.append(RuleFired(rule, group_id))

    def property_request(self, group_id: int, request: str) -> None:
        self.events.append(PropertyRequest(group_id, request))

    def enforcer_added(
        self, kind: str, group_id: int, detail: str, placement: str = ""
    ) -> None:
        self.events.append(EnforcerAdded(kind, group_id, detail, placement))

    def winner_costed(
        self,
        group_id: int,
        request: str,
        cost: float,
        kind: str,
        alternatives_pruned: int,
    ) -> None:
        self.events.append(
            WinnerCosted(group_id, request, cost, kind, alternatives_pruned)
        )

    def set_optimization_seconds(self, seconds: float) -> None:
        self.optimization_seconds = seconds

    # -- typed views --------------------------------------------------------

    def of_type(self, event_type: type) -> list:
        return [e for e in self.events if isinstance(e, event_type)]

    # -- summary -------------------------------------------------------------

    def summary(self) -> dict:
        """The ``optimizer`` section of the metrics export (schema v3).

        All mappings are key-sorted so the export is deterministic.
        """
        rule_firings: dict[str, int] = {}
        for event in self.of_type(RuleFired):
            rule_firings[event.rule] = rule_firings.get(event.rule, 0) + 1
        enforcers = {MOTION: 0, PARTITION_SELECTOR: 0}
        selector_events = []
        for event in self.of_type(EnforcerAdded):
            enforcers[event.kind] = enforcers.get(event.kind, 0) + 1
            if event.kind == PARTITION_SELECTOR:
                selector_events.append(
                    {
                        "group_id": event.group_id,
                        "detail": event.detail,
                        "placement": event.placement,
                    }
                )
        winners = self.of_type(WinnerCosted)
        return {
            "groups": len(self.of_type(GroupCreated)),
            "group_expressions": len(self.of_type(ExpressionAdded)),
            "rule_firings": dict(sorted(rule_firings.items())),
            "property_requests": len(self.of_type(PropertyRequest)),
            "winners_costed": len(winners),
            "alternatives_pruned": sum(w.alternatives_pruned for w in winners),
            "enforcers": dict(sorted(enforcers.items())),
            "partition_selector_events": selector_events,
            "optimization_seconds": self.optimization_seconds,
        }

    def render(self) -> str:
        """Human-readable search summary (for ``EXPLAIN (TRACE)``)."""
        s = self.summary()
        lines = ["Search summary:"]
        lines.append(
            f"  groups: {s['groups']}, group expressions: "
            f"{s['group_expressions']}"
        )
        lines.append(
            f"  property requests: {s['property_requests']} "
            f"(winners costed: {s['winners_costed']}, alternatives "
            f"pruned: {s['alternatives_pruned']})"
        )
        if s["rule_firings"]:
            fired = ", ".join(
                f"{rule}={count}" for rule, count in s["rule_firings"].items()
            )
            lines.append(f"  rule firings: {fired}")
        enforcers = ", ".join(
            f"{kind}={count}" for kind, count in s["enforcers"].items()
        )
        lines.append(f"  enforcers: {enforcers}")
        for event in s["partition_selector_events"]:
            lines.append(
                f"    PartitionSelector at group {event['group_id']}: "
                f"{event['detail']} ({event['placement']})"
            )
        if s["optimization_seconds"] is not None:
            lines.append(
                f"  optimization time: "
                f"{s['optimization_seconds'] * 1000:.2f} ms"
            )
        return "\n".join(lines)
